#!/usr/bin/env bash
# Tier-1 verify: build, tests, and the cr-lint static analysis pass.
# Referenced from ROADMAP.md; CI and pre-merge checks should run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run --release -q -p lint --bin cr-lint

# Model-checker smoke: exhaustively explore the commit/quiesce/replica
# protocol models under the bounded tier-1 limits and write the
# state-space stats to BENCH_model.json.  The in-repo models finish
# exhaustively well inside the smoke bounds, so a truncated run means
# the protocol surface grew past them — rerun `cr-model --all` (full,
# effectively unbounded) locally and raise Bounds::smoke deliberately.
cargo run --release -q -p model --bin cr-model -- \
  --all --smoke --bench-json "$PWD/BENCH_model.json"

# Restart-latency smoke: one memory-path and one disk-path restart; the
# bench itself asserts the simulated memory cost is strictly below disk.
RESTART_LATENCY_SMOKE=1 cargo bench -q -p bench --bench restart_latency

# Incremental-checkpoint smoke: the bench asserts a 10%-dirty interval
# moves < 25% of the full-image bytes and costs strictly less simulated
# time.  The dedup smoke additionally runs the SPMD schedule through the
# content-addressed chunk store, asserting a >= 2x cross-rank dedup ratio
# and that dedup restart cost stays flat as retained intervals grow while
# chain replay climbs.  Both comparisons land in BENCH_ckpt.json.
CKPT_INCREMENTAL_SMOKE=1 CKPT_DEDUP_SMOKE=1 BENCH_CKPT_JSON="$PWD/BENCH_ckpt.json" \
  cargo bench -q -p bench --bench ckpt_incremental

# Partial-restart smoke: the bench compares the simulated cost of
# recovering 1 failed rank (one image fetch + one launcher session)
# against a full relaunch at 4/8/16 ranks, asserts partial is strictly
# cheaper from 8 ranks up, and splices the rows into BENCH_ckpt.json
# (after the rewrite above, so the rows survive).
RESTART_PARTIAL_SMOKE=1 BENCH_CKPT_JSON="$PWD/BENCH_ckpt.json" \
  cargo bench -q -p bench --bench restart_latency

# Pipelined-commit smoke: the bench asserts the early-release stall is
# ≤ 50% of the blocking stall at 8 ranks and that k concurrent transfers
# on one shared link are each charged ~1/k bandwidth, and writes the
# machine-readable comparison to BENCH_commit.json.
CKPT_OVERLAP_SMOKE=1 BENCH_COMMIT_JSON="$PWD/BENCH_commit.json" \
  cargo bench -q -p bench --bench ckpt_overlap

# Data-path smoke: the bench asserts the parallel manifest builder is
# byte-identical to the sequential one, that pooled delta builds allocate
# O(pool) buffers across many intervals (flat in chunks), and that the
# spread gather plan's simulated critical path is strictly below fifo's
# on a contended batch.  The >= 1.8x hash-speedup wall-clock gate binds
# only on hosts with >= 4 cores (waived, but still measured, elsewhere).
# Throughput per worker count lands in BENCH_datapath.json.
CKPT_DATAPATH_SMOKE=1 BENCH_DATAPATH_JSON="$PWD/BENCH_datapath.json" \
  cargo bench -q -p bench --bench ckpt_datapath

# Journal smoke: the append-overhead ratchet (the bench asserts the
# journaled record cost stays under 40 µs/event and 1 KiB/event, writing
# BENCH_journal.json), then cr-replay over the real 4-rank early-release
# run the bench leaves behind: the hash chain must verify end-to-end and
# the event sequence must replay as reachable in the commit protocol
# model.
journal_smoke_dir="$PWD/target/journal_smoke"
JOURNAL_SMOKE=1 JOURNAL_SMOKE_DIR="$journal_smoke_dir" \
  BENCH_JOURNAL_JSON="$PWD/BENCH_journal.json" \
  cargo bench -q -p bench --bench journal_append
run_journal="$journal_smoke_dir/run/journal/ft.jrnl"
cargo run --release -q -p tools --bin cr-replay -- verify "$run_journal"
cargo run --release -q -p tools --bin cr-replay -- replay --model commit "$run_journal"

# Ratchet: the cr-lint baseline may shrink but never grow.  The limits
# live in lint.allow itself (the "# ratchet: files=NN sites=NN" header),
# so tightening the baseline is a one-file change.
ratchet_files=$(sed -n 's/^# ratchet: files=\([0-9]*\) sites=[0-9]*$/\1/p' lint.allow)
ratchet_sites=$(sed -n 's/^# ratchet: files=[0-9]* sites=\([0-9]*\)$/\1/p' lint.allow)
if [ -z "$ratchet_files" ] || [ -z "$ratchet_sites" ]; then
  echo "lint.allow is missing its '# ratchet: files=NN sites=NN' header" >&2
  exit 1
fi
baseline_lines=$(grep -cv '^#' lint.allow)
baseline_sites=$(grep -v '^#' lint.allow | awk -F'\t' '{s+=$3} END {print s}')
if [ "$baseline_lines" -gt "$ratchet_files" ] || [ "$baseline_sites" -gt "$ratchet_sites" ]; then
  echo "lint.allow grew (files=$baseline_lines > $ratchet_files or sites=$baseline_sites > $ratchet_sites)" >&2
  exit 1
fi
