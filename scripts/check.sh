#!/usr/bin/env bash
# Tier-1 verify: build, tests, and the cr-lint static analysis pass.
# Referenced from ROADMAP.md; CI and pre-merge checks should run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run --release -q -p lint --bin cr-lint
