//! Offline shim of `proptest`: property-based testing by randomized
//! generation, without shrinking.
//!
//! The `proptest!` macro, `Strategy` combinators (`prop_map`,
//! `prop_recursive`, `prop_oneof!`, tuples, ranges, `Just`, `any`),
//! `collection::{vec, btree_map}`, and a small regex-subset string
//! generator are implemented; failing cases report their case number and
//! the deterministic per-test seed instead of shrinking to a minimal
//! input. Generation is deterministic per test name so CI failures
//! reproduce locally.

pub mod test_runner {
    //! Test configuration, RNG, and failure plumbing used by `proptest!`.

    use std::fmt;

    /// Subset of proptest's config honored by the shim: `cases` drives the
    /// iteration count; `max_shrink_iters` is accepted (shrinking is not
    /// implemented, so it is ignored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Ignored; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Config {
        /// Config with the given number of cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// A failed or rejected test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The input was rejected (unused by the shim's macros).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// SplitMix64 RNG: tiny, fast, and plenty for test-input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG derived from a test's full path, so each test
        /// sees a stable stream across runs and machines.
        pub fn deterministic_for(name: &str) -> Self {
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for b in name.bytes() {
                state = (state ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform usize in `[lo, hi]`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            lo + self.below((hi - lo + 1) as u64) as usize
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A reusable recipe for generating values of one type.
    ///
    /// The shim's strategies generate; they do not shrink, so there is no
    /// `ValueTree` layer.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `self` generates leaves, and `f`
        /// wraps an inner strategy into branch cases. `depth` bounds
        /// recursion; the size/branch hints are accepted for parity and
        /// ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = f(current).boxed();
                current = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            current
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies (the `prop_oneof!` shape).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "Union of zero strategies");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    range_strategy!(u8 u16 u32 u64 usize);

    macro_rules! signed_range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    signed_range_strategy!(i8 i16 i32 i64 isize);

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(S0: 0);
    tuple_strategy!(S0: 0, S1: 1);
    tuple_strategy!(S0: 0, S1: 1, S2: 2);
    tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);

    /// String strategies from a small regex subset: one atom — a `[...]`
    /// class, `.`, or `\PC` — followed by an optional `*`, `+`, `{m}`, or
    /// `{m,n}` quantifier. That covers every pattern in this workspace;
    /// anything else panics loudly.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let (alphabet, rest) = parse_atom(pattern);
        let (lo, hi) = parse_quantifier(rest, pattern);
        let len = rng.usize_in(lo, hi);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }

    fn parse_atom(pattern: &str) -> (Vec<char>, &str) {
        if let Some(rest) = pattern.strip_prefix('[') {
            let close = rest
                .find(']')
                .unwrap_or_else(|| panic!("proptest shim: unclosed class in regex {pattern:?}"));
            (expand_class(&rest[..close]), &rest[close + 1..])
        } else if let Some(rest) = pattern.strip_prefix("\\PC") {
            // Any non-control character: printable ASCII plus a few
            // multi-byte scalars to exercise UTF-8 paths.
            let mut alphabet: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
            alphabet.extend(['\u{e9}', '\u{3bb}', '\u{2603}', '\u{1f600}']);
            (alphabet, rest)
        } else if let Some(rest) = pattern.strip_prefix('.') {
            ((0x20u8..0x7f).map(char::from).collect(), rest)
        } else {
            panic!("proptest shim: unsupported regex {pattern:?}");
        }
    }

    fn expand_class(class: &str) -> Vec<char> {
        let chars: Vec<char> = class.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        out.push(c);
                    }
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }

    fn parse_quantifier(rest: &str, pattern: &str) -> (usize, usize) {
        match rest {
            "" => (1, 1),
            "*" => (0, 32),
            "+" => (1, 32),
            _ => {
                let inner = rest
                    .strip_prefix('{')
                    .and_then(|r| r.strip_suffix('}'))
                    .unwrap_or_else(|| {
                        panic!("proptest shim: unsupported quantifier in regex {pattern:?}")
                    });
                let parse = |s: &str| {
                    s.parse::<usize>().unwrap_or_else(|_| {
                        panic!("proptest shim: bad quantifier bound in regex {pattern:?}")
                    })
                };
                match inner.split_once(',') {
                    Some((lo, hi)) => (parse(lo), parse(hi)),
                    None => {
                        let n = parse(inner);
                        (n, n)
                    }
                }
            }
        }
    }
}

pub mod arbitrary {
    //! The `Arbitrary` trait and `any::<T>()`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty)*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias 1-in-8 draws toward boundary values: integer
                    // edge cases dominate codec bugs.
                    if rng.below(8) == 0 {
                        match rng.below(4) {
                            0 => 0 as $t,
                            1 => <$t>::MAX,
                            2 => <$t>::MIN,
                            _ => 1 as $t,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    int_arbitrary!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII, occasionally an arbitrary scalar value.
            if rng.below(4) == 0 {
                char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
            } else {
                char::from(0x20 + rng.below(0x5f) as u8)
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index::from_raw(rng.next_u64())
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// An index into a collection whose length is unknown at generation
    /// time; resolve with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolve against a collection of length `len` (must be nonzero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len != 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` with between `size` entries attempted
    /// (duplicate keys collapse, as in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Namespace mirror so `prop::sample::Index` and `prop::collection::vec`
/// resolve after `use proptest::prelude::*`.
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

pub mod prelude {
    //! Everything a property test conventionally imports.

    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// Re-exports used by the generated code.
#[doc(hidden)]
pub use arbitrary::any as __any;

/// Define property tests: an optional `#![proptest_config(..)]` followed by
/// `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __test_path = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::test_runner::TestRng::deterministic_for(__test_path);
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed for {}: {}",
                        __case + 1,
                        __config.cases,
                        __test_path,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure fails the case, not the
/// process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(a in 3usize..10, b in 1u64..=4, s in "[a-z]{1,8}") {
            prop_assert!((3..10).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.bytes().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec(any::<u8>(), 0..5), pair in (0u8..3, "[0-9]{2}")) {
            prop_assert!(v.len() < 5);
            prop_assert!(pair.0 < 3);
            prop_assert_eq!(pair.1.len(), 2);
        }

        #[test]
        fn recursion_bounded(t in arb_tree()) {
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(children) => {
                        1 + children.iter().map(depth).max().unwrap_or(0)
                    }
                }
            }
            prop_assert!(depth(&t) <= 4);
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = any::<u8>().prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        })
    }
}
