//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no registry access, so this crate provides the
//! exact API subset the workspace uses: `Mutex` / `MutexGuard` (including
//! `MutexGuard::map` → `MappedMutexGuard`), `RwLock`, and `Condvar` with
//! `wait` / `wait_until`. Semantics match parking_lot's: guards are returned
//! directly (a poisoned std lock is transparently recovered, matching
//! parking_lot's absence of poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (std-backed, no poisoning surface).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` indirection lets [`Condvar::wait`]
/// temporarily hand the underlying std guard to the std condvar.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn std_guard(&self) -> &std::sync::MutexGuard<'a, T> {
        self.inner.as_ref().expect("guard present outside wait")
    }

    fn std_guard_mut(&mut self) -> &mut std::sync::MutexGuard<'a, T> {
        self.inner.as_mut().expect("guard present outside wait")
    }

    /// Map the guard to a component of the protected data.
    pub fn map<U: ?Sized, F>(mut this: Self, f: F) -> MappedMutexGuard<'a, U>
    where
        F: FnOnce(&mut T) -> &mut U,
    {
        let ptr: *mut U = f(&mut *this);
        MappedMutexGuard {
            _held: Box::new(this),
            ptr,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std_guard()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std_guard_mut()
    }
}

/// Type-erased holder keeping the original guard (and thus the lock) alive.
trait Held {}
impl<T: ?Sized> Held for MutexGuard<'_, T> {}

/// Guard projecting to a component of the locked data (see `MutexGuard::map`).
pub struct MappedMutexGuard<'a, U: ?Sized> {
    /// Owns the original guard; dropped (releasing the lock) after `ptr` is
    /// no longer reachable.
    _held: Box<dyn Held + 'a>,
    ptr: *mut U,
}

impl<U: ?Sized> Deref for MappedMutexGuard<'_, U> {
    type Target = U;
    fn deref(&self) -> &U {
        // SAFETY: `ptr` was derived from the exclusive borrow inside `_held`,
        // which stays alive (and keeps the mutex locked) for `self`'s
        // lifetime; no other alias can exist while the lock is held.
        unsafe { &*self.ptr }
    }
}

impl<U: ?Sized> DerefMut for MappedMutexGuard<'_, U> {
    fn deref_mut(&mut self) -> &mut U {
        // SAFETY: as in `deref`; `&mut self` guarantees exclusivity.
        unsafe { &mut *self.ptr }
    }
}

/// Reader-writer lock (std-backed, no poisoning surface).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").field("data", &&*self.read()).finish()
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of [`Condvar::wait_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the deadline passed.
    pub fn timed_out(self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with this shim's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.wait_until(guard, Instant::now() + timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn mapped_guard_keeps_lock() {
        let m = Mutex::new(Some(7u32));
        let mapped = MutexGuard::map(m.lock(), |o| o.as_mut().expect("some"));
        assert_eq!(*mapped, 7);
        assert!(m.try_lock().is_none(), "mapped guard still holds the lock");
        drop(mapped);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().expect("waiter exits");
    }
}
