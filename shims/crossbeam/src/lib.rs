//! Offline shim for `crossbeam`, providing `crossbeam::channel`.
//!
//! Multi-producer multi-consumer channels with the crossbeam semantics the
//! workspace relies on: `Sender` and `Receiver` are both `Clone + Send +
//! Sync`, `bounded(n)` applies backpressure, and disconnection is reported
//! once every peer on the other side is dropped. Built on a
//! `Mutex<VecDeque>` plus two condvars; throughput is adequate for the
//! simulation workloads in this repository.

pub mod channel;
