//! MPMC channels with crossbeam-compatible types and error enums.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// `None` means unbounded.
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    /// Signalled when an item is pushed or all senders disconnect.
    readable: Condvar,
    /// Signalled when an item is popped or all receivers disconnect.
    writable: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded channel with capacity `cap`. A capacity of zero is
/// treated as one (this shim does not implement rendezvous handoff; the
/// workspace only uses `bounded(1)` reply slots).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The receiver disconnected; the undeliverable value is returned.
pub struct SendError<T>(pub T);

/// Error for [`Receiver::recv`]: every sender disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error for [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// Every sender disconnected and the queue is drained.
    Disconnected,
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout.
    Timeout,
    /// Every sender disconnected and the queue is drained.
    Disconnected,
}

impl<T> Sender<T> {
    /// Send `value`, blocking while a bounded channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &self.shared;
        let mut queue = shared.lock();
        loop {
            if shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = shared
                        .writable
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        shared.readable.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &self.shared;
        let mut queue = shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                shared.writable.notify_one();
                return Ok(v);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = shared
                .readable
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &self.shared;
        let mut queue = shared.lock();
        if let Some(v) = queue.pop_front() {
            drop(queue);
            shared.writable.notify_one();
            return Ok(v);
        }
        if shared.senders.load(Ordering::SeqCst) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receive, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let shared = &self.shared;
        let mut queue = shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                shared.writable.notify_one();
                return Ok(v);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, result) = shared
                .readable
                .wait_timeout(queue, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            queue = q;
            if result.timed_out() && queue.is_empty() {
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator draining the channel until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Blocking iterator over received messages (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.readable.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.writable.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}
impl std::error::Error for TryRecvError {}
impl std::error::Error for RecvTimeoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).expect("receiver alive");
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_reported() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).expect("alive");
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).expect("space");
        tx.send(2).expect("space");
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(3).expect("unblocked by recv"))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().expect("sender thread");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(7).expect("receiver alive");
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        t.join().expect("sender thread");
    }

    #[test]
    fn multi_consumer_each_message_once() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..50 {
            tx.send(i).expect("alive");
        }
        drop(tx);
        let mut seen: Vec<i32> = rx.iter().collect();
        seen.extend(rx2.iter());
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }
}
