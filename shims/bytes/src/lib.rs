//! Offline shim for `bytes`: cheaply cloneable immutable byte buffers.
//!
//! `Bytes` is an `Arc<[u8]>` (or a borrowed `&'static [u8]`), which gives
//! the same O(1) clone the real crate provides for whole-buffer sharing.
//! Sub-slicing (`slice`, `split_off`, …) is not implemented because the
//! workspace never sub-slices a `Bytes`.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wrap a static byte slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                fmt::Write::write_char(f, c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer convertible into [`Bytes`] via [`BytesMut::freeze`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn static_and_empty() {
        let s = Bytes::from_static(b"hello");
        assert_eq!(&s[..], b"hello");
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn mut_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"ab");
        m.put_u8(b'c');
        assert_eq!(m.len(), 3);
        let b = m.freeze();
        assert_eq!(&b[..], b"abc");
    }
}
