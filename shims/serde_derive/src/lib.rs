//! Offline shim of `serde_derive`.
//!
//! Derives `Serialize` / `Deserialize` for the shapes this workspace
//! actually uses: non-generic structs (named, tuple, newtype, unit) and
//! non-generic enums whose variants are unit, newtype, tuple, or struct
//! shaped. Supported field attributes: `#[serde(skip)]` and
//! `#[serde(default)]`. Anything outside that set is rejected with a
//! `compile_error!` so a silent mis-derive can never ship.
//!
//! Implementation notes: the input item is parsed with a small hand
//! written cursor over `proc_macro::TokenTree` (no `syn`), field types
//! are skipped rather than parsed, and the generated impl never names a
//! field's type — `Deserialize` impls bind `Option<_>` locals and let the
//! final struct literal drive inference.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let code = match parse_input(input) {
        Ok(item) => format!("const _: () = {{ {} }};", gen(&item)),
        Err(msg) => return compile_err(&msg),
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => compile_err(&format!("serde_derive shim emitted invalid code: {e}")),
    }
}

fn compile_err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("a string literal always lexes")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<Field>),
    /// Tuple struct with N fields (N == 1 is a newtype).
    Tuple(usize),
    Unit,
}

struct Field {
    /// Identifier as written (may be a raw identifier like `r#type`).
    ident: String,
    skip: bool,
    default: bool,
}

impl Field {
    /// The wire name: the identifier without any `r#` prefix.
    fn wire(&self) -> &str {
        self.ident.strip_prefix("r#").unwrap_or(&self.ident)
    }
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Default)]
struct Attrs {
    skip: bool,
    default: bool,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.at_punct(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(TokenTree::Ident(i)) if i.to_string() == kw => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!(
                "serde_derive shim: expected {what}, found {:?}",
                other.map(|t| t.to_string())
            )),
        }
    }
}

/// Consume any leading `#[...]` attributes, returning the serde-relevant
/// flags. Unsupported `#[serde(...)]` contents are an error.
fn parse_attrs(c: &mut Cursor) -> Result<Attrs, String> {
    let mut attrs = Attrs::default();
    while c.at_punct('#') {
        c.bump();
        let group = match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            _ => return Err("serde_derive shim: malformed attribute".into()),
        };
        let mut inner = Cursor::new(group.stream());
        if !inner.eat_kw("serde") {
            continue; // doc comments, cfg, derive helpers from other macros…
        }
        let args = match inner.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            _ => return Err("serde_derive shim: expected #[serde(...)]".into()),
        };
        for tok in args.stream() {
            match tok {
                TokenTree::Ident(i) => match i.to_string().as_str() {
                    "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                    "default" => attrs.default = true,
                    other => {
                        return Err(format!(
                            "serde_derive shim: unsupported serde attribute `{other}` \
                             (only skip/default are implemented)"
                        ))
                    }
                },
                TokenTree::Punct(p) if p.as_char() == ',' => {}
                other => {
                    return Err(format!(
                        "serde_derive shim: unsupported serde attribute token `{other}`"
                    ))
                }
            }
        }
    }
    Ok(attrs)
}

fn skip_vis(c: &mut Cursor) {
    if c.eat_kw("pub") {
        if let Some(TokenTree::Group(g)) = c.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                c.bump();
            }
        }
    }
}

/// Skip one type, stopping before a top-level `,` or end of stream.
/// Tracks `<...>` nesting; `->` inside fn-pointer types is handled so the
/// `>` is not miscounted.
fn skip_type(c: &mut Cursor) -> Result<(), String> {
    let mut depth: i32 = 0;
    loop {
        match c.peek() {
            None => return Ok(()),
            Some(TokenTree::Punct(p)) => {
                let ch = p.as_char();
                if ch == ',' && depth == 0 {
                    return Ok(());
                }
                c.bump();
                match ch {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    '-' => {
                        // Swallow the `>` of an `->` arrow.
                        if c.at_punct('>') {
                            c.bump();
                        }
                    }
                    _ => {}
                }
                if depth < 0 {
                    return Err("serde_derive shim: unbalanced angle brackets in type".into());
                }
            }
            Some(_) => {
                c.bump();
            }
        }
    }
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(ts);
    let mut out = Vec::new();
    while c.peek().is_some() {
        let attrs = parse_attrs(&mut c)?;
        skip_vis(&mut c);
        let ident = c.expect_ident("a field name")?;
        if !c.eat_punct(':') {
            return Err(format!("serde_derive shim: expected `:` after field `{ident}`"));
        }
        skip_type(&mut c)?;
        c.eat_punct(',');
        out.push(Field {
            ident,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    Ok(out)
}

/// Count the fields of a tuple struct / tuple variant: one per non-empty
/// top-level comma-separated segment.
fn count_tuple_fields(ts: TokenStream) -> Result<usize, String> {
    let mut c = Cursor::new(ts);
    let mut count = 0;
    while c.peek().is_some() {
        // A segment may start with attributes.
        parse_attrs(&mut c)?;
        skip_vis(&mut c);
        if c.peek().is_none() {
            break; // trailing comma
        }
        skip_type(&mut c)?;
        c.eat_punct(',');
        count += 1;
    }
    Ok(count)
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut out = Vec::new();
    while c.peek().is_some() {
        parse_attrs(&mut c)?;
        let name = c.expect_ident("a variant name")?;
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                c.bump();
                match count_tuple_fields(stream)? {
                    0 => Shape::Tuple(0),
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                c.bump();
                Shape::Struct(parse_named_fields(stream)?)
            }
            _ => Shape::Unit,
        };
        if c.eat_punct('=') {
            // Explicit discriminant: skip its expression.
            skip_type(&mut c)?;
        }
        c.eat_punct(',');
        out.push(Variant { name, shape });
    }
    Ok(out)
}

fn parse_input(ts: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(ts);
    parse_attrs(&mut c)?;
    skip_vis(&mut c);
    let is_struct = if c.eat_kw("struct") {
        true
    } else if c.eat_kw("enum") {
        false
    } else {
        return Err("serde_derive shim: only structs and enums are supported".into());
    };
    let name = c.expect_ident("a type name")?;
    if c.at_punct('<') {
        return Err(format!(
            "serde_derive shim: `{name}` is generic; generic derives are not supported"
        ));
    }
    let kind = if is_struct {
        match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())?))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            _ => return Err(format!("serde_derive shim: malformed struct `{name}`")),
        }
    } else {
        match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("serde_derive shim: malformed enum `{name}`")),
        }
    };
    Ok(Input { name, kind })
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => {
            format!("::serde::Serializer::serialize_unit_struct(__s, \"{name}\")")
        }
        Kind::Struct(Fields::Tuple(1)) => format!(
            "::serde::Serializer::serialize_newtype_struct(__s, \"{name}\", &self.0)"
        ),
        Kind::Struct(Fields::Tuple(n)) => {
            let mut b = format!(
                "let mut __t = ::serde::Serializer::serialize_tuple_struct(__s, \"{name}\", {n})?;\n"
            );
            for i in 0..*n {
                b.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __t, &self.{i})?;\n"
                ));
            }
            b.push_str("::serde::ser::SerializeTupleStruct::end(__t)");
            b
        }
        Kind::Struct(Fields::Named(fields)) => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut b = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__s, \"{name}\", {})?;\n",
                active.len()
            );
            for f in &active {
                b.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{}\", &self.{})?;\n",
                    f.wire(),
                    f.ident
                ));
            }
            b.push_str("::serde::ser::SerializeStruct::end(__st)");
            b
        }
        Kind::Enum(variants) => gen_serialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __s: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        let arm = match &v.shape {
            Shape::Unit => format!(
                "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                 __s, \"{name}\", {idx}u32, \"{vname}\"),\n"
            ),
            Shape::Newtype => format!(
                "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(\
                 __s, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
            ),
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let mut b = format!(
                    "{name}::{vname}({}) => {{\n\
                     let mut __tv = ::serde::Serializer::serialize_tuple_variant(\
                     __s, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                    binds.join(", ")
                );
                for bind in &binds {
                    b.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __tv, {bind})?;\n"
                    ));
                }
                b.push_str("::serde::ser::SerializeTupleVariant::end(__tv)\n}\n");
                b
            }
            Shape::Struct(fields) => {
                let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                let binds: Vec<&str> = active.iter().map(|f| f.ident.as_str()).collect();
                let mut b = format!(
                    "{name}::{vname} {{ {}.. }} => {{\n\
                     let mut __sv = ::serde::Serializer::serialize_struct_variant(\
                     __s, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                    binds
                        .iter()
                        .map(|f| format!("{f}, "))
                        .collect::<String>(),
                    active.len()
                );
                for f in &active {
                    b.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(\
                         &mut __sv, \"{}\", {})?;\n",
                        f.wire(),
                        f.ident
                    ));
                }
                b.push_str("::serde::ser::SerializeStructVariant::end(__sv)\n}\n");
                b
            }
        };
        arms.push_str(&arm);
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!(
            "{}\n::serde::Deserializer::deserialize_unit_struct(__d, \"{name}\", __Visitor)",
            unit_visitor(name)
        ),
        Kind::Struct(Fields::Tuple(1)) => format!(
            "{}\n::serde::Deserializer::deserialize_newtype_struct(__d, \"{name}\", __Visitor)",
            newtype_visitor(name)
        ),
        Kind::Struct(Fields::Tuple(n)) => format!(
            "{}\n::serde::Deserializer::deserialize_tuple_struct(__d, \"{name}\", {n}, __Visitor)",
            tuple_visitor(name, &format!("{name}"), *n, "__Visitor")
        ),
        Kind::Struct(Fields::Named(fields)) => {
            let (items, names) = named_visitor(name, name, fields, "");
            format!(
                "{items}\n::serde::Deserializer::deserialize_struct(\
                 __d, \"{name}\", &[{names}], __Visitor)"
            )
        }
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn visitor_header(visitor: &str, value: &str, expecting: &str) -> String {
    format!(
        "struct {visitor};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor} {{\n\
             type Value = {value};\n\
             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"{expecting}\")\n\
             }}\n"
    )
}

fn unit_visitor(name: &str) -> String {
    format!(
        "{}\
             fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<{name}, __E> {{\n\
                 ::core::result::Result::Ok({name})\n\
             }}\n\
         }}",
        visitor_header("__Visitor", name, &format!("unit struct {name}"))
    )
}

fn newtype_visitor(name: &str) -> String {
    format!(
        "{}\
             fn visit_newtype_struct<__D2: ::serde::Deserializer<'de>>(self, __d2: __D2)\n\
                 -> ::core::result::Result<{name}, __D2::Error> {{\n\
                 ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d2)?))\n\
             }}\n\
         }}",
        visitor_header("__Visitor", name, &format!("newtype struct {name}"))
    )
}

/// Visitor for a tuple struct or tuple variant: `construct` is the path to
/// build (`Name` or `Name::Variant`), `value` the visitor's value type.
fn tuple_visitor(value: &str, construct: &str, n: usize, visitor: &str) -> String {
    let mut body = String::new();
    for i in 0..n {
        body.push_str(&format!(
            "let __e{i} = match __seq.next_element()? {{\n\
                 ::core::option::Option::Some(__v) => __v,\n\
                 ::core::option::Option::None => return ::core::result::Result::Err(\n\
                     <__A::Error as ::serde::de::Error>::invalid_length({i}usize, \
                     \"{construct} with {n} elements\")),\n\
             }};\n"
        ));
    }
    let elems: Vec<String> = (0..n).map(|i| format!("__e{i}")).collect();
    format!(
        "{}\
             fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                 -> ::core::result::Result<{value}, __A::Error> {{\n\
                 {body}\
                 ::core::result::Result::Ok({construct}({}))\n\
             }}\n\
         }}",
        visitor_header(visitor, value, &format!("{construct} with {n} elements")),
        elems.join(", ")
    )
}

/// Visitor plus key-identifier type for a named-field struct or struct
/// variant. Returns `(items, wire_names_csv)`; the visitor is named
/// `__Visitor{suffix}` and the key type `__Field{suffix}`.
fn named_visitor(value: &str, construct: &str, fields: &[Field], suffix: &str) -> (String, String) {
    let visitor = format!("__Visitor{suffix}");
    let field_ty = format!("__Field{suffix}");
    let field_vis = format!("__FieldVisitor{suffix}");
    let active: Vec<(usize, &Field)> = fields.iter().filter(|f| !f.skip).enumerate().collect();

    let names_csv: String = active
        .iter()
        .map(|(_, f)| format!("\"{}\", ", f.wire()))
        .collect();

    // Key identifier type: deserializes a field name into its index.
    let str_arms: String = active
        .iter()
        .map(|(i, f)| format!("\"{}\" => {i}usize,\n", f.wire()))
        .collect();
    let key_item = format!(
        "struct {field_ty}(usize);\n\
         impl<'de> ::serde::Deserialize<'de> for {field_ty} {{\n\
             fn deserialize<__D2: ::serde::Deserializer<'de>>(__d2: __D2)\n\
                 -> ::core::result::Result<Self, __D2::Error> {{\n\
                 struct {field_vis};\n\
                 impl<'de> ::serde::de::Visitor<'de> for {field_vis} {{\n\
                     type Value = {field_ty};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"a field identifier\")\n\
                     }}\n\
                     fn visit_str<__E: ::serde::de::Error>(self, __v: &str)\n\
                         -> ::core::result::Result<{field_ty}, __E> {{\n\
                         ::core::result::Result::Ok({field_ty}(match __v {{\n\
                             {str_arms}\
                             _ => usize::MAX,\n\
                         }}))\n\
                     }}\n\
                     fn visit_u64<__E: ::serde::de::Error>(self, __v: u64)\n\
                         -> ::core::result::Result<{field_ty}, __E> {{\n\
                         ::core::result::Result::Ok({field_ty}(__v as usize))\n\
                     }}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_identifier(__d2, {field_vis})\n\
             }}\n\
         }}\n"
    );

    // visit_map body.
    let mut decls = String::new();
    let mut arms = String::new();
    for (i, f) in &active {
        decls.push_str(&format!(
            "let mut __v{i}: ::core::option::Option<_> = ::core::option::Option::None;\n"
        ));
        arms.push_str(&format!(
            "{i}usize => {{\n\
                 if __v{i}.is_some() {{\n\
                     return ::core::result::Result::Err(\n\
                         <__A::Error as ::serde::de::Error>::duplicate_field(\"{}\"));\n\
                 }}\n\
                 __v{i} = ::core::option::Option::Some(__map.next_value()?);\n\
             }}\n",
            f.wire()
        ));
    }
    let mut build = String::new();
    let mut active_iter = active.iter();
    for f in fields {
        if f.skip {
            build.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.ident
            ));
            continue;
        }
        let (i, _) = active_iter.next().expect("active fields align");
        if f.default {
            build.push_str(&format!(
                "{}: match __v{i} {{\n\
                     ::core::option::Option::Some(__v) => __v,\n\
                     ::core::option::Option::None => ::core::default::Default::default(),\n\
                 }},\n",
                f.ident
            ));
        } else {
            build.push_str(&format!(
                "{}: match __v{i} {{\n\
                     ::core::option::Option::Some(__v) => __v,\n\
                     ::core::option::Option::None => return ::core::result::Result::Err(\n\
                         <__A::Error as ::serde::de::Error>::missing_field(\"{}\")),\n\
                 }},\n",
                f.ident,
                f.wire()
            ));
        }
    }

    let visitor_item = format!(
        "{}\
             fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A)\n\
                 -> ::core::result::Result<{value}, __A::Error> {{\n\
                 {decls}\
                 while let ::core::option::Option::Some(__k) = __map.next_key::<{field_ty}>()? {{\n\
                     match __k.0 {{\n\
                         {arms}\
                         _ => {{\n\
                             let _skipped: ::serde::de::IgnoredAny = __map.next_value()?;\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 ::core::result::Result::Ok({construct} {{\n\
                     {build}\
                 }})\n\
             }}\n\
         }}\n",
        visitor_header(&visitor, value, &format!("struct {construct}"))
    );

    (format!("{key_item}{visitor_item}"), names_csv)
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let variant_names: String = variants
        .iter()
        .map(|v| format!("\"{}\", ", v.name))
        .collect();
    let str_arms: String = variants
        .iter()
        .enumerate()
        .map(|(i, v)| format!("\"{}\" => {i}usize,\n", v.name))
        .collect();

    // Identifier type for variant names.
    let key_item = format!(
        "struct __Variant(usize);\n\
         impl<'de> ::serde::Deserialize<'de> for __Variant {{\n\
             fn deserialize<__D2: ::serde::Deserializer<'de>>(__d2: __D2)\n\
                 -> ::core::result::Result<Self, __D2::Error> {{\n\
                 struct __VariantVisitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __VariantVisitor {{\n\
                     type Value = __Variant;\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"a variant identifier\")\n\
                     }}\n\
                     fn visit_str<__E: ::serde::de::Error>(self, __v: &str)\n\
                         -> ::core::result::Result<__Variant, __E> {{\n\
                         ::core::result::Result::Ok(__Variant(match __v {{\n\
                             {str_arms}\
                             _ => return ::core::result::Result::Err(\n\
                                 <__E as ::serde::de::Error>::unknown_variant(__v, __VARIANTS)),\n\
                         }}))\n\
                     }}\n\
                     fn visit_u64<__E: ::serde::de::Error>(self, __v: u64)\n\
                         -> ::core::result::Result<__Variant, __E> {{\n\
                         ::core::result::Result::Ok(__Variant(__v as usize))\n\
                     }}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_identifier(__d2, __VariantVisitor)\n\
             }}\n\
         }}\n"
    );

    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        let arm = match &v.shape {
            Shape::Unit => format!(
                "{idx}usize => {{\n\
                     ::serde::de::VariantAccess::unit_variant(__va)?;\n\
                     ::core::result::Result::Ok({name}::{vname})\n\
                 }}\n"
            ),
            Shape::Newtype => format!(
                "{idx}usize => ::core::result::Result::Ok({name}::{vname}(\n\
                     ::serde::de::VariantAccess::newtype_variant(__va)?)),\n"
            ),
            Shape::Tuple(n) => {
                let visitor = format!("__TupleVisitor{idx}");
                format!(
                    "{idx}usize => {{\n\
                         {}\n\
                         ::serde::de::VariantAccess::tuple_variant(__va, {n}, {visitor})\n\
                     }}\n",
                    tuple_visitor(name, &format!("{name}::{vname}"), *n, &visitor)
                )
            }
            Shape::Struct(fields) => {
                let suffix = format!("{idx}");
                let (items, names) =
                    named_visitor(name, &format!("{name}::{vname}"), fields, &suffix);
                format!(
                    "{idx}usize => {{\n\
                         {items}\n\
                         ::serde::de::VariantAccess::struct_variant(__va, &[{names}], __Visitor{suffix})\n\
                     }}\n"
                )
            }
        };
        arms.push_str(&arm);
    }

    let enum_visitor = format!(
        "{}\
             fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                 -> ::core::result::Result<{name}, __A::Error> {{\n\
                 let (__variant, __va) = ::serde::de::EnumAccess::variant::<__Variant>(__data)?;\n\
                 match __variant.0 {{\n\
                     {arms}\
                     _ => ::core::result::Result::Err(\n\
                         <__A::Error as ::serde::de::Error>::custom(\n\
                             \"variant index out of range for enum {name}\")),\n\
                 }}\n\
             }}\n\
         }}",
        visitor_header("__EnumVisitor", name, &format!("enum {name}"))
    );

    format!(
        "const __VARIANTS: &'static [&'static str] = &[{variant_names}];\n\
         {key_item}\
         {enum_visitor}\n\
         ::serde::Deserializer::deserialize_enum(__d, \"{name}\", __VARIANTS, __EnumVisitor)"
    )
}
