//! Offline shim of `criterion`: the benchmarking API this workspace's
//! benches are written against, backed by a plain wall-clock sampler.
//!
//! No statistical analysis, plots, or baseline comparison — each benchmark
//! runs a calibrated number of iterations and prints the mean time per
//! iteration (plus throughput when configured). Good enough to smoke-run
//! `cargo bench` and keep relative numbers meaningful offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&id.render(), 10, Duration::from_secs(1), None, f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark (upper bound in this shim).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for parity; the shim does not warm up separately.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Report throughput alongside iteration time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.render()),
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (formatting no-op in this shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Bytes per iteration, reported in decimal multiples.
    BytesDecimal(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` runs of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Let the closure time itself over the requested iteration count.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: one iteration to estimate cost, then pick an iteration
    // count that keeps each sample comfortably inside the time budget.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.max(Duration::from_millis(10));
    let per_sample = budget.as_nanos() / (sample_size.max(1) as u128) / 2;
    let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut best = Duration::MAX;
    let started = Instant::now();
    for _ in 0..sample_size {
        let mut sample = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut sample);
        total += sample.elapsed;
        total_iters += iters;
        let mean_this = sample.elapsed / (iters.max(1) as u32);
        if mean_this < best {
            best = mean_this;
        }
        if started.elapsed() > budget {
            break;
        }
    }

    let mean = if total_iters > 0 {
        Duration::from_nanos((total.as_nanos() / total_iters.max(1) as u128) as u64)
    } else {
        Duration::ZERO
    };
    match throughput {
        Some(Throughput::Bytes(bytes) | Throughput::BytesDecimal(bytes)) => {
            let secs = mean.as_secs_f64();
            let rate = if secs > 0.0 {
                bytes as f64 / secs / (1024.0 * 1024.0)
            } else {
                f64::INFINITY
            };
            println!("bench {label:<48} {mean:>12?}/iter  {rate:>10.1} MiB/s");
        }
        Some(Throughput::Elements(elements)) => {
            let secs = mean.as_secs_f64();
            let rate = if secs > 0.0 {
                elements as f64 / secs
            } else {
                f64::INFINITY
            };
            println!("bench {label:<48} {mean:>12?}/iter  {rate:>10.0} elem/s");
        }
        None => println!("bench {label:<48} {mean:>12?}/iter  (best {best:?})"),
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(7u64.pow(2));
                }
                start.elapsed()
            })
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
