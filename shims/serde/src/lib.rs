//! Offline shim of `serde`: the serialization data model this workspace
//! programs against, reimplemented in-tree so the build needs no network.
//!
//! The API mirrors real serde closely enough that `crates/codec`'s binary
//! format (a full `Serializer`/`Deserializer` pair) and the workspace's
//! derived types compile unchanged. Deliberately out of scope: zero-copy
//! `&'de str` deserialization of owned formats, `Unexpected`-typed error
//! constructors, and the long tail of std impls nothing here touches.

pub mod de;
pub mod ser;

pub use crate::de::{Deserialize, DeserializeOwned, Deserializer};
pub use crate::ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
