//! Deserialization half of the serde data model.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

/// Error produced by a [`Deserializer`].
///
/// The helper constructors (`missing_field`, `unknown_variant`, …) take
/// plain strings rather than real serde's `Unexpected`/`Expected` types;
/// nothing in this workspace constructs those.
pub trait Error: Sized + std::error::Error {
    /// Build an error from an arbitrary display-able message.
    fn custom<T: fmt::Display>(msg: T) -> Self;

    /// A value of the wrong type was encountered.
    fn invalid_type(unexpected: &str, expected: &str) -> Self {
        Self::custom(format_args!(
            "invalid type: {unexpected}, expected {expected}"
        ))
    }

    /// A value of the right type but wrong content was encountered.
    fn invalid_value(unexpected: &str, expected: &str) -> Self {
        Self::custom(format_args!(
            "invalid value: {unexpected}, expected {expected}"
        ))
    }

    /// A sequence or tuple ended early.
    fn invalid_length(len: usize, expected: &str) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }

    /// An enum variant name that is not part of the expected set.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A struct field name that is not part of the expected set.
    fn unknown_field(field: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown field `{field}`, expected one of {expected:?}"
        ))
    }

    /// A required struct field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// A struct field appeared twice.
    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }
}

/// A value that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value from `deserializer`.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point; `PhantomData<T>` is the stateless
/// seed standing in for `T: Deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserialize using this seed.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A serde data format's deserialization driver.
pub trait Deserializer<'de>: Sized {
    /// Error type for this format.
    type Error: Error;

    /// Deserialize whatever the input contains next.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `i128`.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `u128`.
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect owned bytes.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect an optional value.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expect a struct with the given fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect an enum with the given variants.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expect a struct-field or enum-variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skip over whatever the input contains next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable. Binary formats return false.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Renders "invalid type: {got}, expected {visitor.expecting()}" for the
/// default [`Visitor`] methods.
fn type_mismatch<'de, V: Visitor<'de>>(visitor: &V, got: &str) -> String {
    struct Expecting<'a, 'de, V: Visitor<'de>>(&'a V, PhantomData<fn() -> &'de ()>);
    impl<'a, 'de, V: Visitor<'de>> fmt::Display for Expecting<'a, 'de, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    format!(
        "invalid type: {got}, expected {}",
        Expecting(visitor, PhantomData)
    )
}

/// Receives values from a [`Deserializer`]. Every method defaults to a
/// type-mismatch error (or widening, for the narrow integer visits).
pub trait Visitor<'de>: Sized {
    /// The produced value.
    type Value;

    /// Describe what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Receive a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(type_mismatch(&self, "a boolean")))
    }

    /// Receive an `i8` (widens to [`Visitor::visit_i64`]).
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    /// Receive an `i16` (widens to [`Visitor::visit_i64`]).
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    /// Receive an `i32` (widens to [`Visitor::visit_i64`]).
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    /// Receive an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(type_mismatch(&self, "an integer")))
    }

    /// Receive an `i128`.
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(type_mismatch(&self, "a 128-bit integer")))
    }

    /// Receive a `u8` (widens to [`Visitor::visit_u64`]).
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    /// Receive a `u16` (widens to [`Visitor::visit_u64`]).
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    /// Receive a `u32` (widens to [`Visitor::visit_u64`]).
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    /// Receive a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(type_mismatch(&self, "an unsigned integer")))
    }

    /// Receive a `u128`.
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(type_mismatch(&self, "a 128-bit unsigned integer")))
    }

    /// Receive an `f32` (widens to [`Visitor::visit_f64`]).
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }

    /// Receive an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(type_mismatch(&self, "a float")))
    }

    /// Receive a `char` (defaults to a one-character string visit).
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        let mut buf = [0u8; 4];
        self.visit_str(v.encode_utf8(&mut buf))
    }

    /// Receive a transient string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(type_mismatch(&self, "a string")))
    }

    /// Receive a string slice borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Receive an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Receive transient bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(type_mismatch(&self, "bytes")))
    }

    /// Receive bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Receive an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Receive an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(type_mismatch(&self, "an optional")))
    }

    /// Receive a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = &deserializer;
        Err(D::Error::custom(type_mismatch(&self, "an optional")))
    }

    /// Receive `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(type_mismatch(&self, "a unit")))
    }

    /// Receive a newtype struct's inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = &deserializer;
        Err(D::Error::custom(type_mismatch(&self, "a newtype struct")))
    }

    /// Receive a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = &seq;
        Err(A::Error::custom(type_mismatch(&self, "a sequence")))
    }

    /// Receive a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = &map;
        Err(A::Error::custom(type_mismatch(&self, "a map")))
    }

    /// Receive an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = &data;
        Err(A::Error::custom(type_mismatch(&self, "an enum")))
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error type of the owning deserializer.
    type Error: Error;

    /// Deserialize the next element with an explicit seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserialize the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Number of remaining elements, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map or the fields of a struct.
pub trait MapAccess<'de> {
    /// Error type of the owning deserializer.
    type Error: Error;

    /// Deserialize the next key with an explicit seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserialize the value following a key, with an explicit seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    /// Deserialize the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserialize the value following a key.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Deserialize the next key/value entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Number of remaining entries, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type of the owning deserializer.
    type Error: Error;
    /// Accessor for the variant's contents.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserialize the variant identifier with an explicit seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserialize the variant identifier.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the contents of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type of the owning deserializer.
    type Error: Error;

    /// The variant is unit-shaped.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// The variant wraps one value; deserialize it with an explicit seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// The variant wraps one value.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// The variant is tuple-shaped.
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    /// The variant is struct-shaped.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Efficiently discards one value of any shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IgnoredVisitor;
        impl<'de> Visitor<'de> for IgnoredVisitor {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("anything at all")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i128<E: Error>(self, _: i128) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u128<E: Error>(self, _: u128) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_char<E: Error>(self, _: char) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_bytes<E: Error>(self, _: &[u8]) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D2: Deserializer<'de>>(self, d: D2) -> Result<IgnoredAny, D2::Error> {
                IgnoredAny::deserialize(d)
            }
            fn visit_newtype_struct<D2: Deserializer<'de>>(
                self,
                d: D2,
            ) -> Result<IgnoredAny, D2::Error> {
                IgnoredAny::deserialize(d)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while let Some(IgnoredAny) = seq.next_element()? {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while let Some((IgnoredAny, IgnoredAny)) = map.next_entry()? {}
                Ok(IgnoredAny)
            }
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<IgnoredAny, A::Error> {
                let (IgnoredAny, variant) = data.variant::<IgnoredAny>()?;
                variant.newtype_variant::<IgnoredAny>()?;
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(IgnoredVisitor)
    }
}

/// Conversion into a [`Deserializer`], used to reinterpret already-decoded
/// keys (e.g. struct field names) as inputs for identifier seeds.
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Perform the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

impl<'de, E: Error> IntoDeserializer<'de, E> for &'de str {
    type Deserializer = value::StrDeserializer<'de, E>;
    fn into_deserializer(self) -> value::StrDeserializer<'de, E> {
        value::StrDeserializer::new(self)
    }
}

pub mod value {
    //! Deserializers over already-decoded values.

    use super::*;

    /// String-backed error type; the default for [`IntoDeserializer`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error {
                msg: msg.to_string(),
            }
        }
    }

    impl crate::ser::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error {
                msg: msg.to_string(),
            }
        }
    }

    /// Forwards every `deserialize_*` method to `deserialize_any`; each
    /// value deserializer below has exactly one natural visit.
    macro_rules! forward_all_to_any {
        () => {
            fn deserialize_bool<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_i128<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_u128<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_char<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_string<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_bytes<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_byte_buf<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_unit<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_unit_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_newtype_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_tuple<V: Visitor<'de>>(
                self,
                _len: usize,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_tuple_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _len: usize,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _fields: &'static [&'static str],
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_enum<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _variants: &'static [&'static str],
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_identifier<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
            fn deserialize_ignored_any<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(visitor)
            }
        };
    }

    /// Deserializer over an already-decoded string slice.
    #[derive(Debug, Clone, Copy)]
    pub struct StrDeserializer<'de, E> {
        value: &'de str,
        marker: PhantomData<E>,
    }

    impl<'de, E> StrDeserializer<'de, E> {
        /// Wrap `value`.
        pub fn new(value: &'de str) -> Self {
            StrDeserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    impl<'de, E: super::Error> Deserializer<'de> for StrDeserializer<'de, E> {
        type Error = E;
        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_borrowed_str(self.value)
        }
        fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_some(self)
        }
        forward_all_to_any!();
    }

    /// Deserializer producing `()`.
    #[derive(Debug, Clone, Copy)]
    pub struct UnitDeserializer<E> {
        marker: PhantomData<E>,
    }

    impl<E> UnitDeserializer<E> {
        /// Create the unit deserializer.
        pub fn new() -> Self {
            UnitDeserializer {
                marker: PhantomData,
            }
        }
    }

    impl<E> Default for UnitDeserializer<E> {
        fn default() -> Self {
            UnitDeserializer::new()
        }
    }

    impl<'de, E: super::Error> Deserializer<'de> for UnitDeserializer<E> {
        type Error = E;
        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_unit()
        }
        fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_none()
        }
        forward_all_to_any!();
    }

    /// Adapts a [`SeqAccess`] into a full deserializer.
    #[derive(Debug)]
    pub struct SeqAccessDeserializer<A> {
        seq: A,
    }

    impl<A> SeqAccessDeserializer<A> {
        /// Wrap `seq`.
        pub fn new(seq: A) -> Self {
            SeqAccessDeserializer { seq }
        }
    }

    impl<'de, A: SeqAccess<'de>> Deserializer<'de> for SeqAccessDeserializer<A> {
        type Error = A::Error;
        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            visitor.visit_seq(self.seq)
        }
        fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            visitor.visit_some(self)
        }
        forward_all_to_any!();
    }

    /// Adapts a [`MapAccess`] into a full deserializer.
    #[derive(Debug)]
    pub struct MapAccessDeserializer<A> {
        map: A,
    }

    impl<A> MapAccessDeserializer<A> {
        /// Wrap `map`.
        pub fn new(map: A) -> Self {
            MapAccessDeserializer { map }
        }
    }

    impl<'de, A: MapAccess<'de>> Deserializer<'de> for MapAccessDeserializer<A> {
        type Error = A::Error;
        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            visitor.visit_map(self.map)
        }
        fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            visitor.visit_some(self)
        }
        forward_all_to_any!();
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! integer_deserialize {
    ($($t:ty => $method:ident,)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct IntVisitor;
                impl<'de> Visitor<'de> for IntVisitor {
                    type Value = $t;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(concat!("an integer fitting in ", stringify!($t)))
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                "integer {v} out of range for {}",
                                stringify!($t)
                            ))
                        })
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                "integer {v} out of range for {}",
                                stringify!($t)
                            ))
                        })
                    }
                    fn visit_i128<E: Error>(self, v: i128) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                "integer {v} out of range for {}",
                                stringify!($t)
                            ))
                        })
                    }
                    fn visit_u128<E: Error>(self, v: u128) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!(
                                "integer {v} out of range for {}",
                                stringify!($t)
                            ))
                        })
                    }
                }
                deserializer.$method(IntVisitor)
            }
        }
    )*};
}

integer_deserialize! {
    i8 => deserialize_i8,
    i16 => deserialize_i16,
    i32 => deserialize_i32,
    i64 => deserialize_i64,
    i128 => deserialize_i128,
    isize => deserialize_i64,
    u8 => deserialize_u8,
    u16 => deserialize_u16,
    u32 => deserialize_u32,
    u64 => deserialize_u64,
    u128 => deserialize_u128,
    usize => deserialize_u64,
}

macro_rules! float_deserialize {
    ($($t:ty => $method:ident,)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct FloatVisitor;
                impl<'de> Visitor<'de> for FloatVisitor {
                    type Value = $t;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(concat!("a ", stringify!($t)))
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                }
                deserializer.$method(FloatVisitor)
            }
        }
    )*};
}

float_deserialize! {
    f32 => deserialize_f32,
    f64 => deserialize_f64,
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;
        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a boolean")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(BoolVisitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a character")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::invalid_value("a multi-character string", "one character")),
                }
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for std::path::PathBuf {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(std::path::PathBuf::from)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an optional value")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D2: Deserializer<'de>>(self, d: D2) -> Result<Option<T>, D2::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

macro_rules! seq_deserialize {
    ($ty:ident <T $(: $bound:ident $(+ $bound2:ident)*)?>, $with:expr, $insert:expr) => {
        impl<'de, T: Deserialize<'de> $(+ $bound $(+ $bound2)*)?> Deserialize<'de> for $ty<T> {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct SeqVisitor<T>(PhantomData<T>);
                impl<'de, T: Deserialize<'de> $(+ $bound $(+ $bound2)*)?> Visitor<'de> for SeqVisitor<T> {
                    type Value = $ty<T>;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a sequence")
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<$ty<T>, A::Error> {
                        #[allow(clippy::redundant_closure_call)]
                        let mut out = ($with)(seq.size_hint().unwrap_or(0).min(4096));
                        while let Some(element) = seq.next_element()? {
                            #[allow(clippy::redundant_closure_call)]
                            ($insert)(&mut out, element);
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_seq(SeqVisitor(PhantomData))
            }
        }
    };
}

seq_deserialize!(Vec<T>, |cap| Vec::with_capacity(cap), |v: &mut Vec<T>, e| v.push(e));
seq_deserialize!(
    VecDeque<T>,
    |cap| VecDeque::with_capacity(cap),
    |v: &mut VecDeque<T>, e| v.push_back(e)
);
seq_deserialize!(
    BTreeSet<T: Ord>,
    |_cap| BTreeSet::new(),
    |v: &mut BTreeSet<T>, e| {
        v.insert(e);
    }
);
seq_deserialize!(
    HashSet<T: Eq + Hash>,
    |cap| HashSet::with_capacity(cap),
    |v: &mut HashSet<T>, e| {
        v.insert(e);
    }
);

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((key, value)) = map.next_entry()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, S>(PhantomData<(K, V, S)>);
        impl<'de, K, V, S> Visitor<'de> for MapVisitor<K, V, S>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            S: BuildHasher + Default,
        {
            type Value = HashMap<K, V, S>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_hasher(S::default());
                while let Some((key, value)) = map.next_entry()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

macro_rules! tuple_deserialize {
    ($len:expr => $($name:ident)+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(concat!("a tuple of length ", stringify!($len)))
                    }
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        let mut index = 0usize;
                        Ok(($(
                            {
                                let element: $name = match seq.next_element()? {
                                    Some(value) => value,
                                    None => {
                                        return Err(<Acc::Error as Error>::invalid_length(
                                            index,
                                            concat!("a tuple of length ", stringify!($len)),
                                        ))
                                    }
                                };
                                index += 1;
                                let _ = index;
                                element
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    };
}

tuple_deserialize!(1 => T0);
tuple_deserialize!(2 => T0 T1);
tuple_deserialize!(3 => T0 T1 T2);
tuple_deserialize!(4 => T0 T1 T2 T3);
tuple_deserialize!(5 => T0 T1 T2 T3 T4);
tuple_deserialize!(6 => T0 T1 T2 T3 T4 T5);
tuple_deserialize!(7 => T0 T1 T2 T3 T4 T5 T6);
tuple_deserialize!(8 => T0 T1 T2 T3 T4 T5 T6 T7);
