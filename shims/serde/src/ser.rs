//! Serialization half of the serde data model.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

/// Error produced by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Build an error from an arbitrary display-able message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A value that can be serialized into any serde data format.
pub trait Serialize {
    /// Serialize `self` into `serializer`.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A serde data format's serialization driver.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type for this format.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i128`.
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u128`.
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct like `struct Marker;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct like `struct Wrapper(T);`.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin serializing a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin serializing a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin serializing a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin serializing a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin serializing a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin serializing a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Serialize a `Display` value as a string.
    fn collect_str<T: fmt::Display + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(&value.to_string())
    }

    /// Whether the format is human readable. Binary formats return false.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Compound serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serialize one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Record a skipped field (no-op by default).
    fn skip_field(&mut self, key: &'static str) -> Result<(), Self::Error> {
        let _ = key;
        Ok(())
    }
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! primitive_serialize {
    ($($t:ty => $method:ident,)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

primitive_serialize! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    i128 => serialize_i128,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    u128 => serialize_u128,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for std::path::Path {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self.to_str() {
            Some(s) => serializer.serialize_str(s),
            None => Err(Error::custom("path contains invalid UTF-8")),
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_path().serialize(serializer)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for element in iter {
        seq.serialize_element(&element)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for element in self {
            tuple.serialize_element(element)?;
        }
        tuple.end()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize + Eq + Hash, H: BuildHasher> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

macro_rules! tuple_serialize {
    ($len:expr => $(($idx:tt $name:ident))+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tuple = serializer.serialize_tuple($len)?;
                $(SerializeTuple::serialize_element(&mut tuple, &self.$idx)?;)+
                tuple.end()
            }
        }
    };
}

tuple_serialize!(1 => (0 T0));
tuple_serialize!(2 => (0 T0) (1 T1));
tuple_serialize!(3 => (0 T0) (1 T1) (2 T2));
tuple_serialize!(4 => (0 T0) (1 T1) (2 T2) (3 T3));
tuple_serialize!(5 => (0 T0) (1 T1) (2 T2) (3 T3) (4 T4));
tuple_serialize!(6 => (0 T0) (1 T1) (2 T2) (3 T3) (4 T4) (5 T5));
tuple_serialize!(7 => (0 T0) (1 T1) (2 T2) (3 T3) (4 T4) (5 T5) (6 T6));
tuple_serialize!(8 => (0 T0) (1 T1) (2 T2) (3 T3) (4 T4) (5 T5) (6 T6) (7 T7));
