//! Umbrella crate for the Open MPI checkpoint/restart reproduction.
//!
//! Re-exports the public API of every layer and provides small helpers
//! shared by the integration tests and examples. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the experiment index.

#![forbid(unsafe_code)]

pub use codec;
pub use cr_core;
pub use mca;
pub use netsim;
pub use ompi;
pub use opal;
pub use orte;
pub use workloads;

use std::path::PathBuf;

use netsim::{LinkSpec, Topology};
use orte::Runtime;

/// Build a runtime over `nodes` gigabit-ethernet nodes, rooted in a fresh
/// temp directory namespaced by `tag` (tests and examples use this).
pub fn test_runtime(tag: &str, nodes: u32) -> Runtime {
    let dir = scratch_dir(tag);
    Runtime::new(Topology::uniform(nodes, LinkSpec::gigabit_ethernet()), dir)
        .expect("runtime setup")
}

/// A fresh scratch directory namespaced by `tag`, process, and thread.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ompi_cr_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_runtime_builds() {
        let rt = test_runtime("umbrella", 2);
        assert_eq!(rt.topology().len(), 2);
        assert!(rt.stable_dir().is_dir());
        rt.shutdown();
    }
}
