//! Application-level fault tolerance: the SELF CRS component and the
//! synchronous checkpoint API.
//!
//! The paper's design lets applications (not just external tools)
//! participate: they can register callbacks fired around checkpoint /
//! continue / restart (the SELF component, §6.4), request checkpoints
//! themselves through a common API (§1), and declare themselves
//! non-checkpointable around critical sections (§5.1). This example
//! exercises all three.
//!
//! ```text
//! cargo run --release --example self_checkpointing
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cr_core::request::CheckpointOptions;
use mca::McaParams;
use ompi::app::{MpiApp, StepOutcome};
use ompi::{mpirun, restart, Mpi, MpiError, RestartOptions, RunConfig};
use ompi_cr::test_runtime;
use serde::{Deserialize, Serialize};

static CALLBACK_FIRES: AtomicU64 = AtomicU64::new(0);

/// A solver that asks for its own checkpoint every `ckpt_every` steps.
struct SelfCheckpointingApp {
    steps: u64,
    ckpt_every: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SolverState {
    step: u64,
    value: f64,
}

impl MpiApp for SelfCheckpointingApp {
    type State = SolverState;

    fn name(&self) -> &str {
        "self-checkpointing-solver"
    }

    fn init_state(&self, mpi: &Mpi) -> Result<SolverState, MpiError> {
        // Register SELF callbacks (they also re-register after restart via
        // the normal init path of the restarted process).
        let rank = mpi.rank();
        mpi.on_checkpoint(move || {
            CALLBACK_FIRES.fetch_add(1, Ordering::SeqCst);
            println!("  [rank {rank}] SELF on_checkpoint: flushing application buffers");
            Ok(())
        });
        mpi.on_continue(move || {
            println!("  [rank {rank}] SELF on_continue: resuming in place");
            Ok(())
        });
        Ok(SolverState {
            step: 0,
            value: 1.0,
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut SolverState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();

        // A pretend critical section: mark the process non-checkpointable
        // while "talking to hardware", then re-enable.
        mpi.set_checkpointable(false);
        state.value = 0.5 * state.value + 1.0; // converges toward 2.0
        mpi.set_checkpointable(true);

        // Collective work.
        state.value = mpi.allreduce(&comm, state.value, |a, b| (a + b) / 2.0)?;
        state.step += 1;

        // Synchronous checkpoint request from inside the application:
        // rank 0 asks the runtime to checkpoint the whole job.
        if mpi.rank() == 0 && state.step.is_multiple_of(self.ckpt_every) {
            println!("  [rank 0] requesting synchronous checkpoint at step {}", state.step);
            mpi.request_checkpoint(CheckpointOptions::from_rank(0))?;
        }

        Ok(if state.step >= self.steps {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
}

fn main() {
    let rt = test_runtime("self_ckpt", 2);
    let app = Arc::new(SelfCheckpointingApp {
        steps: 30_000,
        ckpt_every: 10_000,
    });

    // Select the SELF CRS component so the callbacks drive checkpointing.
    let params = Arc::new(McaParams::new());
    params.set("crs", "self");

    println!("running 4 ranks with crs=self; rank 0 checkpoints every 10k steps");
    let job = mpirun(&rt, Arc::clone(&app), RunConfig { nprocs: 4, params }).expect("launch");
    let results = job.wait().expect("completes");
    let fires = CALLBACK_FIRES.load(Ordering::SeqCst);
    println!(
        "job finished: {} ranks at step {}, {} SELF checkpoint callbacks fired",
        results.len(),
        results[0].0.step,
        fires
    );
    assert!(fires > 0, "synchronous checkpoints must have fired callbacks");

    // The synchronous checkpoints left a restorable global snapshot.
    let global_ref = rt
        .stable_dir()
        .read_dir()
        .unwrap()
        .next()
        .expect("a snapshot exists")
        .unwrap()
        .path();
    println!("restarting from {} just to prove it is valid", global_ref.display());
    let rt2 = test_runtime("self_ckpt_restart", 1);
    let job = restart(&rt2, app, &global_ref, RestartOptions::default()).expect("restart");
    let results = job.wait().expect("restarted run completes");
    println!(
        "restarted run finished at step {} with value {:.6}",
        results[0].0.step, results[0].0.value
    );
    rt.shutdown();
    rt2.shutdown();
}
