//! Automatic, transparent recovery — the paper's §8 future-work item,
//! running: a supervisor checkpoints the job periodically; when a rank
//! dies mid-run, the survivors are drained and the job restarts from the
//! last snapshot without any operator involvement.
//!
//! ```text
//! cargo run --release --example auto_recovery
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ompi::app::{MpiApp, StepOutcome};
use ompi::supervisor::{run_with_recovery, RecoveryPolicy};
use ompi::{Mpi, MpiError, RunConfig};
use ompi_cr::test_runtime;
use workloads::stencil::{reference_rod, StencilApp};

/// Stencil solver with a one-shot injected failure on rank 3.
struct FlakyStencil {
    inner: StencilApp,
    armed: Arc<AtomicBool>,
}

impl MpiApp for FlakyStencil {
    type State = workloads::stencil::StencilState;

    fn name(&self) -> &str {
        "flaky-stencil"
    }

    fn init_state(&self, mpi: &Mpi) -> Result<Self::State, MpiError> {
        self.inner.init_state(mpi)
    }

    fn step(&self, mpi: &Mpi, state: &mut Self::State) -> Result<StepOutcome, MpiError> {
        if mpi.rank() == 3 && state.iter == 700 && self.armed.swap(false, Ordering::SeqCst) {
            println!("  !! rank 3 dies at iteration 700 (injected hardware fault)");
            return Err(MpiError::PeerLost {
                detail: "injected hardware fault".into(),
            });
        }
        self.inner.step(mpi, state)
    }
}

fn main() {
    let rt = test_runtime("auto_recovery_example", 4);
    let inner = StencilApp {
        cells_per_rank: 256,
        iters: 1500,
        left_boundary: 100.0,
        right_boundary: 0.0,
    };
    let expected = reference_rod(8, 256, 1500, 100.0, 0.0);
    let app = Arc::new(FlakyStencil {
        inner,
        armed: Arc::new(AtomicBool::new(true)),
    });

    println!("running 8 ranks under the recovery supervisor (checkpoint every 100ms)...");
    let policy = RecoveryPolicy {
        checkpoint_every: Duration::from_millis(100),
        max_restarts: 3,
        poll_every: Duration::from_millis(5),
        ..Default::default()
    };
    let (results, report) =
        run_with_recovery(&rt, app, RunConfig::new(8), &policy).expect("supervised run");

    println!(
        "job completed: {} periodic checkpoints, {} restart(s), failures seen: {:?}",
        report.checkpoints, report.restarts, report.failures
    );
    let mut worst = 0.0f64;
    for (rank, (state, _)) in results.iter().enumerate() {
        let slab = &expected[rank * 256..(rank + 1) * 256];
        for (a, b) in state.cells.iter().zip(slab) {
            worst = worst.max((a - b).abs());
        }
    }
    assert_eq!(worst, 0.0);
    println!("final physics identical to a fault-free run (max deviation {worst:e}) ✓");
    rt.shutdown();
}
