//! Scheduler scenario: periodic checkpoints of a long-running simulation,
//! then a maintenance drain (checkpoint-and-terminate), then resume on a
//! differently-sized cluster.
//!
//! This is the workflow the paper's command line tools target: a system
//! administrator checkpoints a user's job "for various reasons such as
//! system maintenance" without knowing anything about how it was started.
//!
//! ```text
//! cargo run --release --example maintenance_window
//! ```

use std::sync::Arc;

use cr_core::request::CheckpointOptions;
use ompi::{mpirun, restart, RestartOptions, RunConfig};
use ompi_cr::test_runtime;
use workloads::stencil::{reference_rod, StencilApp};

fn main() {
    let app = Arc::new(StencilApp {
        cells_per_rank: 512,
        iters: 4_000,
        left_boundary: 100.0,
        right_boundary: 0.0,
    });
    let nprocs = 8;

    // Production cluster: 8 nodes.
    let prod = test_runtime("maintenance_prod", 8);
    let job = mpirun(&prod, Arc::clone(&app), RunConfig::new(nprocs)).expect("launch");
    println!("simulation running on 8 nodes ({nprocs} ranks, 512 cells/rank)");

    // The scheduler takes periodic checkpoints while the job runs.
    let mut last = None;
    for i in 0..3 {
        std::thread::sleep(std::time::Duration::from_millis(120));
        let outcome = job.checkpoint(&CheckpointOptions::tool()).expect("periodic checkpoint");
        println!(
            "  periodic checkpoint #{i}: interval {} ({} ranks) on stable storage",
            outcome.interval, outcome.ranks
        );
        last = Some(outcome);
    }

    // Maintenance window opens: drain the job.
    let final_ckpt = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .expect("drain checkpoint");
    println!(
        "maintenance drain: checkpoint interval {} taken, job terminated",
        final_ckpt.interval
    );
    job.wait().expect("drained");
    prod.shutdown();
    let _ = last;

    // After maintenance only half the nodes come back. The snapshot
    // reference is all the operator has — and all they need.
    let degraded = test_runtime("maintenance_degraded", 4);
    println!("cluster back with 4 nodes; restarting from {}", final_ckpt.global_snapshot.display());
    let job = restart(
        &degraded,
        Arc::clone(&app),
        &final_ckpt.global_snapshot,
        RestartOptions::default(),
    )
    .expect("restart");
    let results = job.wait().expect("completes after maintenance");

    // Physics check: final rod matches the serial fault-free solution.
    let expected = reference_rod(nprocs as usize, 512, 4_000, 100.0, 0.0);
    let mut worst = 0.0f64;
    for (rank, (state, _)) in results.iter().enumerate() {
        let slab = &expected[rank * 512..(rank + 1) * 512];
        for (a, b) in state.cells.iter().zip(slab) {
            worst = worst.max((a - b).abs());
        }
    }
    println!("max |deviation| from fault-free serial solution: {worst:e}");
    assert_eq!(worst, 0.0, "restart must be bit-identical");
    println!("simulation finished correctly across the maintenance window ✓");
    degraded.shutdown();
}
