//! The paper's §7 evaluation as a runnable table: NetPIPE-style latency
//! and bandwidth with the checkpoint/restart infrastructure disabled,
//! interposed with passthrough components (the paper's configuration),
//! and with the real protocols' failure-free paths.
//!
//! ```text
//! cargo run --release --example netpipe
//! ```
//!
//! Expected shape (paper §7): a few percent latency overhead at small
//! message sizes that vanishes as messages grow, and ~0% bandwidth
//! overhead — the cost is per-call, not per-byte.

use workloads::netpipe::{run_matrix, size_ladder, NetpipeSample};

fn main() {
    let sizes = size_ladder(1 << 20);
    let reps = 400;

    println!("collecting: modes interleaved per size, {reps} round trips per size, 2 passes (first discarded)\n");
    let results: Vec<(workloads::netpipe::FtMode, Vec<NetpipeSample>)> =
        run_matrix(&sizes, reps, 2).expect("matrix");

    let baseline = results[0].1.clone();

    println!(
        "{:>9} | {:>12} {:>12} {:>8} | {:>12} {:>8} | {:>12} {:>8} | {:>12} {:>8}",
        "size", "disabled", "passthru", "ovh%", "coord", "ovh%", "logger", "ovh%", "bw base", "bw pass%"
    );
    println!("{}", "-".repeat(130));
    for (i, base) in baseline.iter().enumerate() {
        let get = |m: usize| &results[m].1[i];
        let ovh = |s: &NetpipeSample| (s.latency_ns / base.latency_ns - 1.0) * 100.0;
        let pass = get(1);
        let coord = get(2);
        let logger = get(3);
        let bw_overhead = (1.0 - pass.bandwidth_mbps / base.bandwidth_mbps) * 100.0;
        println!(
            "{:>9} | {:>10.0}ns {:>10.0}ns {:>7.1}% | {:>10.0}ns {:>7.1}% | {:>10.0}ns {:>7.1}% | {:>9.1}MB/s {:>7.1}%",
            base.size,
            base.latency_ns,
            pass.latency_ns,
            ovh(pass),
            coord.latency_ns,
            ovh(coord),
            logger.latency_ns,
            ovh(logger),
            base.bandwidth_mbps,
            bw_overhead,
        );
    }

    // Paper-style summary: small-message latency overhead and large-message
    // bandwidth overhead of the passthrough configuration.
    let small: Vec<usize> = (0..baseline.len()).filter(|i| baseline[*i].size <= 64).collect();
    let large: Vec<usize> = (0..baseline.len())
        .filter(|i| baseline[*i].size >= 256 * 1024)
        .collect();
    let mean =
        |idx: &[usize], f: &dyn Fn(usize) -> f64| idx.iter().map(|i| f(*i)).sum::<f64>() / idx.len() as f64;
    let small_latency_ovh = mean(&small, &|i| {
        (results[1].1[i].latency_ns / baseline[i].latency_ns - 1.0) * 100.0
    });
    let large_latency_ovh = mean(&large, &|i| {
        (results[1].1[i].latency_ns / baseline[i].latency_ns - 1.0) * 100.0
    });
    let bw_ovh = mean(&large, &|i| {
        (1.0 - results[1].1[i].bandwidth_mbps / baseline[i].bandwidth_mbps) * 100.0
    });
    println!("\npaper §7 comparison (passthrough vs disabled):");
    println!("  small-message latency overhead : {small_latency_ovh:+.1}%   (paper: ~3%)");
    println!("  large-message latency overhead : {large_latency_ovh:+.1}%   (paper: ~0%)");
    println!("  large-message bandwidth overhead: {bw_ovh:+.1}%   (paper: ~0%)");
}
