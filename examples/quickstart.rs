//! Quickstart: launch an MPI job on a simulated cluster, checkpoint it
//! mid-flight, kill it, and restart it from the snapshot — the core loop
//! of the paper in ~80 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use cr_core::request::CheckpointOptions;
use ompi::{mpirun, restart, RestartOptions, RunConfig};
use ompi_cr::test_runtime;
use workloads::ring::{reference_checksums, RingApp};

fn main() {
    // A 4-node simulated cluster backed by a scratch directory: each node
    // gets a "local disk", plus a shared stable-storage directory.
    let runtime = test_runtime("quickstart", 4);
    println!("cluster up: {} nodes", runtime.topology().len());

    // Launch 8 ranks of a token-ring application (the `mpirun` moment).
    let app = Arc::new(RingApp { rounds: 200_000 });
    let job = mpirun(&runtime, Arc::clone(&app), RunConfig::new(8)).expect("launch");
    println!("job {} running with 8 ranks", job.handle().job());

    // Let it compute for a bit, then checkpoint-and-terminate it — the
    // `ompi-checkpoint --term` moment. The single thing we keep is the
    // returned global snapshot reference.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .expect("checkpoint");
    println!(
        "checkpointed interval {} -> {}",
        outcome.interval,
        outcome.global_snapshot.display()
    );
    job.wait().expect("job terminates");
    println!("job terminated (simulating maintenance / failure window)");

    // Restart purely from the snapshot reference — note: no rank count,
    // no parameters, no application state supplied; it is all read from
    // the snapshot metadata. We even restart on a *different* cluster.
    let runtime2 = test_runtime("quickstart_restart", 2);
    let job = restart(
        &runtime2,
        Arc::clone(&app),
        &outcome.global_snapshot,
        RestartOptions::default(),
    )
    .expect("restart");
    println!(
        "restarted job {} on a {}-node cluster",
        job.handle().job(),
        runtime2.topology().len()
    );
    let results = job.wait().expect("restarted job completes");

    // Verify against the closed-form fault-free answer.
    let expected = reference_checksums(8, 200_000);
    for (rank, (state, _end)) in results.iter().enumerate() {
        assert_eq!(
            state.checksum, expected[rank],
            "rank {rank} diverged after restart!"
        );
    }
    println!("all 8 ranks finished with checksums identical to a fault-free run ✓");

    runtime.shutdown();
    runtime2.shutdown();
}
