//! Experiment E3 (paper Figure 1): the distributed checkpoint event flow
//! through the full MPI stack — tool request (A), global coordinator
//! initiation (B), local coordinator initiation (C), application
//! coordinators completing (D), local done (E), FILEM aggregation to
//! stable storage (F), global snapshot reference returned to the caller.

use std::sync::Arc;

use cr_core::request::CheckpointOptions;
use cr_core::GlobalSnapshot;
use ompi::{mpirun, RunConfig};
use ompi_cr::test_runtime;
use workloads::stencil::StencilApp;

#[test]
fn figure1_flow_through_the_mpi_stack() {
    let rt = test_runtime("fig1_mpi", 4);
    let app = Arc::new(StencilApp {
        cells_per_rank: 32,
        iters: 1_000_000, // effectively "long running"; terminated below
        ..Default::default()
    });
    let job = mpirun(&rt, app, RunConfig::new(8)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));

    rt.tracer().clear();
    let outcome = job.checkpoint(&CheckpointOptions::tool()).unwrap();

    let tracer = rt.tracer();
    // A -> B -> C -> D -> E -> F -> reference returned.
    tracer.assert_order("snapc.global.request", "snapc.global.initiate");
    tracer.assert_order("snapc.global.initiate", "snapc.local.initiate");
    tracer.assert_order("snapc.local.initiate", "opal.notify.request");
    tracer.assert_order("opal.notify.request", "opal.crs.checkpoint");
    tracer.assert_order("opal.crs.checkpoint", "snapc.app.done");
    tracer.assert_order("snapc.app.done", "snapc.local.done");
    tracer.assert_order("snapc.local.done", "snapc.global.local_done");
    tracer.assert_order("snapc.global.local_done", "filem.gather");
    tracer.assert_order("filem.gather", "snapc.global.reference_returned");
    // Cleanup of node-local scratch happens too.
    assert!(tracer.count_prefix("filem.local.remove") > 0);

    // Every rank checkpointed exactly once in this interval.
    assert_eq!(tracer.count_prefix("opal.crs.checkpoint"), 8);
    // All four local coordinators participated.
    assert_eq!(tracer.count_prefix("snapc.local.initiate"), 4);

    // The returned reference is a valid, complete global snapshot.
    let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
    assert_eq!(global.nprocs(), 8);
    let locals = global.local_snapshots(outcome.interval).unwrap();
    assert_eq!(locals.len(), 8);
    for local in &locals {
        assert!(!local.read_context().unwrap().is_empty());
        assert!(local.hostname().is_some());
    }

    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}

#[test]
fn interval_metadata_records_rank_placement() {
    let rt = test_runtime("fig1_meta", 2);
    let app = Arc::new(StencilApp {
        cells_per_rank: 8,
        iters: 1_000_000,
        ..Default::default()
    });
    let job = mpirun(&rt, app, RunConfig::new(4)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(30));
    let outcome = job.checkpoint(&CheckpointOptions::tool()).unwrap();

    let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
    // Round-robin placement over 2 nodes recorded in the metadata.
    assert_eq!(
        global.rank_hostname(outcome.interval, cr_core::Rank(0)),
        Some("node00")
    );
    assert_eq!(
        global.rank_hostname(outcome.interval, cr_core::Rank(1)),
        Some("node01")
    );
    assert_eq!(
        global.rank_hostname(outcome.interval, cr_core::Rank(2)),
        Some("node00")
    );
    // Launch parameters were recorded so restart needs no user input.
    assert!(!global.launch_params().is_empty());

    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}
