//! The FT event journal end to end (DESIGN.md §2.6): a real run's journal
//! verifies, attributes actors, replays against the commit protocol
//! model, rejects tampered event orders, and diffs run-to-run.

use std::sync::Arc;
use std::time::Duration;

use cr_core::request::CheckpointOptions;
use journal::{diff, DiffKey, JournalEntry, JournalWriter};
use mca::McaParams;
use model::ReplayEvent;
use netsim::NodeId;
use ompi::{mpirun, RunConfig};
use ompi_cr::{scratch_dir, test_runtime};
use workloads::ring::RingApp;

/// One green early-release checkpointed run; returns its journal entries.
fn early_release_run(tag: &str) -> Vec<JournalEntry> {
    let rt = test_runtime(tag, 2);
    let params = Arc::new(McaParams::new());
    params.set("snapc_early_release", "true");
    let app = Arc::new(RingApp { rounds: 500_000 });
    let job = mpirun(&rt, app, RunConfig { nprocs: 4, params }).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    job.checkpoint(&CheckpointOptions::tool().and_terminate()).unwrap();
    job.wait().unwrap();
    rt.drain_writebehind();
    let path = rt.journal_path().expect("journal on by default");
    rt.shutdown();

    let report = journal::verify(&path).unwrap();
    assert!(report.ok(), "run journal must verify: {}", report.render());
    journal::read_entries(&path).unwrap()
}

fn to_events(entries: &[JournalEntry]) -> Vec<ReplayEvent> {
    entries
        .iter()
        .map(|e| ReplayEvent { seq: e.seq, phase: e.phase.clone() })
        .collect()
}

#[test]
fn real_run_journal_verifies_and_attributes_actors() {
    let entries = early_release_run("jrnl_attr");
    assert_eq!(entries[0].phase, "journal.open");
    // Runtime-level events carry no actor; daemon-side protocol events
    // are attributed to their node, rank-level events to their rank.
    assert!(entries.iter().any(|e| e.phase == "orte.daemon.spawn" && e.actor.is_empty()),
        "daemon spawns are runtime-level (node goes in the detail)");
    assert!(entries.iter().any(|e| e.phase == "snapc.local.initiate" && e.actor.starts_with("node")),
        "local coordinator events must be node-attributed");
    assert!(entries.iter().any(|e| e.actor.starts_with("rank")),
        "rank-level events must be rank-attributed");
    for r in 0..4u32 {
        let actor = format!("rank{r}");
        assert!(entries.iter().any(|e| e.actor == actor), "no events from {actor}");
    }
    // Seqs are dense from 0 and the chain is internally consistent.
    for (i, e) in entries.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
        assert_eq!(e.hash, e.compute_hash());
    }
}

#[test]
fn green_run_replays_conformant_against_commit_model() {
    let entries = early_release_run("jrnl_green");
    let report = model::conformance("commit", &to_events(&entries)).unwrap();
    assert!(report.ok(), "green run must be model-reachable: {}", report.render());
    assert!(report.matched >= 4, "initiate/local_commit/gather/promote all map");
}

#[test]
fn tampered_promote_before_gather_is_rejected() {
    let entries = early_release_run("jrnl_tamper");
    let gather = entries.iter().position(|e| e.phase == "filem.gather").unwrap();
    let promote = entries
        .iter()
        .position(|e| e.phase == "snapc.global.global_commit")
        .unwrap();
    assert!(gather < promote, "early release gathers before promoting");

    // Re-chain a journal with the promote moved ahead of the gather: the
    // forged file is *physically* pristine — fresh CRCs, a valid hash
    // chain — so only protocol replay can catch it.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.retain(|&i| i != promote);
    let at = order.iter().position(|&i| i == gather).unwrap();
    order.insert(at, promote);

    let dir = scratch_dir("jrnl_forged");
    let path = dir.join(journal::FILE_NAME);
    let mut w = JournalWriter::open(&path, 0).unwrap();
    for &i in &order {
        let e = &entries[i];
        w.append(&e.actor, &e.phase, &e.detail, e.elapsed_ns).unwrap();
    }
    w.flush().unwrap();

    let chain = journal::verify(&path).unwrap();
    assert!(chain.ok(), "the forgery is chain-valid by construction");
    let forged = journal::read_entries(&path).unwrap();
    let report = model::conformance("commit", &to_events(&forged)).unwrap();
    assert!(!report.ok(), "promote-before-gather must be model-unreachable");
    let v = report.violation.clone().unwrap();
    assert_eq!(v.phase, "snapc.global.global_commit", "{}", report.render());
    assert_eq!(v.seq, forged[at].seq, "violation pins the forged entry");
}

#[test]
fn diff_pinpoints_divergence_between_two_seeded_runs() {
    // Two single-rank runs of the same seeded workload journal the same
    // phase sequence (details differ: run-local paths), except run B
    // loses its node after completion.
    let run = |tag: &str, kill: bool| -> Vec<JournalEntry> {
        let rt = test_runtime(tag, 1);
        let app = Arc::new(RingApp { rounds: 1_000 });
        let job = mpirun(&rt, app, RunConfig::new(1)).unwrap();
        job.wait().unwrap();
        if kill {
            rt.kill_daemon(NodeId(0));
        }
        let path = rt.journal_path().unwrap();
        rt.shutdown();
        journal::read_entries(&path).unwrap()
    };
    let a = run("jrnl_diff_a", false);
    let b = run("jrnl_diff_b", true);

    // Same run shape under the phase-only key: identical prefix...
    let same = diff(&a, &a, DiffKey::PhaseOnly);
    assert!(same.identical());
    assert!(same.render(&a, 3).contains("identical"));

    // ...while the kill shows up as the exact first divergence, with the
    // surviving prefix aligned.
    let report = diff(&a, &b, DiffKey::PhaseOnly);
    assert!(!report.identical());
    let d = report.divergence.as_ref().unwrap();
    assert_eq!(
        d.right.as_ref().map(|e| e.phase.as_str()),
        Some("orte.daemon.kill"),
        "unexpected divergence:\n{}",
        report.render(&a, 5)
    );
    let rendered = report.render(&a, 3);
    assert!(rendered.contains("first divergence at index"), "{rendered}");
    assert!(rendered.contains("orte.daemon.kill"), "{rendered}");

    // Full-key diff of two distinct runs diverges earlier (details embed
    // run-local snapshot paths) — that's what --phases-only is for.
    assert!(!diff(&a, &b, DiffKey::Full).identical());
}
