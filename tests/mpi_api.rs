//! API-surface tests through full jobs: communicator management,
//! non-blocking operations, wildcard receives, and typed payloads.

use std::sync::Arc;

use ompi::app::{MpiApp, StepOutcome};
use ompi::{mpirun, Mpi, MpiError, RunConfig};
use ompi_cr::test_runtime;
use serde::{Deserialize, Serialize};

/// Splits the world into even/odd sub-communicators, reduces within each,
/// then exchanges the sub-results through a duplicated world.
struct CommApp;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct CommState {
    parity_sum: u32,
    world_total: u32,
    done: bool,
}

impl MpiApp for CommApp {
    type State = CommState;

    fn init_state(&self, _mpi: &Mpi) -> Result<CommState, MpiError> {
        Ok(CommState {
            parity_sum: 0,
            world_total: 0,
            done: false,
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut CommState) -> Result<StepOutcome, MpiError> {
        let world = mpi.world().clone();
        let me = world.rank();

        // Split by parity; order within a color by descending rank via key.
        let sub = mpi.comm_split(&world, me % 2, world.size() - me)?;
        assert_eq!(
            sub.size(),
            world.size() / 2 + (world.size() % 2) * (1 - me % 2)
        );
        // Within the sub-communicator, sum the world ranks.
        state.parity_sum = mpi.allreduce(&sub, me, |a, b| a + b)?;

        // Duplicate the world: traffic on the dup must not collide with
        // traffic on the original.
        let dup = mpi.comm_dup(&world)?;
        let on_dup = mpi.allreduce(&dup, state.parity_sum, |a, b| a + b)?;
        let on_world = mpi.allreduce(&world, 0u32, |a, b| a + b)?;
        assert_eq!(on_world, 0);
        state.world_total = on_dup;

        state.done = true;
        Ok(StepOutcome::Done)
    }
}

#[test]
fn comm_split_and_dup() {
    let rt = test_runtime("comm_mgmt", 2);
    let results = mpirun(&rt, Arc::new(CommApp), RunConfig::new(6))
        .unwrap()
        .wait()
        .unwrap();
    let even_sum = 2 + 4;
    let odd_sum = 1 + 3 + 5;
    for (r, (state, _)) in results.iter().enumerate() {
        let expected = if r % 2 == 0 { even_sum } else { odd_sum };
        assert_eq!(state.parity_sum, expected, "rank {r}");
        // Sum over the world of each rank's parity_sum:
        // evens contribute even_sum each (3x), odds odd_sum each (3x).
        assert_eq!(state.world_total, 3 * even_sum + 3 * odd_sum);
    }
    rt.shutdown();
}

/// Pipelined non-blocking exchange with wildcard receives and statuses.
struct NonBlockingApp;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NbState {
    round: u32,
    from_sources: Vec<u32>,
}

impl MpiApp for NonBlockingApp {
    type State = NbState;

    fn init_state(&self, _mpi: &Mpi) -> Result<NbState, MpiError> {
        Ok(NbState {
            round: 0,
            from_sources: Vec::new(),
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut NbState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        let me = comm.rank();
        let n = comm.size();

        // Everyone posts n-1 wildcard irecvs, then isends a tagged value
        // to every other rank, then drains with wait_recv. The tag is
        // scoped per round: with a shared tag, a wildcard recv in round k
        // could legally match a fast sender's round-k+1 frame (MPI only
        // orders messages per (sender, tag) pair).
        let tag = 77_000 + state.round;
        let reqs: Vec<_> = (0..n - 1)
            .map(|_| mpi.irecv(&comm, None, Some(tag)))
            .collect::<Result<_, _>>()?;
        let sends: Vec<_> = (0..n)
            .filter(|q| *q != me)
            .map(|q| mpi.isend(&comm, q, tag, &(me * 1000 + state.round)))
            .collect::<Result<_, _>>()?;
        let mut seen = Vec::new();
        for req in reqs {
            let (value, status): (u32, _) = mpi.wait_recv(req)?;
            assert_eq!(value, status.source * 1000 + state.round);
            assert_eq!(status.tag, tag);
            seen.push(status.source);
        }
        for s in sends {
            mpi.wait_send(s)?;
        }
        seen.sort_unstable();
        state.from_sources = seen;
        state.round += 1;
        Ok(if state.round >= 20 {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
}

#[test]
fn nonblocking_wildcards_and_statuses() {
    let rt = test_runtime("nonblocking", 2);
    let results = mpirun(&rt, Arc::new(NonBlockingApp), RunConfig::new(4))
        .unwrap()
        .wait()
        .unwrap();
    for (r, (state, _)) in results.iter().enumerate() {
        let expected: Vec<u32> = (0..4u32).filter(|q| *q as usize != r).collect();
        assert_eq!(state.from_sources, expected, "rank {r}");
    }
    rt.shutdown();
}

/// Typed payloads: structs, enums, vectors move through send/recv intact.
struct TypedApp;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Shape {
    Point,
    Circle { radius: f64 },
    Poly(Vec<(i32, i32)>),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TypedState {
    ok: bool,
}

impl MpiApp for TypedApp {
    type State = TypedState;

    fn init_state(&self, _mpi: &Mpi) -> Result<TypedState, MpiError> {
        Ok(TypedState { ok: false })
    }

    fn step(&self, mpi: &Mpi, state: &mut TypedState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        let me = comm.rank();
        let shapes = vec![
            Shape::Point,
            Shape::Circle { radius: 2.5 },
            Shape::Poly(vec![(0, 0), (1, 2), (-3, 4)]),
        ];
        if me == 0 {
            mpi.send(&comm, 1, 5, &shapes)?;
            let (back, _): (Vec<Shape>, _) = mpi.recv(&comm, Some(1), Some(6))?;
            assert_eq!(back, shapes);
        } else if me == 1 {
            let (got, status): (Vec<Shape>, _) = mpi.recv(&comm, Some(0), Some(5))?;
            assert_eq!(status.source, 0);
            mpi.send(&comm, 0, 6, &got)?;
        }
        mpi.barrier(&comm)?;
        state.ok = true;
        Ok(StepOutcome::Done)
    }
}

#[test]
fn typed_payloads_roundtrip() {
    let rt = test_runtime("typed", 1);
    let results = mpirun(&rt, Arc::new(TypedApp), RunConfig::new(2))
        .unwrap()
        .wait()
        .unwrap();
    assert!(results.iter().all(|(s, _)| s.ok));
    rt.shutdown();
}

/// Invalid arguments surface as errors, not hangs or panics.
struct InvalidApp;

#[derive(Serialize, Deserialize)]
struct InvalidState;

impl MpiApp for InvalidApp {
    type State = InvalidState;

    fn init_state(&self, _mpi: &Mpi) -> Result<InvalidState, MpiError> {
        Ok(InvalidState)
    }

    fn step(&self, mpi: &Mpi, _state: &mut InvalidState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        assert!(mpi.send(&comm, 99, 0, &0u8).is_err(), "rank out of range");
        assert!(
            matches!(mpi.recv::<u8>(&comm, Some(50), None), Err(MpiError::Invalid { .. })),
            "recv source out of range"
        );
        assert!(mpi.wait_send(ompi::mpi::Request(424242)).is_err());
        Ok(StepOutcome::Done)
    }
}

#[test]
fn invalid_arguments_are_errors() {
    let rt = test_runtime("invalid", 1);
    mpirun(&rt, Arc::new(InvalidApp), RunConfig::new(2))
        .unwrap()
        .wait()
        .unwrap();
    rt.shutdown();
}

/// Probe, sendrecv, and scan coverage.
struct ExtendedApp;

#[derive(Serialize, Deserialize)]
struct ExtState {
    scan: u64,
    probed: (u32, u32),
    swapped: u32,
}

impl MpiApp for ExtendedApp {
    type State = ExtState;

    fn init_state(&self, _mpi: &Mpi) -> Result<ExtState, MpiError> {
        Ok(ExtState {
            scan: 0,
            probed: (0, 0),
            swapped: 0,
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut ExtState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        let me = comm.rank();
        let n = comm.size();

        // Inclusive prefix sum of (rank + 1).
        state.scan = mpi.scan(&comm, u64::from(me) + 1, |a, b| a + b)?;

        // Probe before receiving: neighbor ring exchange.
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        mpi.send(&comm, next, 42, &(me * 7))?;
        let status = mpi.probe(&comm, Some(prev), Some(42))?;
        state.probed = (status.source, status.tag);
        // The probed message is still there to receive.
        let (value, status2): (u32, _) = mpi.recv(&comm, Some(prev), Some(42))?;
        assert_eq!(status2.source, status.source);
        assert_eq!(value, prev * 7);

        // Sendrecv swap with the ring neighbor.
        let (back, _): (u32, _) =
            mpi.sendrecv(&comm, next, 43, &me, Some(prev), Some(43))?;
        state.swapped = back;

        mpi.barrier(&comm)?;
        Ok(StepOutcome::Done)
    }
}

#[test]
fn probe_sendrecv_scan() {
    let rt = test_runtime("extended_api", 2);
    let results = mpirun(&rt, Arc::new(ExtendedApp), RunConfig::new(5))
        .unwrap()
        .wait()
        .unwrap();
    for (r, (state, _)) in results.iter().enumerate() {
        let r = r as u32;
        let expected_scan: u64 = (1..=u64::from(r) + 1).sum();
        assert_eq!(state.scan, expected_scan, "rank {r} scan");
        let prev = (r + 5 - 1) % 5;
        assert_eq!(state.probed, (prev, 42), "rank {r} probe");
        assert_eq!(state.swapped, prev, "rank {r} sendrecv");
    }
    rt.shutdown();
}
