//! Tentpole acceptance for the content-addressed dedup chunk store:
//! commits route every rank's manifested image through the unified
//! [`orte::store::SnapshotStore`], identical chunks across ranks and
//! intervals are stored once, restart assembles byte-identical images
//! from either tier with no base→delta chain replay, and refcount GC at
//! retirement never sweeps a chunk a live manifest still names — for any
//! retirement schedule.

use std::sync::Arc;
use std::time::Duration;

use cr_core::inc::LayerInc;
use cr_core::request::CheckpointOptions;
use cr_core::{GlobalSnapshot, Rank};
use mca::McaParams;
use ompi::{mpirun, restart, RestartOptions, RestartSource, RunConfig};
use ompi_cr::test_runtime;
use opal::crs::{crs_framework, SelfCallbacks};
use opal::store::ChunkId;
use orte::job::{launch, JobSpec, LaunchCtx};
use orte::store::{manifest_ids, retire_dedup_interval, ChunkSource, SnapshotStore};
use parking_lot::Mutex;
use proptest::prelude::*;
use workloads::ring::RingApp;

/// Every test spins a multi-rank job; running them concurrently on a
/// small host starves the spinning ranks until OOB replies time out.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

type SharedState = Arc<Vec<Mutex<Vec<u8>>>>;

const STATE_BYTES: usize = 32 * 1024;

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// SPMD-shaped state: every rank holds the same random buffer except for
/// a small rank-unique header, so cross-rank dedup is heavy but each
/// rank's image is still distinguishable.
fn spmd_state(nprocs: u32, seed: &mut u64) -> SharedState {
    let base: Vec<u8> = (0..STATE_BYTES).map(|_| lcg(seed) as u8).collect();
    Arc::new(
        (0..nprocs)
            .map(|r| {
                let mut buf = base.clone();
                buf[..8].copy_from_slice(&u64::from(r).to_le_bytes());
                Mutex::new(buf)
            })
            .collect(),
    )
}

fn dedup_params() -> Arc<McaParams> {
    let params = Arc::new(McaParams::new());
    params.set("filem", "replica");
    params.set("filem_replica_factor", "1");
    params.set("filem_dedup_enabled", "true");
    params.set("crs_incr_chunk_kb", "1");
    params
}

/// Spinning checkpointable job whose `app` capture section serves the
/// shared per-rank buffers (orte-level; no PML, so sections are exactly
/// the buffers and byte comparisons are direct).
fn launch_state_job(
    rt: &orte::Runtime,
    nprocs: u32,
    state: &SharedState,
    params: Arc<McaParams>,
) -> orte::JobHandle {
    let proc_state = Arc::clone(state);
    let proc_main: orte::job::ProcMain = Arc::new(move |ctx: LaunchCtx| {
        let fw = crs_framework(SelfCallbacks::new());
        ctx.container
            .set_crs(Arc::from(fw.select(&ctx.params).unwrap()));
        let rank = ctx.name.rank.index();
        let st = Arc::clone(&proc_state);
        ctx.container
            .register_capture("app", Arc::new(move || Ok(st[rank].lock().clone())));
        ctx.container
            .install_opal_inc(LayerInc::new("opal", ctx.runtime.tracer().clone()));
        ctx.container.enable_checkpointing();
        while !ctx.terminate.load(std::sync::atomic::Ordering::SeqCst) {
            ctx.container.gate().checkpoint_point();
            std::thread::yield_now();
        }
        ctx.container.gate().retire();
    });
    let handle = launch(rt, JobSpec::new(nprocs, params, proc_main)).unwrap();
    for r in 0..nprocs {
        while handle.container(Rank(r)).crs().is_none() {
            std::thread::yield_now();
        }
    }
    handle
}

/// Mutate 1–4 random ranges of every rank's buffer (identically across
/// ranks outside the unique header, keeping the workload SPMD-shaped).
fn mutate_state(state: &SharedState, seed: &mut u64) {
    let edits: Vec<(usize, usize, u8)> = (0..(1 + lcg(seed) as usize % 4))
        .map(|_| {
            let len = 1 + lcg(seed) as usize % 4096;
            let start = 8 + lcg(seed) as usize % (STATE_BYTES - len - 8);
            (start, len, 1 + (*seed >> 7) as u8)
        })
        .collect();
    for cell in state.iter() {
        let mut buf = cell.lock();
        for &(start, len, delta) in &edits {
            for b in &mut buf[start..start + len] {
                *b = b.wrapping_add(delta);
            }
        }
    }
}

/// All chunk ids any of `intervals`' recorded manifests still reference.
fn live_ids(global: &GlobalSnapshot, intervals: &[u64]) -> Vec<ChunkId> {
    let mut ids: Vec<ChunkId> = intervals
        .iter()
        .flat_map(|i| {
            global
                .chunk_manifests(*i)
                .into_iter()
                .map(|(_, rendered)| codec::ChunkManifest::parse(rendered).unwrap())
                .flat_map(|m| manifest_ids(&m))
                .collect::<Vec<_>>()
        })
        .collect();
    ids.sort();
    ids.dedup();
    ids
}

/// Fetch rank `rank` of `interval` through the unified store and return
/// its `app` section bytes.
fn fetch_app_section(
    store: &SnapshotStore<'_>,
    global: &GlobalSnapshot,
    interval: u64,
    rank: Rank,
    source: ChunkSource,
) -> Vec<u8> {
    let rendered = global.chunk_manifest(interval, rank).unwrap();
    let manifest = codec::ChunkManifest::parse(rendered).unwrap();
    let (image, _) = store.fetch_image(&manifest, source, true).unwrap();
    image.require_section("app").unwrap().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 3,
        max_shrink_iters: 0, // each case is a full multi-interval job
        .. ProptestConfig::default()
    })]

    /// For any mutation sequence and any retirement order with any GC
    /// batch size, every still-recorded manifest's chunks survive the
    /// sweeps (the `gc` model's invariant, on the real store), every
    /// live interval still restores byte-identically, and retiring the
    /// last interval reclaims the store completely.
    #[test]
    fn any_retirement_schedule_never_sweeps_a_live_chunk(seed in any::<u64>()) {
        let _serial = serial();
        let mut rng = seed;
        let nprocs = 2u32;
        let intervals = 4u64;
        let rt = test_runtime(&format!("dedup_prop_{seed:x}"), 2);
        let state = spmd_state(nprocs, &mut rng);
        let handle = launch_state_job(&rt, nprocs, &state, dedup_params());

        let mut expected: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut snapshot_path = None;
        for i in 0..intervals {
            if i > 0 {
                mutate_state(&state, &mut rng);
            }
            let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
            prop_assert_eq!(outcome.interval, i);
            prop_assert!(outcome.stats.dedup_ratio >= 1.0);
            snapshot_path = Some(outcome.global_snapshot);
            expected.push(state.iter().map(|c| c.lock().clone()).collect());
        }
        handle.request_terminate();
        handle.join().unwrap();
        rt.drain_writebehind();

        let mut global = GlobalSnapshot::open(&snapshot_path.unwrap()).unwrap();
        let job_id = global.job();

        // Random retirement order, random GC batch size per retirement.
        let mut order: Vec<u64> = (0..intervals).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, lcg(&mut rng) as usize % (i + 1));
        }
        let mut swept_total: Vec<ChunkId> = Vec::new();
        for retired in order {
            let batch = 1 + lcg(&mut rng) as usize % 5;
            let swept =
                retire_dedup_interval(&rt, job_id, &mut global, retired, batch).unwrap();
            swept_total.extend(swept);

            let remaining = global.intervals();
            let live = live_ids(&global, &remaining);
            let store = SnapshotStore::open(&rt, job_id, global.dir()).unwrap();
            for id in &live {
                prop_assert!(
                    store.stable().contains(id),
                    "live chunk {} swept after retiring interval {}",
                    id, retired
                );
            }
            for id in &swept_total {
                prop_assert!(
                    !live.contains(id),
                    "swept chunk {} is still referenced by a live manifest",
                    id
                );
            }
            // Every surviving interval still restores byte-identically.
            for &i in &remaining {
                for r in 0..nprocs {
                    let got = fetch_app_section(
                        &store, &global, i, Rank(r), ChunkSource::Auto,
                    );
                    prop_assert_eq!(
                        &got, &expected[i as usize][r as usize],
                        "interval {}, rank {}", i, r
                    );
                }
            }
        }
        // Everything retired: the refcount GC reclaimed the whole store.
        let store = SnapshotStore::open(&rt, job_id, global.dir()).unwrap();
        prop_assert_eq!(store.stable().chunk_count().unwrap(), 0);
        rt.shutdown();
    }
}

/// Restart images after heavy cross-rank and cross-interval dedup are
/// byte-identical from the peer-memory tier alone and from the stable
/// tier alone, and the commit stats show the dedup actually happened.
#[test]
fn dedup_restart_byte_identical_from_both_tiers() {
    let _serial = serial();
    let mut rng = 3u64;
    let nprocs = 2u32;
    let rt = test_runtime("dedup_tiers", 2);
    let state = spmd_state(nprocs, &mut rng);
    let handle = launch_state_job(&rt, nprocs, &state, dedup_params());

    // Interval 0: ranks share all but their unique header chunk.
    let first = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert!(
        first.stats.dedup_ratio > 1.5,
        "cross-rank dedup missing: ratio {}",
        first.stats.dedup_ratio
    );
    let expect0: Vec<Vec<u8>> = state.iter().map(|c| c.lock().clone()).collect();

    // Interval 1: a small mutation — almost everything dedups against
    // interval 0, so the ratio jumps.
    mutate_state(&state, &mut rng);
    let second = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert!(
        second.stats.dedup_ratio > first.stats.dedup_ratio,
        "cross-interval dedup missing: {} !> {}",
        second.stats.dedup_ratio,
        first.stats.dedup_ratio
    );
    let expect1: Vec<Vec<u8>> = state.iter().map(|c| c.lock().clone()).collect();
    handle.request_terminate();
    handle.join().unwrap();
    rt.drain_writebehind();

    let global = GlobalSnapshot::open(&second.global_snapshot).unwrap();
    let store = SnapshotStore::open(&rt, global.job(), global.dir()).unwrap();
    for (interval, expect) in [(0u64, &expect0), (1u64, &expect1)] {
        for r in 0..nprocs {
            let rendered = global.chunk_manifest(interval, Rank(r)).unwrap();
            let manifest = codec::ChunkManifest::parse(rendered).unwrap();

            let (image, stats) = store
                .fetch_image(&manifest, ChunkSource::ReplicaOnly, true)
                .unwrap();
            assert_eq!(
                image.require_section("app").unwrap(),
                &expect[r as usize][..],
                "replica tier, interval {interval}, rank {r}"
            );
            assert!(stats.replica_chunks > 0);
            assert_eq!(stats.stable_chunks, 0);

            let (image, stats) = store
                .fetch_image(&manifest, ChunkSource::StableOnly, true)
                .unwrap();
            assert_eq!(
                image.require_section("app").unwrap(),
                &expect[r as usize][..],
                "stable tier, interval {interval}, rank {r}"
            );
            assert!(stats.stable_chunks > 0);
            assert_eq!(stats.replica_chunks, 0);
        }
    }
    rt.shutdown();
}

/// End-to-end disaster drill: the stable chunk store is deleted outright,
/// and a replica-source restart still resurrects the job from peer
/// memory alone — through the dedup fetch path, never the classic
/// preload/chain machinery.
#[test]
fn dedup_restart_survives_stable_store_deletion() {
    let _serial = serial();
    let rt = test_runtime("dedup_nostable", 4);
    let app = Arc::new(RingApp { rounds: 1_000_000 });
    let job = mpirun(
        &rt,
        Arc::clone(&app),
        RunConfig {
            nprocs: 4,
            params: dedup_params(),
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();

    let stable_dir = outcome.global_snapshot.join(orte::store::CHUNK_STORE_DIR);
    assert!(stable_dir.exists(), "dedup commit must create the stable tier");
    std::fs::remove_dir_all(&stable_dir).unwrap();

    rt.tracer().clear();
    let restarted = restart(
        &rt,
        Arc::clone(&app),
        &outcome.global_snapshot,
        RestartOptions::default().with_source(RestartSource::Replica),
    )
    .unwrap();
    restarted.handle().request_terminate();
    assert_eq!(restarted.wait().unwrap().len(), 4);
    assert!(rt.tracer().count_prefix("store.restart.fetch") > 0);
    assert_eq!(rt.tracer().count_prefix("filem.preload"), 0);
    assert_eq!(rt.tracer().count_prefix("filem.replica.preload"), 0);
    rt.shutdown();
}

/// The no-chain-replay guarantee, end to end: every earlier interval can
/// be retired — in oldest-first order, which a delta chain would refuse —
/// and the newest dedup interval still restarts, because its manifest
/// alone (plus the refcount-protected shared chunks) materializes every
/// image in O(1) fetches with no base→delta replay.
#[test]
fn dedup_restart_needs_no_chain_after_retiring_every_earlier_interval() {
    let _serial = serial();
    let rt = test_runtime("dedup_nochain", 4);
    let app = Arc::new(RingApp { rounds: 1_000_000 });
    let job = mpirun(
        &rt,
        Arc::clone(&app),
        RunConfig {
            nprocs: 4,
            params: dedup_params(),
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    job.checkpoint(&CheckpointOptions::tool()).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    job.checkpoint(&CheckpointOptions::tool()).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();
    rt.drain_writebehind();
    assert_eq!(outcome.interval, 2);

    let mut global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
    let job_id = global.job();
    for r in 0..4 {
        // Dedup intervals never chain: the restore set is the interval
        // itself, nothing else.
        assert_eq!(global.ckpt_kind(2, Rank(r)), "dedup");
        assert_eq!(global.ckpt_chain(2, Rank(r)).unwrap(), vec![2]);
    }

    // Oldest-first retirement — the order the delta-chain walk refuses
    // (see incremental_ckpt::retiring_referenced_base_is_refused).
    retire_dedup_interval(&rt, job_id, &mut global, 0, 8).unwrap();
    retire_dedup_interval(&rt, job_id, &mut global, 1, 8).unwrap();
    assert_eq!(global.intervals(), vec![2]);

    rt.tracer().clear();
    let restarted = restart(
        &rt,
        Arc::clone(&app),
        &outcome.global_snapshot,
        RestartOptions::default(),
    )
    .unwrap();
    restarted.handle().request_terminate();
    assert_eq!(restarted.wait().unwrap().len(), 4);
    // The dedup fetch path ran; the chain-replay machinery never did.
    assert!(rt.tracer().count_prefix("store.restart.fetch") > 0);
    assert_eq!(rt.tracer().count_prefix("filem.preload"), 0);
    assert_eq!(rt.tracer().count_prefix("filem.replica.preload"), 0);
    rt.shutdown();
}
