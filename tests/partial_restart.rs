//! Tentpole acceptance for partial restart (O(failed) recovery): a rank
//! dies with its node, the runtime restores *only* that rank onto a
//! spare node from the last committed snapshot, the survivors stay live
//! and replay the logged in-flight traffic over the
//! `ReplayBegin`/`ReplayDone` handshake, and the job finishes with the
//! fault-free answer. Also covers: the sender-side message log is GC'd
//! at global commit, every refusal precondition leaves the job
//! untouched, and the recovery supervisor falls back to a full restart
//! when partial recovery refuses.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cr_core::request::CheckpointOptions;
use cr_core::{GlobalSnapshot, Rank};
use mca::McaParams;
use netsim::NodeId;
use ompi::app::{MpiApp, RunEnd, StepOutcome};
use ompi::supervisor::{run_with_recovery, RecoveryPolicy};
use ompi::{mpirun, Mpi, MpiError, MpiJob, RestartOptions, RestartSource, RunConfig};
use ompi_cr::test_runtime;
use proptest::prelude::*;
use workloads::ring::{reference_checksums, RingApp, RingState};

const NPROCS: u32 = 4;

/// Each test spins multi-rank jobs; running them concurrently on a small
/// host starves the spinning ranks until OOB replies time out. Serialize
/// the file.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Ring workload with a gated one-shot failure: once `armed` is set by
/// the test (always after a checkpoint has committed), `fail_rank` dies
/// at its next step. The restored incarnation finds the gate disarmed
/// and runs to completion.
struct GatedRing {
    inner: RingApp,
    fail_rank: u32,
    armed: Arc<AtomicBool>,
}

impl MpiApp for GatedRing {
    type State = RingState;

    fn name(&self) -> &str {
        "gated-ring"
    }

    fn init_state(&self, mpi: &Mpi) -> Result<Self::State, MpiError> {
        self.inner.init_state(mpi)
    }

    fn step(&self, mpi: &Mpi, state: &mut Self::State) -> Result<StepOutcome, MpiError> {
        if mpi.rank() == self.fail_rank && self.armed.swap(false, Ordering::SeqCst) {
            return Err(MpiError::PeerLost {
                detail: "injected node failure".into(),
            });
        }
        self.inner.step(mpi, state)
    }
}

/// Communication-free workload whose ranks in `fail` die once `armed` is
/// set. Because the ranks never talk to each other, any subset can fail
/// on cue without the survivors blocking in a recv — which the refusal
/// test needs to stage multi-rank failure patterns.
struct FailSet {
    fail: std::collections::BTreeSet<u32>,
    armed: Arc<AtomicBool>,
}

impl MpiApp for FailSet {
    type State = u64;

    fn name(&self) -> &str {
        "fail-set"
    }

    fn init_state(&self, _mpi: &Mpi) -> Result<u64, MpiError> {
        Ok(0)
    }

    fn step(&self, mpi: &Mpi, state: &mut u64) -> Result<StepOutcome, MpiError> {
        if self.armed.load(Ordering::SeqCst) && self.fail.contains(&mpi.rank()) {
            return Err(MpiError::PeerLost {
                detail: "injected node failure".into(),
            });
        }
        *state += 1;
        std::thread::sleep(Duration::from_millis(1));
        Ok(StepOutcome::Continue)
    }
}

/// MCA parameters for a partial-restart-capable job: replica file mover
/// (peer-memory images), the sender-side message log, and `spares` nodes
/// held out of placement.
fn partial_params(spares: u32) -> Arc<McaParams> {
    let params = Arc::new(McaParams::new());
    params.set("filem", "replica");
    params.set("filem_replica_factor", "1");
    params.set("crcp_msg_log_enabled", "true");
    if spares > 0 {
        params.set("orte_spare_nodes", &spares.to_string());
    }
    params
}

/// Block until `job` reports exactly the expected failed rank.
fn await_failure(job: &MpiJob<RingState>, rank: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while job.failed_ranks().is_empty() {
        assert!(
            Instant::now() < deadline,
            "injected failure of rank {rank} never reported"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(job.failed_ranks(), vec![rank as usize], "only rank {rank} fails");
}

/// Block until `job` reports exactly the expected failed ranks.
fn await_failures<S: Send + 'static>(job: &MpiJob<S>, ranks: &[usize]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while job.failed_ranks().len() < ranks.len() {
        assert!(
            Instant::now() < deadline,
            "injected failures of ranks {ranks:?} never all reported"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(job.failed_ranks(), ranks, "exactly ranks {ranks:?} fail");
}

/// The tentpole path, driven directly: checkpoint, kill rank 2 *and* its
/// node, partial-restart just that rank onto the spare, and finish.
#[test]
fn partial_restart_recovers_a_lost_node_with_survivors_live() {
    let _serial = serial();
    let rounds = 40_000;
    // 5 nodes: ranks 0-3 on nodes 0-3, node 4 held out as the spare.
    let rt = test_runtime("partial_e2e", 5);
    let armed = Arc::new(AtomicBool::new(false));
    let app = Arc::new(GatedRing {
        inner: RingApp { rounds },
        fail_rank: 2,
        armed: Arc::clone(&armed),
    });
    let job = mpirun(
        &rt,
        Arc::clone(&app),
        RunConfig {
            nprocs: NPROCS,
            params: partial_params(1),
        },
    )
    .unwrap();
    // Declare partial recovery before any rank can fail: with the flag
    // set, the failing rank leaves its survivors live for restart_ranks
    // instead of pulling the whole job down.
    job.handle().set_partial_recovery(true);
    std::thread::sleep(Duration::from_millis(30));
    let ck = job.checkpoint(&CheckpointOptions::tool()).unwrap();

    // Rank 2 dies at its next step; its node is lost with it.
    armed.store(true, Ordering::SeqCst);
    await_failure(&job, 2);
    rt.kill_daemon(NodeId(2));

    let tracer = rt.tracer();
    let launches_before = tracer.count_prefix("plm.launch");
    let outcome = job
        .restart_ranks(
            &ck.global_snapshot,
            &RestartOptions::default().with_ranks(vec![2]),
        )
        .unwrap();
    assert_eq!(outcome.ranks, vec![2]);
    assert_eq!(outcome.spares, vec![NodeId(4)], "rehomed onto the held-out spare");
    assert_eq!(outcome.interval, ck.interval);
    assert!(outcome.replica_images >= 1, "image served from peer memory");
    assert_eq!(job.handle().node_of(Rank(2)), NodeId(4));

    // The job completes with the fault-free answer: the restored rank
    // caught up through the replay handshake, the survivors never rolled
    // back a single message.
    let results = job.wait().unwrap();
    let expected = reference_checksums(u64::from(NPROCS), rounds);
    assert_eq!(results.len(), NPROCS as usize);
    for (r, (state, end)) in results.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed, "rank {r}");
        assert_eq!(state.round, rounds, "rank {r}");
        assert_eq!(state.checksum, expected[r], "rank {r} checksum");
    }

    // O(failed) evidence: no whole-job relaunch happened, exactly one
    // rank re-entered the restart path, and the survivors replayed their
    // logged backlog to it.
    assert_eq!(
        tracer.count_prefix("plm.launch"),
        launches_before,
        "partial restart must not relaunch the job"
    );
    assert_eq!(
        tracer.count_prefix("ompi.init.restart"),
        1,
        "only the failed rank restarts"
    );
    assert!(tracer.count_prefix("crcp.replay.begin") >= 1, "rejoin announced");
    assert!(tracer.count_prefix("crcp.replay.resent") >= 1, "backlog replayed");
    assert!(tracer.count_prefix("orte.spare.claim") >= 1, "spare claimed");
    rt.shutdown();
}

/// The supervisor's watchdog drives the same recovery transparently: the
/// job completes within one incarnation (zero full restarts).
#[test]
fn supervisor_partial_recovery_keeps_the_incarnation_alive() {
    let _serial = serial();
    let rounds = 40_000;
    let rt = test_runtime("partial_supervisor", 5);
    let armed = Arc::new(AtomicBool::new(false));
    let app = Arc::new(GatedRing {
        inner: RingApp { rounds },
        fail_rank: 1,
        armed: Arc::clone(&armed),
    });

    // Arm the failure only once a periodic checkpoint has committed, so
    // the watchdog deterministically has a snapshot to recover from.
    let monitor = {
        let tracer = rt.tracer().clone();
        let armed = Arc::clone(&armed);
        std::thread::spawn(move || {
            // The ticker takes checkpoints sequentially, so the second
            // initiation proves the first checkpoint fully committed and
            // the supervisor holds a snapshot to recover from.
            while tracer.count_prefix("snapc.global.initiate") < 2 {
                std::thread::sleep(Duration::from_millis(5));
            }
            armed.store(true, Ordering::SeqCst);
        })
    };

    let policy = RecoveryPolicy {
        checkpoint_every: Duration::from_millis(80),
        max_restarts: 3,
        poll_every: Duration::from_millis(5),
        partial: true,
        ..Default::default()
    };
    let (results, report) = run_with_recovery(
        &rt,
        Arc::clone(&app),
        RunConfig {
            nprocs: NPROCS,
            params: partial_params(1),
        },
        &policy,
    )
    .unwrap();
    monitor.join().unwrap();

    assert!(report.partial_restarts >= 1, "watchdog recovered in place: {report:?}");
    assert_eq!(report.restarts, 0, "no full relaunch: {report:?}");
    let tracer = rt.tracer();
    assert!(tracer.count_prefix("supervisor.partial_recover") >= 1);
    assert_eq!(
        tracer.count_prefix("supervisor.incarnation"),
        1,
        "survivors lived through the recovery"
    );
    let expected = reference_checksums(u64::from(NPROCS), rounds);
    for (r, (state, end)) in results.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed, "rank {r}");
        assert_eq!(state.checksum, expected[r], "rank {r} checksum");
    }
    rt.shutdown();
}

/// The partial-restart message log is garbage-collected at global commit
/// and its per-interval footprint is recorded in the snapshot metadata.
#[test]
fn replay_log_is_gced_at_global_commit_and_recorded() {
    let _serial = serial();
    let rt = test_runtime("partial_gc", 4);
    let params = Arc::new(McaParams::new());
    params.set("crcp_msg_log_enabled", "true");
    let job = mpirun(
        &rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        RunConfig {
            nprocs: NPROCS,
            params,
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let first = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let second = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();
    assert_ne!(first.interval, second.interval);

    // Entries logged before the first quiesce were dropped when that
    // interval reached global commit — the log never grows unboundedly.
    assert!(
        rt.tracer().count_prefix("crcp.replay.gc") >= 1,
        "message log GC must run at global commit"
    );

    // Every rank's retained footprint is in the snapshot metadata (what
    // `ompi-snapshot-info` prints per interval).
    let global = GlobalSnapshot::open(&second.global_snapshot).unwrap();
    assert_eq!(
        global.msg_log_bytes(second.interval).len(),
        NPROCS as usize,
        "per-rank message-log accounting recorded"
    );
    rt.shutdown();
}

/// Every refusal precondition fires before any mutation of the live job,
/// in an order a caller can rely on for fallback decisions — and a
/// recovery that refuses after claiming spares hands them back.
#[test]
fn refusals_leave_the_job_untouched() {
    let _serial = serial();
    // 6 nodes, 2 spares: 8 ranks double up on usable nodes 0-3 (ranks
    // r and r+4 share node r), nodes 4 and 5 idle in the spare pool.
    let rt = test_runtime("partial_refuse", 6);
    let armed = Arc::new(AtomicBool::new(false));
    let app = Arc::new(FailSet {
        fail: [1, 2, 6].into_iter().collect(),
        armed: Arc::clone(&armed),
    });
    let job = mpirun(
        &rt,
        app,
        RunConfig {
            nprocs: 8,
            params: partial_params(2),
        },
    )
    .unwrap();
    job.handle().set_partial_recovery(true);
    std::thread::sleep(Duration::from_millis(30));
    let ck = job.checkpoint(&CheckpointOptions::tool()).unwrap();

    // An empty rank set is a caller bug.
    let err = job
        .restart_ranks(&ck.global_snapshot, &RestartOptions::default().with_ranks(vec![]))
        .unwrap_err();
    assert!(err.to_string().contains("non-empty rank set"), "{err}");

    // So is a rank outside the job.
    let err = job
        .restart_ranks(&ck.global_snapshot, &RestartOptions::default().with_ranks(vec![9]))
        .unwrap_err();
    assert!(err.to_string().contains("8-rank job"), "{err}");

    // So is a rank that never failed: fencing a live rank would roll it
    // back for no reason (and join its still-running app thread).
    let err = job
        .restart_ranks(&ck.global_snapshot, &RestartOptions::default().with_ranks(vec![1]))
        .unwrap_err();
    assert!(err.to_string().contains("has not failed"), "{err}");

    // Ranks 1, 2 and 6 die. Node 2 (ranks 2 and 6) is lost whole; rank
    // 1's node-mate 5 survives on node 1.
    armed.store(true, Ordering::SeqCst);
    await_failures(&job, &[1, 2, 6]);

    // A node is fenced whole: restarting failed rank 1 without its live
    // node-mate is refused before anything is claimed.
    let err = job
        .restart_ranks(&ck.global_snapshot, &RestartOptions::default().with_ranks(vec![1]))
        .unwrap_err();
    assert!(err.to_string().contains("must also include rank 5"), "{err}");
    assert_eq!(rt.spare_nodes().len(), 2, "refusals consume no spare");

    // Rank 2's image is replicated on nodes {2, 3} (factor-1 ring); lose
    // both and a replica-only partial restart of that rank is impossible.
    // The refusal lands after the spare claim, but the lease returns the
    // node to the pool on the error path.
    rt.kill_daemon(NodeId(2));
    rt.kill_daemon(NodeId(3));
    let err = job
        .restart_ranks(
            &ck.global_snapshot,
            &RestartOptions::default()
                .with_source(RestartSource::Replica)
                .with_ranks(vec![2, 6]),
        )
        .unwrap_err();
    assert!(err.to_string().contains("no surviving replica holder"), "{err}");
    assert_eq!(
        rt.spare_nodes().len(),
        2,
        "a refused recovery hands its claimed spares back"
    );

    // Drain the pool by hand: with no spare left the claim refuses.
    let a = rt.claim_spare().unwrap();
    let b = rt.claim_spare().unwrap();
    let err = job
        .restart_ranks(
            &ck.global_snapshot,
            &RestartOptions::default().with_ranks(vec![2, 6]),
        )
        .unwrap_err();
    assert!(err.to_string().contains("no spare node available"), "{err}");
    rt.register_spare(a);
    rt.register_spare(b);

    // The refusals left the job exactly as the failures did: no extra
    // rank died, none was respawned or rolled back — the app threads on
    // fenced node 3 are still live (only their daemon died).
    assert_eq!(job.failed_ranks(), vec![1, 2, 6], "refusals touched no live rank");
    assert_eq!(
        rt.tracer().count_prefix("ompi.init.restart"),
        0,
        "no rank re-entered the restart path"
    );
    job.request_terminate();
    let _ = job.wait();
    rt.shutdown();

    // Without the sender-side message log the refusal comes first and
    // claims nothing — even when the requested ranks genuinely failed.
    let rt2 = test_runtime("partial_refuse_nolog", 3);
    let params = Arc::new(McaParams::new());
    params.set("orte_spare_nodes", "1");
    let armed2 = Arc::new(AtomicBool::new(false));
    let app2 = Arc::new(FailSet {
        fail: [1, 3].into_iter().collect(),
        armed: Arc::clone(&armed2),
    });
    let job = mpirun(
        &rt2,
        app2,
        RunConfig {
            nprocs: NPROCS,
            params,
        },
    )
    .unwrap();
    job.handle().set_partial_recovery(true);
    std::thread::sleep(Duration::from_millis(30));
    let ck = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    // Node 1 (ranks 1 and 3 in the doubled-up layout) dies whole.
    armed2.store(true, Ordering::SeqCst);
    await_failures(&job, &[1, 3]);
    let err = job
        .restart_ranks(
            &ck.global_snapshot,
            &RestartOptions::default().with_ranks(vec![1, 3]),
        )
        .unwrap_err();
    assert!(err.to_string().contains("crcp_msg_log_enabled"), "{err}");
    assert_eq!(rt2.spare_nodes().len(), 1, "log refusal precedes the claim");
    job.request_terminate();
    let _ = job.wait();
    rt2.shutdown();
}

/// Without `set_partial_recovery`, a failing rank still pulls the whole
/// job down even when the message log is enabled — a plain run with the
/// log on must never hang in `wait()` waiting for a recoverer that does
/// not exist.
#[test]
fn failure_without_partial_recovery_declared_terminates_the_job() {
    let _serial = serial();
    let rt = test_runtime("partial_undeclared", 5);
    let armed = Arc::new(AtomicBool::new(false));
    let app = Arc::new(GatedRing {
        inner: RingApp { rounds: 1_000_000 },
        fail_rank: 2,
        armed: Arc::clone(&armed),
    });
    let job = mpirun(
        &rt,
        app,
        RunConfig {
            nprocs: NPROCS,
            params: partial_params(1),
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    armed.store(true, Ordering::SeqCst);
    // The failure terminates the survivors, so wait() settles with the
    // failure — no watchdog needed.
    let err = job.wait().unwrap_err();
    assert!(err.to_string().contains("injected node failure"), "{err}");
    rt.shutdown();
}

/// When partial recovery refuses (here: no spare pool), the supervisor
/// records the refusal and falls back to the terminate-and-relaunch
/// path — the answer is still the fault-free one.
#[test]
fn supervisor_falls_back_to_full_restart_when_partial_refuses() {
    let _serial = serial();
    let rounds = 40_000;
    let rt = test_runtime("partial_fallback", 4);
    let armed = Arc::new(AtomicBool::new(false));
    let app = Arc::new(GatedRing {
        inner: RingApp { rounds },
        fail_rank: 2,
        armed: Arc::clone(&armed),
    });
    let monitor = {
        let tracer = rt.tracer().clone();
        let armed = Arc::clone(&armed);
        std::thread::spawn(move || {
            // The ticker takes checkpoints sequentially, so the second
            // initiation proves the first checkpoint fully committed and
            // the supervisor holds a snapshot to recover from.
            while tracer.count_prefix("snapc.global.initiate") < 2 {
                std::thread::sleep(Duration::from_millis(5));
            }
            armed.store(true, Ordering::SeqCst);
        })
    };

    // Message log on, but zero spare nodes: restart_ranks must refuse.
    let params = Arc::new(McaParams::new());
    params.set("crcp_msg_log_enabled", "true");
    let policy = RecoveryPolicy {
        checkpoint_every: Duration::from_millis(80),
        max_restarts: 3,
        poll_every: Duration::from_millis(5),
        partial: true,
        ..Default::default()
    };
    let (results, report) = run_with_recovery(
        &rt,
        Arc::clone(&app),
        RunConfig {
            nprocs: NPROCS,
            params,
        },
        &policy,
    )
    .unwrap();
    monitor.join().unwrap();

    assert_eq!(report.partial_restarts, 0, "{report:?}");
    assert!(report.restarts >= 1, "full restart fallback ran: {report:?}");
    assert!(
        rt.tracer().count_prefix("supervisor.partial_refused") >= 1,
        "the refusal is visible in the trace"
    );
    let expected = reference_checksums(u64::from(NPROCS), rounds);
    for (r, (state, end)) in results.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed, "rank {r}");
        assert_eq!(state.checksum, expected[r], "rank {r} checksum");
    }
    rt.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        max_shrink_iters: 0, // each case is seconds; shrinking buys little
        .. ProptestConfig::default()
    })]

    /// DESIGN.md invariant: for any failed rank and any checkpoint
    /// timing, a partial restart yields byte-for-byte the fault-free
    /// answer — the same equivalence the full-restart property test
    /// (tests/prop_consistency.rs) establishes for whole-job recovery.
    #[test]
    fn partial_restart_matches_fault_free_for_any_schedule(
        fail_rank in 0u32..NPROCS,
        delay_ms in 10u64..60,
    ) {
        let _serial = serial();
        let rounds = 30_000;
        let tag = format!("partial_prop_{fail_rank}_{delay_ms}");
        let rt = test_runtime(&tag, 5);
        let armed = Arc::new(AtomicBool::new(false));
        let app = Arc::new(GatedRing {
            inner: RingApp { rounds },
            fail_rank,
            armed: Arc::clone(&armed),
        });
        let job = mpirun(
            &rt,
            Arc::clone(&app),
            RunConfig {
                nprocs: NPROCS,
                params: partial_params(1),
            },
        )
        .unwrap();
        job.handle().set_partial_recovery(true);
        std::thread::sleep(Duration::from_millis(delay_ms));
        let ck = match job.checkpoint(&CheckpointOptions::tool()) {
            Ok(o) => o,
            Err(_) => {
                // The job finished before the checkpoint landed: nothing
                // to recover for this timing, itself a valid outcome.
                job.request_terminate();
                let _ = job.wait();
                rt.shutdown();
                return Ok(());
            }
        };
        armed.store(true, Ordering::SeqCst);
        await_failure(&job, fail_rank);
        rt.kill_daemon(NodeId(fail_rank));
        let outcome = job
            .restart_ranks(
                &ck.global_snapshot,
                &RestartOptions::default().with_ranks(vec![fail_rank]),
            )
            .unwrap();
        prop_assert_eq!(outcome.ranks, vec![fail_rank]);
        let results = job.wait().unwrap();
        let expected = reference_checksums(u64::from(NPROCS), rounds);
        for (r, (state, end)) in results.iter().enumerate() {
            prop_assert_eq!(*end, RunEnd::Completed, "rank {}", r);
            prop_assert_eq!(state.checksum, expected[r], "rank {} checksum", r);
        }
        rt.shutdown();
    }
}
