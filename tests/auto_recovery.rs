//! Automatic, transparent recovery (the paper's §8 future-work item,
//! implemented in `ompi::supervisor`): a rank fails mid-run, the
//! supervisor terminates the survivors, restarts from the last periodic
//! checkpoint, and the job completes with the fault-free answer.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ompi::app::{MpiApp, RunEnd, StepOutcome};
use ompi::supervisor::{run_with_recovery, RecoveryPolicy};
use ompi::{Mpi, MpiError, RunConfig};
use ompi_cr::test_runtime;
use serde::{Deserialize, Serialize};
use workloads::ring::{reference_checksums, RingApp};

/// Ring workload with one injected failure: rank `fail_rank` dies at
/// round `fail_round` — once per `armed` flag (so the recovered
/// incarnation survives).
struct FaultyRing {
    inner: RingApp,
    fail_rank: u32,
    fail_round: u64,
    armed: Arc<AtomicBool>,
    deaths: Arc<AtomicU32>,
}

impl MpiApp for FaultyRing {
    type State = workloads::ring::RingState;

    fn name(&self) -> &str {
        "faulty-ring"
    }

    fn init_state(&self, mpi: &Mpi) -> Result<Self::State, MpiError> {
        self.inner.init_state(mpi)
    }

    fn step(&self, mpi: &Mpi, state: &mut Self::State) -> Result<StepOutcome, MpiError> {
        if mpi.rank() == self.fail_rank
            && state.round == self.fail_round
            && self.armed.swap(false, Ordering::SeqCst)
        {
            self.deaths.fetch_add(1, Ordering::SeqCst);
            return Err(MpiError::PeerLost {
                detail: "injected node failure".into(),
            });
        }
        self.inner.step(mpi, state)
    }
}

#[test]
fn supervisor_recovers_from_a_rank_failure() {
    let rounds = 40_000;
    let nprocs = 4;
    let rt = test_runtime("auto_recovery", 2);
    let deaths = Arc::new(AtomicU32::new(0));
    let app = Arc::new(FaultyRing {
        inner: RingApp { rounds },
        fail_rank: 2,
        fail_round: rounds / 2,
        armed: Arc::new(AtomicBool::new(true)),
        deaths: Arc::clone(&deaths),
    });

    let policy = RecoveryPolicy {
        checkpoint_every: Duration::from_millis(60),
        max_restarts: 3,
        poll_every: Duration::from_millis(5),
        ..Default::default()
    };
    let (results, report) =
        run_with_recovery(&rt, Arc::clone(&app), RunConfig::new(nprocs), &policy).unwrap();

    // The failure actually happened and recovery actually ran.
    assert_eq!(deaths.load(Ordering::SeqCst), 1, "exactly one injected death");
    assert!(report.restarts >= 1, "at least one restart: {report:?}");
    assert!(!report.failures.is_empty());

    // And the final answer is the fault-free answer.
    let expected = reference_checksums(u64::from(nprocs), rounds);
    for (r, (state, end)) in results.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed, "rank {r}");
        assert_eq!(state.round, rounds, "rank {r}");
        assert_eq!(state.checksum, expected[r], "rank {r} checksum");
    }
    rt.shutdown();
}

#[test]
fn supervisor_without_failures_is_transparent() {
    let rounds = 3_000;
    let nprocs = 3;
    let rt = test_runtime("auto_norecover", 1);
    let app = Arc::new(RingApp { rounds });
    let policy = RecoveryPolicy {
        checkpoint_every: Duration::from_millis(30),
        max_restarts: 1,
        poll_every: Duration::from_millis(5),
        ..Default::default()
    };
    let (results, report) =
        run_with_recovery(&rt, app, RunConfig::new(nprocs), &policy).unwrap();
    assert_eq!(report.restarts, 0);
    assert!(report.failures.is_empty());
    let expected = reference_checksums(u64::from(nprocs), rounds);
    for (r, (state, _)) in results.iter().enumerate() {
        assert_eq!(state.checksum, expected[r]);
    }
    rt.shutdown();
}

#[test]
fn supervisor_gives_up_after_max_restarts() {
    // A rank that always fails: the supervisor must stop after
    // max_restarts and report every failure.
    struct AlwaysFails;

    #[derive(Serialize, Deserialize)]
    struct NoState {
        round: u64,
    }

    impl MpiApp for AlwaysFails {
        type State = NoState;

        fn init_state(&self, _mpi: &Mpi) -> Result<NoState, MpiError> {
            Ok(NoState { round: 0 })
        }

        fn step(&self, mpi: &Mpi, state: &mut NoState) -> Result<StepOutcome, MpiError> {
            let comm = mpi.world().clone();
            mpi.barrier(&comm)?;
            state.round += 1;
            if mpi.rank() == 1 && state.round == 10 {
                return Err(MpiError::PeerLost {
                    detail: "chronically broken node".into(),
                });
            }
            Ok(StepOutcome::Continue)
        }
    }

    let rt = test_runtime("auto_giveup", 1);
    let policy = RecoveryPolicy {
        checkpoint_every: Duration::from_secs(3600), // never checkpoints
        max_restarts: 2,
        poll_every: Duration::from_millis(5),
        ..Default::default()
    };
    let err = match run_with_recovery(&rt, Arc::new(AlwaysFails), RunConfig::new(2), &policy) {
        Err(e) => e,
        Ok(_) => panic!("chronically failing job must not succeed"),
    };
    let msg = err.to_string();
    assert!(msg.contains("after 2 restarts"), "{msg}");
    assert!(msg.contains("chronically broken"), "{msg}");
    rt.shutdown();
}
