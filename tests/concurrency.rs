//! Concurrency stress: overlapping checkpoint requests, checkpointing
//! under the progress engine, and parallel independent jobs in one
//! runtime.

use std::sync::Arc;
use std::time::Duration;

use cr_core::request::CheckpointOptions;
use mca::McaParams;
use ompi::{mpirun, restart, RestartOptions, RunConfig};
use ompi_cr::test_runtime;
use workloads::ring::{reference_checksums, RingApp};
use workloads::stencil::StencilApp;

#[test]
fn concurrent_checkpoint_requests_serialize() {
    let rt = test_runtime("concurrent_ckpt", 2);
    let app = Arc::new(RingApp { rounds: 500_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(4)).unwrap();
    std::thread::sleep(Duration::from_millis(30));

    // Four simultaneous tool-side requests: all must succeed, with
    // distinct, consecutive intervals (the global coordinator serializes).
    let handle = job.handle();
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..4)
            .map(|_| s.spawn(|| handle.checkpoint(&CheckpointOptions::tool())))
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let mut intervals: Vec<u64> = outcomes
        .into_iter()
        .map(|o| o.expect("each serialized request succeeds").interval)
        .collect();
    intervals.sort_unstable();
    assert_eq!(intervals, vec![0, 1, 2, 3]);

    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}

#[test]
fn checkpoint_with_progress_engine_enabled() {
    let rt = test_runtime("progress", 1);
    let params = Arc::new(McaParams::new());
    params.set("opal_progress", "1");
    let app = Arc::new(RingApp { rounds: 300_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig { nprocs: 2, params }).unwrap();
    std::thread::sleep(Duration::from_millis(40));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();

    // Restart (progress engine restarts too) and complete correctly.
    let rt2 = test_runtime("progress_restart", 1);
    let job =
        restart(&rt2, Arc::clone(&app), &outcome.global_snapshot, RestartOptions::default())
            .unwrap();
    let results = job.wait().unwrap();
    let expected = reference_checksums(2, 300_000);
    for (r, (state, _)) in results.iter().enumerate() {
        assert_eq!(state.checksum, expected[r]);
    }
    rt.shutdown();
    rt2.shutdown();
}

#[test]
fn independent_jobs_share_a_runtime() {
    // Two jobs run concurrently in one runtime; checkpointing one must not
    // disturb the other (daemon registries and modex are job-scoped).
    let rt = test_runtime("two_jobs", 2);
    let ring = Arc::new(RingApp { rounds: 400_000 });
    let stencil = Arc::new(StencilApp {
        cells_per_rank: 32,
        iters: 300,
        ..Default::default()
    });
    let job_a = mpirun(&rt, Arc::clone(&ring), RunConfig::new(3)).unwrap();
    let job_b = mpirun(&rt, Arc::clone(&stencil), RunConfig::new(4)).unwrap();
    std::thread::sleep(Duration::from_millis(30));

    let outcome = job_a.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert_eq!(outcome.ranks, 3);

    // Job B finishes untouched.
    let results_b = job_b.wait().unwrap();
    assert_eq!(results_b.len(), 4);
    assert_eq!(results_b[0].0.iter, 300);

    job_a.request_terminate();
    job_a.wait().unwrap();
    rt.shutdown();
}
