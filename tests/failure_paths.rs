//! Failure injection across the stack: a failed checkpoint must never
//! harm the running job, and recovery paths must report cleanly.

use std::sync::Arc;
use std::time::Duration;

use cr_core::request::CheckpointOptions;
use cr_core::{CommitState, CrError, GlobalSnapshot};
use mca::McaParams;
use netsim::NodeId;
use ompi::app::RunEnd;
use ompi::{mpirun, restart, RestartOptions, RunConfig};
use ompi_cr::test_runtime;
use proptest::prelude::*;
use workloads::ring::{reference_checksums, RingApp};

#[test]
fn failed_checkpoint_leaves_job_healthy_and_next_succeeds() {
    let rt = test_runtime("fail_then_ok", 2);
    let params = Arc::new(McaParams::new());
    // First CRS attempt on every process fails, later attempts succeed.
    params.set("crs_blcr_sim_fail_every", "1000000"); // placeholder, reset below
    params.set("crs_blcr_sim_fail_every", "1");
    let rounds = 50_000;
    let app = Arc::new(RingApp { rounds });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig { nprocs: 4, params: Arc::clone(&params) })
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));

    // fail_every=1: every checkpoint attempt fails.
    let err = job.checkpoint(&CheckpointOptions::tool()).unwrap_err();
    assert!(err.to_string().contains("injected failure"));

    // The job is entirely unharmed: no committed interval...
    if let Ok(g) = GlobalSnapshot::open(&job.handle().global_snapshot_path()) {
        assert!(g.intervals().is_empty());
    }
    // ...and it runs to the correct completion.
    job.request_terminate();
    let results = job.wait().unwrap();
    assert!(results
        .iter()
        .all(|(_, end)| matches!(end, RunEnd::Completed | RunEnd::Terminated)));
    rt.shutdown();
}

#[test]
fn alternating_failures_every_other_checkpoint_succeeds() {
    let rt = test_runtime("alternating", 1);
    let params = Arc::new(McaParams::new());
    params.set("crs_blcr_sim_fail_every", "2"); // 2nd, 4th, ... attempts fail
    let app = Arc::new(RingApp { rounds: 500_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig { nprocs: 2, params }).unwrap();
    std::thread::sleep(Duration::from_millis(30));

    // Attempt 1 per process succeeds.
    let first = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert_eq!(first.interval, 0);
    // Attempt 2 per process fails.
    assert!(job.checkpoint(&CheckpointOptions::tool()).is_err());
    // Attempt 3 succeeds; interval numbering skips nothing visible.
    let third = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert_eq!(third.interval, 1);

    let global = GlobalSnapshot::open(&first.global_snapshot).unwrap();
    assert_eq!(global.intervals(), vec![0, 1]);

    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}

#[test]
fn restart_from_corrupted_context_fails_loudly() {
    let rt = test_runtime("corrupt", 1);
    let app = Arc::new(RingApp { rounds: 200_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(2)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();

    // Flip one byte in rank 1's context file.
    let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
    let local = global.local_snapshot(outcome.interval, cr_core::Rank(1)).unwrap();
    let path = local.context_path();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, bytes).unwrap();

    let rt2 = test_runtime("corrupt_restart", 1);
    let err = match restart(&rt2, app, &outcome.global_snapshot, RestartOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("restart from corrupted snapshot must fail"),
    };
    assert!(
        matches!(err, CrError::Codec(codec::Error::ChecksumMismatch { .. })),
        "wanted checksum mismatch, got: {err}"
    );
    rt.shutdown();
    rt2.shutdown();
}

#[test]
fn restart_from_missing_interval_fails_loudly() {
    let rt = test_runtime("noiv", 1);
    let app = Arc::new(RingApp { rounds: 200_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(2)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();

    let rt2 = test_runtime("noiv_restart", 1);
    // Interval 7 was never committed.
    let err = match restart(
        &rt2,
        Arc::clone(&app),
        &outcome.global_snapshot,
        RestartOptions::default().at_interval(7),
    ) {
        Err(e) => e,
        Ok(_) => panic!("restart from uncommitted interval must fail"),
    };
    assert!(err.to_string().contains("never committed"));
    // Restarting from the real interval still works afterwards.
    let job =
        restart(&rt2, Arc::clone(&app), &outcome.global_snapshot, RestartOptions::default())
            .unwrap();
    let results = job.wait().unwrap();
    let expected = reference_checksums(2, 200_000);
    assert_eq!(results[0].0.checksum, expected[0]);
    rt.shutdown();
    rt2.shutdown();
}

#[test]
fn restart_from_nonexistent_reference_fails_loudly() {
    let rt = test_runtime("noref", 1);
    let err = match restart(
        &rt,
        Arc::new(RingApp { rounds: 1 }),
        std::path::Path::new("/definitely/not/a/snapshot.ckpt"),
        RestartOptions::default(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("must fail"),
    };
    assert!(matches!(err, CrError::BadSnapshot { .. }));
    rt.shutdown();
}

#[test]
fn mid_gather_node_failure_falls_back_to_last_global_commit() {
    // Early-release pipeline: interval 0 is fully gathered (globally
    // committed), interval 1's gather loses a source node between local
    // and global commit. Restart must ignore interval 1 and restore the
    // newest globally committed interval, 0.
    let rt = test_runtime("mid_gather", 2);
    let rounds = 150_000;
    let app = Arc::new(RingApp { rounds });
    let params = Arc::new(McaParams::new());
    params.set("snapc_early_release", "true");
    params.set("snapc_gather_delay_ms", "400"); // fault window for the kill below
    let job = mpirun(
        &rt,
        Arc::clone(&app),
        RunConfig {
            nprocs: 4,
            params,
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));

    let first = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert_eq!(first.stats.commit, CommitState::LocalCommitted);
    rt.drain_writebehind(); // interval 0 reaches stable storage

    let second = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    assert_eq!(second.interval, first.interval + 1);
    job.wait().unwrap();
    // Node 1 dies inside the gather's fault window: rank scratch on it is
    // now unreachable, so interval 1 can never be promoted.
    rt.kill_daemon(NodeId(1));

    // `restart` first joins the in-flight gather (which aborts on the
    // dead source), then selects the newest *globally* committed
    // interval.
    let restarted =
        restart(&rt, Arc::clone(&app), &second.global_snapshot, RestartOptions::default())
            .unwrap();
    let results = restarted.wait().unwrap();

    let global = GlobalSnapshot::open(&second.global_snapshot).unwrap();
    assert_eq!(global.intervals(), vec![first.interval]);
    assert_eq!(global.commit_state(first.interval), CommitState::GlobalCommitted);
    assert_eq!(global.commit_state(second.interval), CommitState::LocalCommitted);
    assert!(rt.tracer().count_prefix("filem.gather.error") > 0);

    // The restart restored interval 0 and still computed the fault-free
    // answer.
    let expected = reference_checksums(4, rounds);
    for (r, (state, end)) in results.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed, "rank {r}");
        assert_eq!(state.checksum, expected[r], "rank {r} checksum");
    }
    rt.shutdown();
}

proptest! {
    /// Early release never lets a restart read a partially gathered
    /// interval: whatever mix of promoted and local-only intervals exists,
    /// the restart-facing accessors expose exactly the promoted ones.
    #[test]
    fn restart_never_sees_partially_gathered_intervals(promotions in proptest::collection::vec(any::<bool>(), 1..8)) {
        let dir = std::env::temp_dir().join(format!(
            "failure_paths_prop_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut global = GlobalSnapshot::create(&dir, cr_core::JobId(9), 2).unwrap();
        let mut promoted = Vec::new();
        let mut local_only = Vec::new();
        for promote in &promotions {
            let (interval, _) = global.begin_interval().unwrap();
            global.local_commit_interval(interval, &[]).unwrap();
            if *promote {
                global.promote_interval(interval).unwrap();
                promoted.push(interval);
            } else {
                local_only.push(interval);
            }
        }
        prop_assert_eq!(global.intervals(), promoted.clone());
        prop_assert_eq!(global.latest_interval(), promoted.last().copied());
        prop_assert_eq!(global.local_committed_intervals(), local_only.clone());
        for interval in &local_only {
            prop_assert_eq!(global.commit_state(*interval), CommitState::LocalCommitted);
            let err = global.local_snapshots(*interval).unwrap_err();
            prop_assert!(err.to_string().contains("never committed"));
        }
        for interval in &promoted {
            prop_assert_eq!(global.commit_state(*interval), CommitState::GlobalCommitted);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn mid_job_opt_out_window() {
    // A process flips checkpointability off and on; requests during the
    // window fail atomically, requests after succeed.
    let rt = test_runtime("optout_window", 1);
    let app = Arc::new(RingApp { rounds: 2_000_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(3)).unwrap();
    std::thread::sleep(Duration::from_millis(30));

    job.handle().container(cr_core::Rank(1)).set_checkpointable(false);
    let err = job.checkpoint(&CheckpointOptions::tool()).unwrap_err();
    match err {
        CrError::NotCheckpointable { ranks } => assert_eq!(ranks, vec![cr_core::Rank(1)]),
        other => panic!("unexpected {other}"),
    }

    job.handle().container(cr_core::Rank(1)).set_checkpointable(true);
    let outcome = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert_eq!(outcome.interval, 0);

    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}
