//! Failure injection across the stack: a failed checkpoint must never
//! harm the running job, and recovery paths must report cleanly.

use std::sync::Arc;
use std::time::Duration;

use cr_core::request::CheckpointOptions;
use cr_core::{CrError, GlobalSnapshot};
use mca::McaParams;
use ompi::app::RunEnd;
use ompi::{mpirun, restart_from, RunConfig};
use ompi_cr::test_runtime;
use workloads::ring::{reference_checksums, RingApp};

#[test]
fn failed_checkpoint_leaves_job_healthy_and_next_succeeds() {
    let rt = test_runtime("fail_then_ok", 2);
    let params = Arc::new(McaParams::new());
    // First CRS attempt on every process fails, later attempts succeed.
    params.set("crs_blcr_sim_fail_every", "1000000"); // placeholder, reset below
    params.set("crs_blcr_sim_fail_every", "1");
    let rounds = 50_000;
    let app = Arc::new(RingApp { rounds });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig { nprocs: 4, params: Arc::clone(&params) })
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));

    // fail_every=1: every checkpoint attempt fails.
    let err = job.checkpoint(&CheckpointOptions::tool()).unwrap_err();
    assert!(err.to_string().contains("injected failure"));

    // The job is entirely unharmed: no committed interval...
    if let Ok(g) = GlobalSnapshot::open(&job.handle().global_snapshot_path()) {
        assert!(g.intervals().is_empty());
    }
    // ...and it runs to the correct completion.
    job.request_terminate();
    let results = job.wait().unwrap();
    assert!(results
        .iter()
        .all(|(_, end)| matches!(end, RunEnd::Completed | RunEnd::Terminated)));
    rt.shutdown();
}

#[test]
fn alternating_failures_every_other_checkpoint_succeeds() {
    let rt = test_runtime("alternating", 1);
    let params = Arc::new(McaParams::new());
    params.set("crs_blcr_sim_fail_every", "2"); // 2nd, 4th, ... attempts fail
    let app = Arc::new(RingApp { rounds: 500_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig { nprocs: 2, params }).unwrap();
    std::thread::sleep(Duration::from_millis(30));

    // Attempt 1 per process succeeds.
    let first = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert_eq!(first.interval, 0);
    // Attempt 2 per process fails.
    assert!(job.checkpoint(&CheckpointOptions::tool()).is_err());
    // Attempt 3 succeeds; interval numbering skips nothing visible.
    let third = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert_eq!(third.interval, 1);

    let global = GlobalSnapshot::open(&first.global_snapshot).unwrap();
    assert_eq!(global.intervals(), vec![0, 1]);

    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}

#[test]
fn restart_from_corrupted_context_fails_loudly() {
    let rt = test_runtime("corrupt", 1);
    let app = Arc::new(RingApp { rounds: 200_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(2)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();

    // Flip one byte in rank 1's context file.
    let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
    let local = global.local_snapshot(outcome.interval, cr_core::Rank(1)).unwrap();
    let path = local.context_path();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, bytes).unwrap();

    let rt2 = test_runtime("corrupt_restart", 1);
    let err = match restart_from(&rt2, app, &outcome.global_snapshot, None) {
        Err(e) => e,
        Ok(_) => panic!("restart from corrupted snapshot must fail"),
    };
    assert!(
        matches!(err, CrError::Codec(codec::Error::ChecksumMismatch { .. })),
        "wanted checksum mismatch, got: {err}"
    );
    rt.shutdown();
    rt2.shutdown();
}

#[test]
fn restart_from_missing_interval_fails_loudly() {
    let rt = test_runtime("noiv", 1);
    let app = Arc::new(RingApp { rounds: 200_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(2)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();

    let rt2 = test_runtime("noiv_restart", 1);
    // Interval 7 was never committed.
    let err = match restart_from(&rt2, Arc::clone(&app), &outcome.global_snapshot, Some(7)) {
        Err(e) => e,
        Ok(_) => panic!("restart from uncommitted interval must fail"),
    };
    assert!(err.to_string().contains("never committed"));
    // Restarting from the real interval still works afterwards.
    let job = restart_from(&rt2, Arc::clone(&app), &outcome.global_snapshot, None).unwrap();
    let results = job.wait().unwrap();
    let expected = reference_checksums(2, 200_000);
    assert_eq!(results[0].0.checksum, expected[0]);
    rt.shutdown();
    rt2.shutdown();
}

#[test]
fn restart_from_nonexistent_reference_fails_loudly() {
    let rt = test_runtime("noref", 1);
    let err = match restart_from(
        &rt,
        Arc::new(RingApp { rounds: 1 }),
        std::path::Path::new("/definitely/not/a/snapshot.ckpt"),
        None,
    ) {
        Err(e) => e,
        Ok(_) => panic!("must fail"),
    };
    assert!(matches!(err, CrError::BadSnapshot { .. }));
    rt.shutdown();
}

#[test]
fn mid_job_opt_out_window() {
    // A process flips checkpointability off and on; requests during the
    // window fail atomically, requests after succeed.
    let rt = test_runtime("optout_window", 1);
    let app = Arc::new(RingApp { rounds: 2_000_000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(3)).unwrap();
    std::thread::sleep(Duration::from_millis(30));

    job.handle().container(cr_core::Rank(1)).set_checkpointable(false);
    let err = job.checkpoint(&CheckpointOptions::tool()).unwrap_err();
    match err {
        CrError::NotCheckpointable { ranks } => assert_eq!(ranks, vec![cr_core::Rank(1)]),
        other => panic!("unexpected {other}"),
    }

    job.handle().container(cr_core::Rank(1)).set_checkpointable(true);
    let outcome = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert_eq!(outcome.interval, 0);

    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}
