//! Property test for DESIGN.md invariant 1 (ablation A4): for *any*
//! message pattern and *any* checkpoint trigger time, restarting from the
//! global snapshot yields exactly the fault-free answer.
//!
//! Each case is a full job lifecycle (launch, checkpoint+terminate at a
//! random instant, restart, compare), so the case count is kept small;
//! the traffic seed randomizes the communication pattern and payload
//! sizes, and the checkpoint delay randomizes where in the step/ops the
//! cut lands.

use std::sync::Arc;
use std::time::Duration;

use cr_core::request::CheckpointOptions;
use ompi::app::RunEnd;
use ompi::{mpirun, restart, RestartOptions, RunConfig};
use ompi_cr::test_runtime;
use proptest::prelude::*;
use workloads::traffic::{digests_agree, TrafficApp, TrafficState};

fn fault_free(app: &Arc<TrafficApp>, nprocs: u32, tag: &str) -> Vec<TrafficState> {
    let rt = test_runtime(tag, 2);
    let results = mpirun(&rt, Arc::clone(app), RunConfig::new(nprocs))
        .unwrap()
        .wait()
        .unwrap();
    rt.shutdown();
    results.into_iter().map(|(s, _)| s).collect()
}

fn checkpointed(
    app: &Arc<TrafficApp>,
    nprocs: u32,
    delay_ms: u64,
    tag: &str,
) -> Option<Vec<TrafficState>> {
    let rt = test_runtime(&format!("{tag}_ck"), 2);
    let job = mpirun(&rt, Arc::clone(app), RunConfig::new(nprocs)).unwrap();
    std::thread::sleep(Duration::from_millis(delay_ms));
    let outcome = match job.checkpoint(&CheckpointOptions::tool().and_terminate()) {
        Ok(o) => o,
        Err(_) => {
            // The job finished before the checkpoint landed: nothing to
            // test for this timing, which is itself a valid outcome.
            job.request_terminate();
            let _ = job.wait();
            rt.shutdown();
            return None;
        }
    };
    job.wait().unwrap();

    let rt2 = test_runtime(&format!("{tag}_rs"), 3);
    let job =
        restart(&rt2, Arc::clone(app), &outcome.global_snapshot, RestartOptions::default())
            .unwrap();
    let results = job.wait().unwrap();
    for (r, (_, end)) in results.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed, "rank {r}");
    }
    rt.shutdown();
    rt2.shutdown();
    Some(results.into_iter().map(|(s, _)| s).collect())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 0, // each case is seconds; shrinking buys little
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_seed_any_timing_restart_is_exact(
        seed in any::<u64>(),
        delay_ms in 5u64..120,
        nprocs in 2u32..6,
    ) {
        let app = Arc::new(TrafficApp {
            rounds: 3000,
            seed,
            max_len: 192,
        });
        let tag = format!("prop_{seed:x}_{delay_ms}_{nprocs}");
        let reference = fault_free(&app, nprocs, &format!("{tag}_ref"));
        if let Some(restarted) = checkpointed(&app, nprocs, delay_ms, &tag) {
            prop_assert!(
                digests_agree(&reference, &restarted),
                "seed={seed:#x} delay={delay_ms}ms nprocs={nprocs}:\n{reference:?}\nvs\n{restarted:?}"
            );
        }
    }
}
