//! Tentpole acceptance for the replicated in-memory snapshot store: with
//! `filem = replica` and ring factor `k`, a job survives the loss of any
//! `k` nodes and restarts purely from surviving peer-memory replicas —
//! even with stable storage gone. Losing more than `k` holders (or the
//! whole host process) falls back per rank to stable storage, and
//! expiring an interval reclaims both the stable files and the peer
//! memory.

use std::sync::Arc;
use std::time::Duration;

use cr_core::request::CheckpointOptions;
use cr_core::{GlobalSnapshot, Rank};
use mca::McaParams;
use netsim::NodeId;
use ompi::{mpirun, restart, RestartOptions, RestartSource, RunConfig};
use ompi_cr::test_runtime;
use workloads::ring::RingApp;

const NPROCS: u32 = 4;

/// Each test here spins a 4-rank job; running them concurrently on a
/// small host starves the spinning ranks until OOB replies time out.
/// Serialize the file.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn replica_params(factor: u32) -> Arc<McaParams> {
    let params = Arc::new(McaParams::new());
    params.set("filem", "replica");
    params.set("filem_replica_factor", &factor.to_string());
    params
}

/// Launch a long ring job with the replica file mover, checkpoint it with
/// terminate-after, and wait it out. Returns the checkpoint outcome.
fn checkpoint_ring(
    rt: &orte::Runtime,
    factor: u32,
) -> cr_core::request::CheckpointOutcome {
    let job = mpirun(
        rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        RunConfig {
            nprocs: NPROCS,
            params: replica_params(factor),
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();
    outcome
}

#[test]
fn restart_survives_k_node_losses_without_stable_storage() {
    let _serial = serial();
    let rt = test_runtime("replica_k_losses", 4);
    let outcome = checkpoint_ring(&rt, 2);
    rt.drain_writebehind();

    // Stable storage becomes unavailable: the drained interval files are
    // gone entirely. Only peer memory can serve this restart.
    let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
    std::fs::remove_dir_all(global.interval_dir(outcome.interval)).unwrap();

    // Lose any k = 2 nodes. With factor 2 every image lives on 3 of the
    // 4 nodes, so at least one holder survives per rank.
    rt.kill_daemon(NodeId(1));
    rt.kill_daemon(NodeId(2));

    rt.tracer().clear();
    let job = restart(
        &rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        &outcome.global_snapshot,
        RestartOptions::default().with_source(RestartSource::Replica),
    )
    .unwrap();
    job.handle().request_terminate();
    let results = job.wait().unwrap();
    assert_eq!(results.len(), NPROCS as usize);

    let tracer = rt.tracer();
    assert!(tracer.count_prefix("filem.replica.preload") > 0);
    assert_eq!(
        tracer.count_prefix("filem.preload"),
        0,
        "a replica-only restart must never touch stable storage"
    );
    rt.shutdown();
}

#[test]
fn losing_more_than_k_holders_falls_back_to_stable() {
    let _serial = serial();
    let rt = test_runtime("replica_fallback", 4);
    let outcome = checkpoint_ring(&rt, 1);

    // Factor 1 puts rank 1's image on nodes {1, 2} only; killing both
    // leaves that rank with no surviving holder.
    rt.kill_daemon(NodeId(1));
    rt.kill_daemon(NodeId(2));

    // A replica-only restart must refuse...
    let err = match restart(
        &rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        &outcome.global_snapshot,
        RestartOptions::default().with_source(RestartSource::Replica),
    ) {
        Err(e) => e,
        Ok(_) => panic!("replica-only restart must fail with a holder-less rank"),
    };
    assert!(err.to_string().contains("no surviving replica holder"), "{err}");

    // ...while auto serves the survivors from memory and only the
    // orphaned ranks from stable storage.
    rt.tracer().clear();
    let job = restart(
        &rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        &outcome.global_snapshot,
        RestartOptions::default(),
    )
    .unwrap();
    job.handle().request_terminate();
    let results = job.wait().unwrap();
    assert_eq!(results.len(), NPROCS as usize);

    let tracer = rt.tracer();
    assert!(tracer.count_prefix("filem.replica.preload") > 0, "memory path used");
    assert!(tracer.count_prefix("filem.preload") > 0, "stable fallback used");
    rt.shutdown();
}

#[test]
fn fresh_host_process_restarts_from_stable() {
    let _serial = serial();
    let rt = test_runtime("replica_fresh_ckpt", 4);
    let outcome = checkpoint_ring(&rt, 1);
    // Shutdown joins the write-behind drains, so stable storage is
    // complete before the host process "dies".
    rt.shutdown();

    // A brand-new host process has empty daemon replica stores; every
    // rank must come from stable storage — transparently.
    let rt2 = test_runtime("replica_fresh_restart", 4);
    let job = restart(
        &rt2,
        Arc::new(RingApp { rounds: 1_000_000 }),
        &outcome.global_snapshot,
        RestartOptions::default(),
    )
    .unwrap();
    job.handle().request_terminate();
    let results = job.wait().unwrap();
    assert_eq!(results.len(), NPROCS as usize);

    let tracer = rt2.tracer();
    assert_eq!(tracer.count_prefix("filem.replica.preload"), 0);
    assert!(tracer.count_prefix("filem.preload") > 0);
    rt2.shutdown();
}

#[test]
fn expired_interval_reclaims_stable_and_replica_storage() {
    let _serial = serial();
    let rt = test_runtime("replica_expire", 4);
    let job = mpirun(
        &rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        RunConfig {
            nprocs: NPROCS,
            params: replica_params(1),
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let first = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let second = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();
    rt.drain_writebehind();
    assert_ne!(first.interval, second.interval);

    let mut global = GlobalSnapshot::open(&second.global_snapshot).unwrap();
    let job_id = global.job();
    let holds_interval = |interval: u64| {
        orte::replica::replica_inventory(&rt, job_id)
            .iter()
            .any(|(_, entries)| entries.iter().any(|(i, _)| *i == interval))
    };
    assert!(holds_interval(first.interval), "older interval replicated");
    assert!(holds_interval(second.interval), "newer interval replicated");

    // Expire the older global snapshot: peer memory and stable files of
    // that interval are both reclaimed, the newer interval is untouched.
    let removed = orte::replica::expire_replicas(&rt, job_id, first.interval);
    assert!(removed > 0, "peer-memory entries reclaimed");
    global.retire_interval(first.interval).unwrap();

    assert!(!holds_interval(first.interval), "no replica entries linger");
    assert!(holds_interval(second.interval), "newer replicas survive");
    assert!(
        !global.interval_dir(first.interval).exists(),
        "stable files of the retired interval are gone"
    );
    assert!(!global.intervals().contains(&first.interval));
    assert!(global.replica_holders(first.interval, Rank(0)).is_empty());

    // The surviving interval still restores — from peer memory.
    let restarted = restart(
        &rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        &second.global_snapshot,
        RestartOptions::default().with_source(RestartSource::Replica),
    )
    .unwrap();
    restarted.handle().request_terminate();
    assert_eq!(restarted.wait().unwrap().len(), NPROCS as usize);
    rt.shutdown();
}
