//! Checkpoint/restart equivalence across workloads (DESIGN.md invariant 1):
//! for each application, a run that is checkpointed mid-flight, killed, and
//! restarted must produce exactly the fault-free answer.

use std::sync::Arc;
use std::time::Duration;

use cr_core::request::CheckpointOptions;
use ompi::app::{MpiApp, RunEnd};
use ompi::{mpirun, restart, RestartOptions, RunConfig};
use ompi_cr::test_runtime;
use workloads::master_worker::{reference_total, MasterWorkerApp};
use workloads::ring::{reference_checksums, RingApp};
use workloads::stencil::{reference_rod, StencilApp};
use workloads::traffic::{digests_agree, TrafficApp};

/// Run the app fault-free, then run it with a mid-flight
/// checkpoint+terminate and restart, and hand both results to `verify`.
fn checkpointed_equals_fault_free<A>(
    tag: &str,
    app: Arc<A>,
    nprocs: u32,
    settle: Duration,
    verify: impl Fn(&[(A::State, RunEnd)], &[(A::State, RunEnd)]),
) where
    A: MpiApp,
{
    // Fault-free reference.
    let rt = test_runtime(&format!("{tag}_ref"), 2);
    let reference = mpirun(&rt, Arc::clone(&app), RunConfig::new(nprocs))
        .unwrap()
        .wait()
        .unwrap();
    rt.shutdown();

    // Checkpoint + terminate mid-flight. A loaded machine can deschedule
    // this thread long enough for the job to reach MPI_Finalize (where
    // checkpointing is disabled) before the request strikes; retry with a
    // shorter settle instead of flaking.
    let mut settle = settle;
    let mut attempt = 0;
    let (rt, outcome) = loop {
        attempt += 1;
        let rt = test_runtime(&format!("{tag}_ckpt{attempt}"), 2);
        let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(nprocs)).unwrap();
        std::thread::sleep(settle);
        match job.checkpoint(&CheckpointOptions::tool().and_terminate()) {
            Ok(outcome) => {
                job.wait().unwrap();
                break (rt, outcome);
            }
            Err(e) if attempt < 4 => {
                let _ = job.wait();
                rt.shutdown();
                settle /= 4;
                eprintln!(
                    "{tag}: checkpoint raced job completion ({e}); retrying with settle {settle:?}"
                );
            }
            Err(e) => panic!("{tag}: checkpoint failed after {attempt} attempts: {e}"),
        }
    };

    // Restart and run to completion.
    let rt2 = test_runtime(&format!("{tag}_restart"), 2);
    let job =
        restart(&rt2, Arc::clone(&app), &outcome.global_snapshot, RestartOptions::default())
            .unwrap();
    let restarted = job.wait().unwrap();
    assert_eq!(restarted.len(), reference.len());
    for (r, (_, end)) in restarted.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed, "{tag} rank {r} must complete");
    }
    verify(&reference, &restarted);
    rt.shutdown();
    rt2.shutdown();
}

#[test]
fn ring_equivalence() {
    let rounds = 10_000;
    let nprocs = 4;
    checkpointed_equals_fault_free(
        "eq_ring",
        Arc::new(RingApp { rounds }),
        nprocs,
        Duration::from_millis(40),
        |reference, restarted| {
            let expected = reference_checksums(u64::from(nprocs), rounds);
            for (r, ((ref_state, _), (new_state, _))) in
                reference.iter().zip(restarted).enumerate()
            {
                assert_eq!(ref_state.checksum, expected[r]);
                assert_eq!(new_state.checksum, expected[r], "rank {r}");
                assert_eq!(new_state.round, rounds);
            }
        },
    );
}

#[test]
fn stencil_equivalence() {
    let app = StencilApp {
        cells_per_rank: 48,
        iters: 600,
        left_boundary: 100.0,
        right_boundary: -25.0,
    };
    let nprocs = 4;
    let expected = reference_rod(
        nprocs as usize,
        app.cells_per_rank,
        app.iters,
        app.left_boundary,
        app.right_boundary,
    );
    let cells_per_rank = app.cells_per_rank;
    checkpointed_equals_fault_free(
        "eq_stencil",
        Arc::new(app),
        nprocs,
        Duration::from_millis(60),
        move |reference, restarted| {
            for (r, ((ref_state, _), (new_state, _))) in
                reference.iter().zip(restarted).enumerate()
            {
                let slab = &expected[r * cells_per_rank..(r + 1) * cells_per_rank];
                // The distributed answer matches the serial reference
                // bit-for-bit (same operation order), and restart matches
                // the fault-free run bit-for-bit.
                assert_eq!(ref_state.cells.as_slice(), slab, "rank {r} vs serial");
                assert_eq!(new_state.cells, ref_state.cells, "rank {r} vs restart");
                assert_eq!(new_state.residual, ref_state.residual);
            }
        },
    );
}

#[test]
fn master_worker_equivalence() {
    let tasks = 60_000;
    checkpointed_equals_fault_free(
        "eq_mw",
        Arc::new(MasterWorkerApp { tasks, wave: 64 }),
        4,
        Duration::from_millis(40),
        move |_reference, restarted| {
            // The master's total is order-insensitive (wrapping add), so it
            // must equal the serial reference regardless of completion
            // interleaving.
            assert_eq!(restarted[0].0.total, reference_total(tasks));
            assert_eq!(restarted[0].0.completed, tasks);
            // Workers' completions sum to the bag size.
            let worker_sum: u64 = restarted[1..].iter().map(|(s, _)| s.completed).sum();
            assert_eq!(worker_sum, tasks);
        },
    );
}

#[test]
fn traffic_equivalence() {
    checkpointed_equals_fault_free(
        "eq_traffic",
        Arc::new(TrafficApp {
            rounds: 2000,
            seed: 0xDEAD_BEEF,
            max_len: 128,
        }),
        5,
        Duration::from_millis(40),
        |reference, restarted| {
            let ref_states: Vec<_> = reference.iter().map(|(s, _)| s.clone()).collect();
            let new_states: Vec<_> = restarted.iter().map(|(s, _)| s.clone()).collect();
            assert!(
                digests_agree(&ref_states, &new_states),
                "digests diverged:\n{ref_states:?}\nvs\n{new_states:?}"
            );
        },
    );
}

#[test]
fn multiple_checkpoints_then_restart_from_each() {
    // Take three checkpoints of one run; every interval must independently
    // restart to the correct final answer.
    let rounds = 20_000;
    let nprocs = 3;
    let app = Arc::new(RingApp { rounds });
    let rt = test_runtime("multi_ckpt", 2);
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(nprocs)).unwrap();
    let mut snapshots = Vec::new();
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(15));
        snapshots.push(job.checkpoint(&CheckpointOptions::tool()).unwrap());
    }
    job.request_terminate();
    job.wait().unwrap();

    let expected = reference_checksums(u64::from(nprocs), rounds);
    assert_eq!(snapshots[0].global_snapshot, snapshots[2].global_snapshot);
    assert_eq!(snapshots.iter().map(|s| s.interval).collect::<Vec<_>>(), vec![0, 1, 2]);

    for outcome in &snapshots {
        let rt2 = test_runtime(&format!("multi_ckpt_i{}", outcome.interval), 2);
        let job = restart(
            &rt2,
            Arc::clone(&app),
            &outcome.global_snapshot,
            RestartOptions::default().at_interval(outcome.interval),
        )
        .unwrap();
        let results = job.wait().unwrap();
        for (r, (state, _)) in results.iter().enumerate() {
            assert_eq!(
                state.checksum, expected[r],
                "interval {} rank {r}",
                outcome.interval
            );
        }
        rt2.shutdown();
    }
    rt.shutdown();
}

#[test]
fn restarted_job_can_checkpoint_again() {
    // Chain: run -> checkpoint+terminate -> restart -> checkpoint+terminate
    // -> restart -> complete. Interval numbering continues monotonically.
    let rounds = 20_000;
    let nprocs = 3;
    let app = Arc::new(RingApp { rounds });

    let rt = test_runtime("chain0", 1);
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(nprocs)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let first = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();
    assert_eq!(first.interval, 0);

    let rt2 = test_runtime("chain1", 1);
    let job = restart(&rt2, Arc::clone(&app), &first.global_snapshot, RestartOptions::default())
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let second = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();
    assert_eq!(
        second.interval, 1,
        "restarted job resumes interval numbering past the restored interval"
    );

    let rt3 = test_runtime("chain2", 1);
    let job = restart(&rt3, Arc::clone(&app), &second.global_snapshot, RestartOptions::default())
        .unwrap();
    let results = job.wait().unwrap();
    let expected = reference_checksums(u64::from(nprocs), rounds);
    for (r, (state, end)) in results.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed);
        assert_eq!(state.checksum, expected[r], "rank {r}");
    }
    rt.shutdown();
    rt2.shutdown();
    rt3.shutdown();
}
