//! Replay-surface stress: an application step that exercises *every* PML
//! operation kind — blocking send/recv, isend/irecv/wait, test-polling,
//! probe, sendrecv, scan, and collectives — checkpointed at random
//! moments and restarted. Every recorded op kind must replay to the
//! identical result.

use std::sync::Arc;
use std::time::Duration;

use cr_core::request::CheckpointOptions;
use ompi::app::{MpiApp, RunEnd, StepOutcome};
use ompi::{mpirun, restart, Mpi, MpiError, RestartOptions, RunConfig};
use ompi_cr::test_runtime;
use serde::{Deserialize, Serialize};

struct KitchenSinkApp {
    rounds: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SinkState {
    round: u64,
    digest: u64,
}

fn mix(acc: u64, v: u64) -> u64 {
    acc.wrapping_mul(0x100000001B3).wrapping_add(v)
}

impl MpiApp for KitchenSinkApp {
    type State = SinkState;

    fn name(&self) -> &str {
        "kitchen-sink"
    }

    fn init_state(&self, _mpi: &Mpi) -> Result<SinkState, MpiError> {
        Ok(SinkState {
            round: 0,
            digest: 0,
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut SinkState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        let me = comm.rank();
        let n = comm.size();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        let r = state.round;

        // 1. Non-blocking ring exchange with test-polling then wait.
        let rx = mpi.irecv(&comm, Some(prev), Some(1))?;
        let tx = mpi.isend(&comm, next, 1, &(me as u64 + r))?;
        let mut polled: Option<(u64, _)> = mpi.test_recv(rx)?;
        let (v1, _) = match polled.take() {
            Some(pair) => pair,
            None => mpi.wait_recv(rx)?,
        };
        mpi.wait_send(tx)?;
        state.digest = mix(state.digest, v1);

        // 2. Probe metadata, then the matching blocking receive.
        mpi.send(&comm, next, 2, &(r * 31 + u64::from(me)))?;
        let status = mpi.probe(&comm, Some(prev), Some(2))?;
        state.digest = mix(state.digest, u64::from(status.source));
        let (v2, _): (u64, _) = mpi.recv(&comm, Some(prev), Some(2))?;
        state.digest = mix(state.digest, v2);

        // 3. Sendrecv swap.
        let (v3, _): (u64, _) =
            mpi.sendrecv(&comm, next, 3, &(r + u64::from(me) * 7), Some(prev), Some(3))?;
        state.digest = mix(state.digest, v3);

        // 4. Scan and collectives.
        let scanned = mpi.scan(&comm, u64::from(me) + r, u64::wrapping_add)?;
        state.digest = mix(state.digest, scanned);
        let total = mpi.allreduce(&comm, state.digest & 0xFFFF, u64::wrapping_add)?;
        state.digest = mix(state.digest, total);
        let gathered = mpi.allgather(&comm, &(state.digest & 0xFF))?;
        for g in gathered {
            state.digest = mix(state.digest, g);
        }

        state.round += 1;
        Ok(if state.round >= self.rounds {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
}

#[test]
fn every_op_kind_replays_exactly() {
    let rounds = 600;
    let nprocs = 4;
    let app = Arc::new(KitchenSinkApp { rounds });

    // Fault-free reference.
    let rt = test_runtime("sink_ref", 2);
    let reference = mpirun(&rt, Arc::clone(&app), RunConfig::new(nprocs))
        .unwrap()
        .wait()
        .unwrap();
    rt.shutdown();

    // Three different checkpoint timings, each restarted and compared.
    for delay_ms in [5u64, 25, 60] {
        let rt = test_runtime(&format!("sink_ck_{delay_ms}"), 2);
        let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(nprocs)).unwrap();
        std::thread::sleep(Duration::from_millis(delay_ms));
        let outcome = match job.checkpoint(&CheckpointOptions::tool().and_terminate()) {
            Ok(o) => o,
            Err(_) => {
                // Finished before the checkpoint landed; timing not testable.
                let _ = job.wait();
                rt.shutdown();
                continue;
            }
        };
        job.wait().unwrap();

        let rt2 = test_runtime(&format!("sink_rs_{delay_ms}"), 2);
        let job =
            restart(&rt2, Arc::clone(&app), &outcome.global_snapshot, RestartOptions::default())
                .unwrap();
        let restarted = job.wait().unwrap();
        for (r, ((ref_state, _), (new_state, end))) in
            reference.iter().zip(&restarted).enumerate()
        {
            assert_eq!(*end, RunEnd::Completed, "delay {delay_ms} rank {r}");
            assert_eq!(
                new_state, ref_state,
                "delay {delay_ms} rank {r}: replay diverged"
            );
        }
        rt.shutdown();
        rt2.shutdown();
    }
}
