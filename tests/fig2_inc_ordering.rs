//! Experiment E4 (paper Figure 2): a checkpoint request entering a
//! process flows through the INC stack in strict order — application
//! callback first, then OMPI (CRCP before PML), then ORTE, then OPAL,
//! then the CRS takes the image; the resulting state flows back up in
//! reverse.

use std::sync::Arc;

use cr_core::request::CheckpointOptions;
use ompi::app::{MpiApp, StepOutcome};
use ompi::{mpirun, Mpi, MpiError, RunConfig};
use ompi_cr::test_runtime;
use serde::{Deserialize, Serialize};

/// App that registers SELF callbacks so the application layer's
/// participation is visible in the trace.
struct CallbackApp;

#[derive(Serialize, Deserialize)]
struct CbState {
    rounds: u64,
}

impl MpiApp for CallbackApp {
    type State = CbState;

    fn init_state(&self, mpi: &Mpi) -> Result<CbState, MpiError> {
        let tracer = mpi.container().tracer().clone();
        mpi.on_checkpoint(move || {
            tracer.record("app.self.checkpoint", "");
            Ok(())
        });
        let tracer = mpi.container().tracer().clone();
        mpi.on_continue(move || {
            tracer.record("app.self.continue", "");
            Ok(())
        });
        Ok(CbState { rounds: 0 })
    }

    fn step(&self, mpi: &Mpi, state: &mut CbState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        mpi.barrier(&comm)?;
        state.rounds += 1;
        Ok(if state.rounds >= 200_000 {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
}

#[test]
fn inc_stack_order_is_a_palindrome_around_the_crs() {
    let rt = test_runtime("fig2", 1);
    let params = Arc::new(mca::McaParams::new());
    params.set("crs", "self");
    let job = mpirun(
        &rt,
        Arc::new(CallbackApp),
        RunConfig {
            nprocs: 2,
            params,
        },
    )
    .unwrap();

    std::thread::sleep(std::time::Duration::from_millis(30));
    rt.tracer().clear();
    job.checkpoint(&CheckpointOptions::tool()).unwrap();
    let tracer = rt.tracer();

    // Down phase: CRCP (first MPI subsystem) -> PML -> ORTE -> CRS.
    tracer.assert_order("ompi.crcp.coordinate", "ompi.pml.ft_event");
    tracer.assert_order("ompi.pml.ft_event", "orte.oob.ft_event");
    tracer.assert_order("orte.oob.ft_event", "opal.crs.checkpoint");
    // The SELF checkpoint callback fires with the app quiesced, before the
    // image is written; continue fires after.
    tracer.assert_order("app.self.checkpoint", "opal.notify.complete");
    tracer.assert_order("opal.crs.checkpoint", "app.self.continue");
    // The quiesce completes before the image is captured.
    tracer.assert_order("ompi.crcp.quiesced", "opal.crs.checkpoint");
    // Resume side: CRCP resume happens after the CRS ran.
    tracer.assert_order("opal.crs.checkpoint", "ompi.crcp.resume");

    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}

#[test]
fn full_layer_enter_exit_palindrome() {
    let rt = test_runtime("fig2b", 1);
    let job = mpirun(&rt, Arc::new(CallbackApp), RunConfig::new(1)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    rt.tracer().clear();
    job.checkpoint(&CheckpointOptions::tool()).unwrap();
    let phases = rt.tracer().phases();

    // Extract the inc enter/exit events of one process.
    let incs: Vec<&str> = phases
        .iter()
        .map(String::as_str)
        .filter(|p| p.ends_with(".inc.enter") || p.ends_with(".inc.exit"))
        .collect();
    assert_eq!(
        incs,
        vec![
            "ompi.inc.enter",
            "orte.inc.enter",
            "opal.inc.enter",
            "opal.inc.exit",
            "orte.inc.exit",
            "ompi.inc.exit",
        ],
        "full trace:\n{}",
        rt.tracer().render()
    );

    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}
