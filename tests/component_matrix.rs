//! Experiment E5: the modularity claim. Every CRS × CRCP × SNAPC × FILEM
//! combination is selected purely through MCA parameters — no recompilation,
//! no code changes — and each combination checkpoint/restarts the same
//! application to the same answer.

use std::sync::Arc;

use cr_core::request::CheckpointOptions;
use mca::McaParams;
use ompi::app::RunEnd;
use ompi::{mpirun, restart, RestartOptions, RunConfig};
use ompi_cr::test_runtime;
use workloads::ring::{reference_checksums, RingApp};

const NPROCS: u32 = 4;
const ROUNDS: u64 = 20_000;

fn run_combination(crs: &str, crcp: &str, snapc: &str, filem: &str) {
    let tag = format!("matrix_{crs}_{crcp}_{snapc}_{filem}");
    let rt = test_runtime(&tag, 2);
    let app = Arc::new(RingApp { rounds: ROUNDS });

    let params = Arc::new(McaParams::new());
    params.set("crs", crs);
    params.set("crcp", crcp);
    params.set("snapc", snapc);
    params.set("filem", filem);

    let job = mpirun(
        &rt,
        Arc::clone(&app),
        RunConfig {
            nprocs: NPROCS,
            params,
        },
    )
    .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap_or_else(|e| panic!("checkpoint with {tag} failed: {e}"));
    job.wait().unwrap();
    // filem=replica commits to peer memory and drains to stable storage
    // behind the job's back; the fresh-host restart below reads stable
    // files, so join the drain first (no-op for the other components).
    rt.drain_writebehind();

    // Restart on a *different* cluster shape (3 nodes instead of 2): the
    // snapshot reference alone must be enough.
    let rt2 = test_runtime(&format!("{tag}_restart"), 3);
    let job =
        restart(&rt2, Arc::clone(&app), &outcome.global_snapshot, RestartOptions::default())
            .unwrap_or_else(|e| panic!("restart with {tag} failed: {e}"));
    let results = job.wait().unwrap();

    let expected = reference_checksums(u64::from(NPROCS), ROUNDS);
    for (r, (state, end)) in results.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed, "{tag} rank {r}");
        assert_eq!(state.round, ROUNDS, "{tag} rank {r}");
        assert_eq!(state.checksum, expected[r], "{tag} rank {r} checksum");
    }
    rt.shutdown();
    rt2.shutdown();
}

// The full matrix, one test per combination so failures localize.
// CRS: blcr_sim | self; CRCP: coord | logger; SNAPC: full | direct;
// FILEM: rsh_sim | oob_stream | replica (FILEM only matters under
// snapc=full).

#[test]
fn blcr_coord_full_rsh() {
    run_combination("blcr_sim", "coord", "full", "rsh_sim");
}

#[test]
fn blcr_coord_full_replica() {
    run_combination("blcr_sim", "coord", "full", "replica");
}

#[test]
fn blcr_coord_full_oobstream() {
    run_combination("blcr_sim", "coord", "full", "oob_stream");
}

#[test]
fn blcr_coord_direct() {
    run_combination("blcr_sim", "coord", "direct", "rsh_sim");
}

#[test]
fn blcr_logger_full_rsh() {
    run_combination("blcr_sim", "logger", "full", "rsh_sim");
}

#[test]
fn blcr_logger_direct() {
    run_combination("blcr_sim", "logger", "direct", "rsh_sim");
}

#[test]
fn self_coord_full_rsh() {
    run_combination("self", "coord", "full", "rsh_sim");
}

#[test]
fn self_coord_full_oobstream() {
    run_combination("self", "coord", "full", "oob_stream");
}

#[test]
fn self_logger_full_replica() {
    run_combination("self", "logger", "full", "replica");
}

#[test]
fn self_coord_direct() {
    run_combination("self", "coord", "direct", "rsh_sim");
}

#[test]
fn self_logger_full_rsh() {
    run_combination("self", "logger", "full", "rsh_sim");
}

#[test]
fn self_logger_direct() {
    run_combination("self", "logger", "direct", "rsh_sim");
}

#[test]
fn crs_none_refuses_whole_job_checkpoint() {
    let rt = test_runtime("matrix_none", 1);
    let params = Arc::new(McaParams::new());
    params.set("crs", "none");
    let app = Arc::new(RingApp { rounds: 100_000 });
    let job = mpirun(
        &rt,
        app,
        RunConfig {
            nprocs: 2,
            params,
        },
    )
    .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    let err = job.checkpoint(&CheckpointOptions::tool()).unwrap_err();
    assert!(matches!(err, cr_core::CrError::NotCheckpointable { .. }));
    // The job is unharmed: it still terminates cleanly.
    job.request_terminate();
    job.wait().unwrap();
    rt.shutdown();
}

#[test]
fn blcr_coord_tree_rsh() {
    run_combination("blcr_sim", "coord", "tree", "rsh_sim");
}

#[test]
fn self_logger_tree_oobstream() {
    run_combination("self", "logger", "tree", "oob_stream");
}
