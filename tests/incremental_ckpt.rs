//! Tentpole acceptance for chunk-level incremental checkpointing: delta
//! intervals record base→delta chain links at commit, restart replays the
//! chain from peer memory or stable storage back into the byte-identical
//! full image, retirement refuses to drop a base a live chain still
//! references, and a tampered delta chunk fails restart loudly through
//! the manifest digest check.

use std::sync::Arc;
use std::time::Duration;

use cr_core::inc::LayerInc;
use cr_core::request::CheckpointOptions;
use cr_core::{GlobalSnapshot, Rank};
use mca::McaParams;
use ompi::{mpirun, restart, RestartOptions, RestartSource, RunConfig};
use ompi_cr::{scratch_dir, test_runtime};
use opal::crs::{crs_framework, SelfCallbacks};
use orte::job::{launch, JobSpec, LaunchCtx};
use parking_lot::Mutex;
use proptest::prelude::*;
use workloads::ring::RingApp;

/// Every test spins a multi-rank job; running them concurrently on a
/// small host starves the spinning ranks until OOB replies time out.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

type SharedState = Arc<Vec<Mutex<Vec<u8>>>>;

const STATE_BYTES: usize = 32 * 1024;

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

fn fresh_state(nprocs: u32, seed: &mut u64) -> SharedState {
    Arc::new(
        (0..nprocs)
            .map(|_| Mutex::new((0..STATE_BYTES).map(|_| lcg(seed) as u8).collect()))
            .collect(),
    )
}

fn incr_params(chunk_kb: u32, full_every: u64) -> Arc<McaParams> {
    let params = Arc::new(McaParams::new());
    params.set("filem", "replica");
    params.set("filem_replica_factor", "1");
    params.set("crs_incr_enabled", "true");
    params.set("crs_incr_chunk_kb", &chunk_kb.to_string());
    params.set("crs_incr_full_every", &full_every.to_string());
    params
}

/// Spinning checkpointable job whose `app` capture section serves the
/// shared per-rank buffers (orte-level; no PML, so sections are exactly
/// the buffers and byte comparisons are direct).
fn launch_state_job(
    rt: &orte::Runtime,
    nprocs: u32,
    state: &SharedState,
    params: Arc<McaParams>,
) -> orte::JobHandle {
    let proc_state = Arc::clone(state);
    let proc_main: orte::job::ProcMain = Arc::new(move |ctx: LaunchCtx| {
        let fw = crs_framework(SelfCallbacks::new());
        ctx.container
            .set_crs(Arc::from(fw.select(&ctx.params).unwrap()));
        let rank = ctx.name.rank.index();
        let st = Arc::clone(&proc_state);
        ctx.container
            .register_capture("app", Arc::new(move || Ok(st[rank].lock().clone())));
        ctx.container
            .install_opal_inc(LayerInc::new("opal", ctx.runtime.tracer().clone()));
        ctx.container.enable_checkpointing();
        while !ctx.terminate.load(std::sync::atomic::Ordering::SeqCst) {
            ctx.container.gate().checkpoint_point();
            std::thread::yield_now();
        }
        ctx.container.gate().retire();
    });
    let handle = launch(rt, JobSpec::new(nprocs, params, proc_main)).unwrap();
    for r in 0..nprocs {
        while handle.container(Rank(r)).crs().is_none() {
            std::thread::yield_now();
        }
    }
    handle
}

/// Mutate 1–4 random ranges of every rank's buffer.
fn mutate_state(state: &SharedState, seed: &mut u64) {
    for cell in state.iter() {
        let mut buf = cell.lock();
        for _ in 0..(1 + lcg(seed) as usize % 4) {
            let len = 1 + lcg(seed) as usize % 4096;
            let start = lcg(seed) as usize % (STATE_BYTES - len);
            for b in &mut buf[start..start + len] {
                *b = b.wrapping_add(1 + (*seed >> 7) as u8);
            }
        }
    }
}

/// Reassemble rank `rank` at `interval` from the recorded chain, pulling
/// each link's local snapshot through `open_link`.
fn reassemble_via(
    global: &GlobalSnapshot,
    interval: u64,
    rank: Rank,
    mut open_link: impl FnMut(u64) -> cr_core::LocalSnapshot,
) -> Vec<u8> {
    let chain = global.ckpt_chain(interval, rank).unwrap();
    let locals: Vec<cr_core::LocalSnapshot> = chain.iter().map(|ci| open_link(*ci)).collect();
    let image = if locals.len() == 1 {
        opal::incr::read_full_image(&locals[0]).unwrap()
    } else {
        opal::incr::reassemble(&locals).unwrap()
    };
    image.require_section("app").unwrap().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 3,
        max_shrink_iters: 0, // each case is a full multi-interval job
        .. ProptestConfig::default()
    })]

    /// For any random section-mutation sequence, replaying base + delta
    /// chain — from stable storage AND from peer-memory replicas — is
    /// byte-identical to the state a full checkpoint captured at the same
    /// interval.
    #[test]
    fn chain_replay_matches_full_state(seed in any::<u64>()) {
        let _serial = serial();
        let mut rng = seed;
        let nprocs = 2u32;
        let intervals = 4u64;
        let tag = format!("incr_prop_{seed:x}");
        let rt = test_runtime(&tag, 2);
        let state = fresh_state(nprocs, &mut rng);
        let handle = launch_state_job(&rt, nprocs, &state, incr_params(1, 16));

        // Checkpoint, mutate, checkpoint, ... recording the exact state
        // every interval captured.
        let mut expected: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut snapshot_path = None;
        for i in 0..intervals {
            if i > 0 {
                mutate_state(&state, &mut rng);
            }
            let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
            prop_assert_eq!(outcome.interval, i);
            snapshot_path = Some(outcome.global_snapshot);
            expected.push(state.iter().map(|c| c.lock().clone()).collect());
        }
        handle.request_terminate();
        handle.join().unwrap();
        rt.drain_writebehind();

        let global = GlobalSnapshot::open(&snapshot_path.unwrap()).unwrap();
        let job_id = global.job();
        // The schedule produced real deltas, not disguised fulls.
        prop_assert_eq!(global.ckpt_kind(intervals - 1, Rank(0)), "delta");

        for i in 0..intervals {
            for r in 0..nprocs {
                let rank = Rank(r);
                let want = &expected[i as usize][r as usize];

                // Stable-storage chain replay.
                let got = reassemble_via(&global, i, rank, |ci| {
                    global.local_snapshot(ci, rank).unwrap()
                });
                prop_assert_eq!(&got, want, "stable chain, interval {}, rank {}", i, r);

                // Peer-memory chain replay: fetch every link's replica
                // image into a scratch dir and replay from there.
                let scratch = scratch_dir(&format!("{tag}_replica_{i}_{r}"));
                let got = reassemble_via(&global, i, rank, |ci| {
                    let holders = global.replica_holders(ci, rank);
                    let (image, _) =
                        orte::replica::fetch_image(&rt, job_id, ci, rank, &holders)
                            .expect("replica image held");
                    let dest = scratch.join(format!("link_{ci}"));
                    image.write_to(&dest).unwrap();
                    cr_core::LocalSnapshot::open(&dest).unwrap()
                });
                prop_assert_eq!(&got, want, "replica chain, interval {}, rank {}", i, r);
            }
        }
        rt.shutdown();
    }
}

/// End-to-end `ompi-restart` over a delta interval, from both sources:
/// the restart machinery walks the chain, fetches every link, reassembles,
/// and relaunches a job that runs to completion.
#[test]
fn incremental_restart_end_to_end_both_sources() {
    let _serial = serial();
    let rt = test_runtime("incr_e2e", 4);
    let app = Arc::new(RingApp { rounds: 1_000_000 });
    let job = mpirun(
        &rt,
        Arc::clone(&app),
        RunConfig {
            nprocs: 4,
            params: incr_params(1, 16),
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    job.checkpoint(&CheckpointOptions::tool()).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    job.wait().unwrap();
    assert_eq!(outcome.interval, 1);

    let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
    assert_eq!(global.ckpt_kind(1, Rank(0)), "delta");
    assert_eq!(global.ckpt_chain(1, Rank(0)).unwrap(), vec![0, 1]);

    // Replica source: both chain links come from daemon peer memory.
    rt.tracer().clear();
    let restarted = restart(
        &rt,
        Arc::clone(&app),
        &outcome.global_snapshot,
        RestartOptions::default()
            .at_interval(1)
            .with_source(RestartSource::Replica),
    )
    .unwrap();
    restarted.handle().request_terminate();
    assert_eq!(restarted.wait().unwrap().len(), 4);
    assert!(rt.tracer().count_prefix("filem.replica.preload") > 0);
    assert_eq!(rt.tracer().count_prefix("filem.preload"), 0);

    // Stable source: both links come from the drained global snapshot.
    rt.drain_writebehind();
    rt.tracer().clear();
    let restarted = restart(
        &rt,
        Arc::clone(&app),
        &outcome.global_snapshot,
        RestartOptions::default()
            .at_interval(1)
            .with_source(RestartSource::Stable),
    )
    .unwrap();
    restarted.handle().request_terminate();
    assert_eq!(restarted.wait().unwrap().len(), 4);
    assert_eq!(rt.tracer().count_prefix("filem.replica.preload"), 0);
    assert!(rt.tracer().count_prefix("filem.preload") > 0);
    rt.shutdown();
}

/// Retiring a base (or mid-chain link) that a live delta chain still
/// references must refuse; newest-first retirement unwinds cleanly.
#[test]
fn retiring_referenced_base_is_refused() {
    let _serial = serial();
    let mut rng = 7u64;
    let rt = test_runtime("incr_retire", 2);
    let state = fresh_state(2, &mut rng);
    let handle = launch_state_job(&rt, 2, &state, incr_params(1, 16));
    let mut snapshot_path = None;
    for i in 0..3u64 {
        if i > 0 {
            mutate_state(&state, &mut rng);
        }
        let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        snapshot_path = Some(outcome.global_snapshot);
    }
    handle.request_terminate();
    handle.join().unwrap();
    rt.drain_writebehind();

    let mut global = GlobalSnapshot::open(&snapshot_path.unwrap()).unwrap();
    assert_eq!(global.ckpt_chain(2, Rank(0)).unwrap(), vec![0, 1, 2]);

    let err = global.retire_interval(0).unwrap_err();
    assert!(err.to_string().contains("delta chain"), "{err}");
    let err = global.retire_interval(1).unwrap_err();
    assert!(err.to_string().contains("depends on it"), "{err}");
    assert_eq!(global.intervals(), vec![0, 1, 2]);

    global.retire_interval(2).unwrap();
    global.retire_interval(1).unwrap();
    global.retire_interval(0).unwrap();
    assert!(global.intervals().is_empty());
    rt.shutdown();
}

/// A corrupted delta chunk on stable storage must fail the restart loudly
/// through the chunk-manifest digest check — never restore silently-wrong
/// bytes.
#[test]
fn tampered_delta_chunk_fails_restart_loudly() {
    let _serial = serial();
    let mut rng = 11u64;
    let rt = test_runtime("incr_tamper", 2);
    let state = fresh_state(2, &mut rng);
    let handle = launch_state_job(&rt, 2, &state, incr_params(1, 16));
    handle.checkpoint(&CheckpointOptions::tool()).unwrap();
    mutate_state(&state, &mut rng);
    let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
    handle.request_terminate();
    handle.join().unwrap();
    rt.drain_writebehind();
    assert_eq!(outcome.interval, 1);

    // Flip the bytes of the first dirty chunk of rank 0's delta context
    // on stable storage (a well-framed write, so this models corruption
    // the transport checksum cannot see).
    let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
    assert_eq!(global.ckpt_kind(1, Rank(0)), "delta");
    let local = global.local_snapshot(1, Rank(0)).unwrap();
    let mut delta: opal::incr::DeltaContext =
        codec::from_bytes(&local.read_context().unwrap()).unwrap();
    let chunk = delta
        .sections
        .iter_mut()
        .flat_map(|s| s.chunks.iter_mut())
        .next()
        .expect("the mutated interval has at least one dirty chunk");
    for b in &mut chunk.1 {
        *b ^= 0xA5;
    }
    local.write_context(&codec::to_bytes(&delta).unwrap()).unwrap();

    let err = reassemble_err(&global);
    assert!(
        err.to_string().contains("manifest verification"),
        "corruption must surface as a manifest failure, got: {err}"
    );
    rt.shutdown();
}

/// Replay interval 1's stable chain and return the error it must produce.
fn reassemble_err(global: &GlobalSnapshot) -> cr_core::CrError {
    let chain = global.ckpt_chain(1, Rank(0)).unwrap();
    let locals: Vec<cr_core::LocalSnapshot> = chain
        .iter()
        .map(|ci| global.local_snapshot(*ci, Rank(0)).unwrap())
        .collect();
    opal::incr::reassemble(&locals).expect_err("tampered chain must not reassemble")
}
