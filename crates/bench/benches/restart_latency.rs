//! Restart latency: peer-memory replicas vs stable storage.
//!
//! The replica FILEM component commits checkpoints to peer daemon memory
//! and drains to disk behind the job's back, so a restart can usually be
//! served without touching stable storage at all. This bench restarts the
//! same checkpointed job twice — `--source replica` and `--source stable`
//! — and reports both the wall-clock restart time and the deterministic
//! simulated wire cost of each image-materialization path. The simulated
//! comparison is asserted: memory must be strictly cheaper than disk.
//!
//! `RESTART_LATENCY_SMOKE=1` (used by `scripts/check.sh`) runs one timed
//! restart per source instead of the full criterion sampling.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cr_core::{GlobalSnapshot, Rank};
use criterion::{criterion_group, criterion_main, Criterion};
use mca::McaParams;
use netsim::{LinkSpec, NodeId, SimTime, Topology};
use ompi::{mpirun, restart, RestartOptions, RestartSource, RunConfig};
use orte::filem::CopyRequest;
use orte::Runtime;
use workloads::ring::RingApp;

const NODES: u32 = 4;
const NPROCS: u32 = 4;

/// Launch a ring job with the replica file mover, checkpoint it, let it
/// terminate, and hand back the runtime (daemons — and their replica
/// stores — stay up) plus the global snapshot reference.
fn checkpointed(base: &std::path::Path) -> (Runtime, std::path::PathBuf) {
    let rt = Runtime::new(Topology::uniform(NODES, LinkSpec::gigabit_ethernet()), base)
        .expect("runtime");
    let params = Arc::new(McaParams::new());
    params.set("filem", "replica");
    params.set("filem_replica_factor", "1");
    let job = mpirun(
        &rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        RunConfig {
            nprocs: NPROCS,
            params,
        },
    )
    .expect("launch");
    std::thread::sleep(Duration::from_millis(30));
    let outcome = job
        .handle()
        .checkpoint(&cr_core::request::CheckpointOptions::tool().and_terminate())
        .expect("checkpoint");
    job.wait().expect("wait");
    // Make stable storage complete so the disk path has everything.
    rt.drain_writebehind();
    (rt, outcome.global_snapshot)
}

/// One full restart from `source`, terminated as soon as it is up.
fn restart_once(rt: &Runtime, snapshot: &std::path::Path, source: RestartSource) -> Duration {
    let start = Instant::now();
    let job = restart(
        rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        snapshot,
        RestartOptions::default().with_source(source),
    )
    .expect("restart");
    let up = start.elapsed();
    job.handle().request_terminate();
    job.wait().expect("wait restarted");
    up
}

/// Deterministic simulated wire cost of pulling every rank's image from
/// peer memory.
fn memory_sim_cost(rt: &Runtime, global: &GlobalSnapshot, interval: u64) -> SimTime {
    let mut total = SimTime::ZERO;
    for r in 0..global.nprocs() {
        let rank = Rank(r);
        let holders = global.replica_holders(interval, rank);
        let (_, cost) = orte::replica::fetch_image(rt, global.job(), interval, rank, &holders)
            .expect("replica image");
        total += cost;
    }
    total
}

/// Deterministic simulated wire cost of the stable-storage preload
/// broadcast for every rank (same file mover the restart would select).
fn disk_sim_cost(
    rt: &Runtime,
    global: &GlobalSnapshot,
    interval: u64,
    scratch: &std::path::Path,
) -> SimTime {
    let params = McaParams::from_dump(
        global
            .launch_params()
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str())),
    );
    let filem = orte::filem::filem_framework()
        .select(&params)
        .expect("filem");
    let mut batch = Vec::new();
    for r in 0..global.nprocs() {
        let local = global.local_snapshot(interval, Rank(r)).expect("stable copy");
        batch.push(CopyRequest {
            src: local.dir().to_path_buf(),
            src_node: NodeId(0),
            dest: scratch.join(format!("rank_{r}")),
            dest_node: NodeId(r % NODES),
        });
    }
    let report = filem.copy_all(rt.netview(), &batch).expect("preload");
    for req in &batch {
        filem.remove_tree(&req.dest).expect("cleanup");
    }
    report.serialized_cost
}

fn restart_latency(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("bench_restart_latency_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let (rt, snapshot) = checkpointed(&base);

    let global = GlobalSnapshot::open(&snapshot).expect("open global");
    let interval = global.latest_interval().expect("committed interval");
    let mem_sim = memory_sim_cost(&rt, &global, interval);
    let disk_sim = disk_sim_cost(&rt, &global, interval, &base.join("disk_sim_scratch"));
    println!("restart sim cost: memory={mem_sim} disk={disk_sim}");
    assert!(
        mem_sim < disk_sim,
        "peer-memory restart must be strictly cheaper than stable storage \
         (memory={mem_sim}, disk={disk_sim})"
    );

    if std::env::var("RESTART_LATENCY_SMOKE").is_ok() {
        let mem = restart_once(&rt, &snapshot, RestartSource::Replica);
        let disk = restart_once(&rt, &snapshot, RestartSource::Stable);
        println!(
            "restart_latency smoke: memory={mem:?} disk={disk:?} (1 restart each)"
        );
        rt.shutdown();
        return;
    }

    let mut group = c.benchmark_group("restart_latency");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("memory", |b| {
        b.iter(|| restart_once(&rt, &snapshot, RestartSource::Replica))
    });
    group.bench_function("disk", |b| {
        b.iter(|| restart_once(&rt, &snapshot, RestartSource::Stable))
    });
    group.finish();
    rt.shutdown();
}

criterion_group!(benches, restart_latency);
criterion_main!(benches);
