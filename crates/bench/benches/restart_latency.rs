//! Restart latency: peer-memory replicas vs stable storage.
//!
//! The replica FILEM component commits checkpoints to peer daemon memory
//! and drains to disk behind the job's back, so a restart can usually be
//! served without touching stable storage at all. This bench restarts the
//! same checkpointed job twice — `--source replica` and `--source stable`
//! — and reports both the wall-clock restart time and the deterministic
//! simulated wire cost of each image-materialization path. The simulated
//! comparison is asserted: memory must be strictly cheaper than disk.
//!
//! `RESTART_LATENCY_SMOKE=1` (used by `scripts/check.sh`) runs one timed
//! restart per source instead of the full criterion sampling.
//!
//! `RESTART_PARTIAL_SMOKE=1` instead compares the simulated recovery
//! cost of a *partial* restart (1 failed rank: one image fetch plus one
//! launcher session) against a *full* restart (every rank re-fetched and
//! relaunched) at 4, 8, and 16 ranks, asserting partial is strictly
//! cheaper from 8 ranks up, and splices the rows into `BENCH_ckpt.json`
//! (`restart_partial` key) when `BENCH_CKPT_JSON` is set.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cr_core::{GlobalSnapshot, Rank};
use criterion::{criterion_group, criterion_main, Criterion};
use mca::McaParams;
use netsim::{LinkSpec, NodeId, SimTime, Topology};
use ompi::{mpirun, restart, RestartOptions, RestartSource, RunConfig};
use orte::filem::CopyRequest;
use orte::Runtime;
use workloads::ring::RingApp;

const NODES: u32 = 4;
const NPROCS: u32 = 4;

/// Launch a ring job with the replica file mover, checkpoint it, let it
/// terminate, and hand back the runtime (daemons — and their replica
/// stores — stay up) plus the global snapshot reference.
fn checkpointed(base: &std::path::Path) -> (Runtime, std::path::PathBuf) {
    let rt = Runtime::new(Topology::uniform(NODES, LinkSpec::gigabit_ethernet()), base)
        .expect("runtime");
    let params = Arc::new(McaParams::new());
    params.set("filem", "replica");
    params.set("filem_replica_factor", "1");
    let job = mpirun(
        &rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        RunConfig {
            nprocs: NPROCS,
            params,
        },
    )
    .expect("launch");
    std::thread::sleep(Duration::from_millis(30));
    let outcome = job
        .handle()
        .checkpoint(&cr_core::request::CheckpointOptions::tool().and_terminate())
        .expect("checkpoint");
    job.wait().expect("wait");
    // Make stable storage complete so the disk path has everything.
    rt.drain_writebehind();
    (rt, outcome.global_snapshot)
}

/// One full restart from `source`, terminated as soon as it is up.
fn restart_once(rt: &Runtime, snapshot: &std::path::Path, source: RestartSource) -> Duration {
    let start = Instant::now();
    let job = restart(
        rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        snapshot,
        RestartOptions::default().with_source(source),
    )
    .expect("restart");
    let up = start.elapsed();
    job.handle().request_terminate();
    job.wait().expect("wait restarted");
    up
}

/// Deterministic simulated wire cost of pulling every rank's image from
/// peer memory.
fn memory_sim_cost(rt: &Runtime, global: &GlobalSnapshot, interval: u64) -> SimTime {
    let mut total = SimTime::ZERO;
    for r in 0..global.nprocs() {
        let rank = Rank(r);
        let holders = global.replica_holders(interval, rank);
        let (_, cost) = orte::replica::fetch_image(rt, global.job(), interval, rank, &holders)
            .expect("replica image");
        total += cost;
    }
    total
}

/// Deterministic simulated wire cost of the stable-storage preload
/// broadcast for every rank (same file mover the restart would select).
fn disk_sim_cost(
    rt: &Runtime,
    global: &GlobalSnapshot,
    interval: u64,
    scratch: &std::path::Path,
) -> SimTime {
    let params = McaParams::from_dump(
        global
            .launch_params()
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str())),
    );
    let filem = orte::filem::filem_framework()
        .select(&params)
        .expect("filem");
    let mut batch = Vec::new();
    for r in 0..global.nprocs() {
        let local = global.local_snapshot(interval, Rank(r)).expect("stable copy");
        batch.push(CopyRequest {
            src: local.dir().to_path_buf(),
            src_node: NodeId(0),
            dest: scratch.join(format!("rank_{r}")),
            dest_node: NodeId(r % NODES),
        });
    }
    let report = filem.copy_all(rt.netview(), &batch).expect("preload");
    for req in &batch {
        filem.remove_tree(&req.dest).expect("cleanup");
    }
    report.serialized_cost
}

/// Simulated launcher-session cost per restarted process (the
/// `plm_rsh_sim_session_ms` default).
const SESSION: SimTime = SimTime::from_millis(150);

/// One `restart_partial` comparison row.
struct PartialRow {
    ranks: u32,
    partial_sim: SimTime,
    full_sim: SimTime,
}

/// Checkpoint an `n`-rank replica job and compare the simulated recovery
/// cost of restoring one failed rank (one image fetch + one launcher
/// session, the survivors stay live) against relaunching the whole job
/// (every image fetched, every rank a session).
fn partial_vs_full_once(base: &std::path::Path, n: u32) -> PartialRow {
    let rt = Runtime::new(Topology::uniform(n, LinkSpec::gigabit_ethernet()), base)
        .expect("runtime");
    let params = Arc::new(McaParams::new());
    params.set("filem", "replica");
    params.set("filem_replica_factor", "1");
    let job = mpirun(
        &rt,
        Arc::new(RingApp { rounds: 1_000_000 }),
        RunConfig { nprocs: n, params },
    )
    .expect("launch");
    std::thread::sleep(Duration::from_millis(30));
    let outcome = job
        .handle()
        .checkpoint(&cr_core::request::CheckpointOptions::tool().and_terminate())
        .expect("checkpoint");
    job.wait().expect("wait");
    rt.drain_writebehind();

    let global = GlobalSnapshot::open(&outcome.global_snapshot).expect("open global");
    let interval = global.latest_interval().expect("committed interval");

    let mut fetch = Vec::with_capacity(n as usize);
    for r in 0..n {
        let rank = Rank(r);
        let holders = global.replica_holders(interval, rank);
        let (_, cost) = orte::replica::fetch_image(&rt, global.job(), interval, rank, &holders)
            .expect("replica image");
        fetch.push(cost);
    }
    let full_sim = fetch.iter().copied().sum::<SimTime>() + SESSION * n as u64;
    // Rank n-1 fails: its image plus one launcher session on the spare.
    let partial_sim = fetch[(n - 1) as usize] + SESSION;
    rt.shutdown();
    PartialRow { ranks: n, partial_sim, full_sim }
}

/// Splice the `restart_partial` rows into `BENCH_ckpt.json` (created by
/// the `ckpt_incremental` smoke earlier in `scripts/check.sh`), or write
/// a standalone document when the file does not exist yet.
fn splice_partial_json(path: &str, rows: &[PartialRow]) {
    let mut body = String::from("  \"restart_partial\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"ranks\": {}, \"failed\": 1, \"partial_sim_ns\": {}, \
             \"full_sim_ns\": {}, \"speedup\": {:.4}}}{}\n",
            row.ranks,
            row.partial_sim.as_nanos(),
            row.full_sim.as_nanos(),
            row.full_sim.as_nanos() as f64 / row.partial_sim.as_nanos().max(1) as f64,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]");
    let json = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let without_close = trimmed
                .strip_suffix('}')
                .map(|s| s.trim_end().to_string())
                .unwrap_or_else(|| trimmed.to_string());
            format!("{without_close},\n{body}\n}}\n")
        }
        Err(_) => format!("{{\n{body}\n}}\n"),
    };
    std::fs::write(path, json).expect("write BENCH_ckpt.json");
    println!("restart_latency: spliced restart_partial into {path}");
}

fn partial_smoke(base: &std::path::Path) {
    let mut rows = Vec::new();
    for n in [4u32, 8, 16] {
        let row = partial_vs_full_once(&base.join(format!("pvf_{n}")), n);
        println!(
            "restart_partial: ranks={} partial={} full={} ({:.2}x)",
            row.ranks,
            row.partial_sim,
            row.full_sim,
            row.full_sim.as_nanos() as f64 / row.partial_sim.as_nanos().max(1) as f64
        );
        if n >= 8 {
            assert!(
                row.partial_sim < row.full_sim,
                "partial restart of 1/{n} ranks must be strictly cheaper than a \
                 full relaunch (partial={}, full={})",
                row.partial_sim,
                row.full_sim
            );
        }
        rows.push(row);
    }
    if let Ok(path) = std::env::var("BENCH_CKPT_JSON") {
        splice_partial_json(&path, &rows);
    }
}

fn restart_latency(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("bench_restart_latency_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    if std::env::var("RESTART_PARTIAL_SMOKE").is_ok() {
        partial_smoke(&base);
        return;
    }

    let (rt, snapshot) = checkpointed(&base);

    let global = GlobalSnapshot::open(&snapshot).expect("open global");
    let interval = global.latest_interval().expect("committed interval");
    let mem_sim = memory_sim_cost(&rt, &global, interval);
    let disk_sim = disk_sim_cost(&rt, &global, interval, &base.join("disk_sim_scratch"));
    println!("restart sim cost: memory={mem_sim} disk={disk_sim}");
    assert!(
        mem_sim < disk_sim,
        "peer-memory restart must be strictly cheaper than stable storage \
         (memory={mem_sim}, disk={disk_sim})"
    );

    if std::env::var("RESTART_LATENCY_SMOKE").is_ok() {
        let mem = restart_once(&rt, &snapshot, RestartSource::Replica);
        let disk = restart_once(&rt, &snapshot, RestartSource::Stable);
        println!(
            "restart_latency smoke: memory={mem:?} disk={disk:?} (1 restart each)"
        );
        rt.shutdown();
        return;
    }

    let mut group = c.benchmark_group("restart_latency");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("memory", |b| {
        b.iter(|| restart_once(&rt, &snapshot, RestartSource::Replica))
    });
    group.bench_function("disk", |b| {
        b.iter(|| restart_once(&rt, &snapshot, RestartSource::Stable))
    });
    group.finish();
    rt.shutdown();
}

criterion_group!(benches, restart_latency);
criterion_main!(benches);
