//! Ablation A11: FT journal append overhead.
//!
//! The hash-chained journal sits on the hot path of every `Tracer::record`
//! once `journal_enabled` is on, so its append cost is a tier-1 ratchet:
//!
//! * **Append cost**: the amortized wall-clock cost of one journaled
//!   `record` (hash chain + codec framing + buffered write) must stay
//!   under 40 µs/event — two orders of magnitude of headroom over the
//!   measured cost, so only a real regression (an fsync or O(n) rescan
//!   sneaking onto the append path) trips it.
//! * **Entry size**: the on-disk framing must stay under 1 KiB/event for
//!   typical phases, keeping a full checkpointed run's journal in the
//!   tens of kilobytes.
//!
//! A real 4-rank early-release checkpointed run then proves the journal
//! the runtime writes is chain-intact and model-conformant material (the
//! conformance replay itself runs in `scripts/check.sh` via `cr-replay`).
//!
//! `JOURNAL_SMOKE=1` (used by `scripts/check.sh`) skips criterion
//! sampling after the assertions. When `BENCH_JOURNAL_JSON` names a
//! path, the measurements are written there as JSON (`BENCH_journal.json`).
//! `JOURNAL_SMOKE_DIR` pins the scratch directory so the run journal
//! lands at `<dir>/run/journal/ft.jrnl` for `cr-replay` to verify and
//! replay afterwards (default: a per-pid temp directory).

use std::sync::Arc;
use std::time::{Duration, Instant};

use cr_core::inc::LayerInc;
use cr_core::request::CheckpointOptions;
use cr_core::Tracer;
use criterion::{criterion_group, criterion_main, Criterion};
use mca::McaParams;
use netsim::{LinkSpec, Topology};
use opal::crs::{crs_framework, SelfCallbacks};
use orte::job::{launch, JobSpec, LaunchCtx};
use orte::Runtime;

const MICRO_EVENTS: u64 = 10_000;
const MAX_APPEND_NS_PER_EVENT: u64 = 40_000;
const MAX_BYTES_PER_EVENT: u64 = 1024;

/// Measure the amortized journaled-record cost over `MICRO_EVENTS`
/// appends with a representative phase/detail mix. Returns
/// (ns/event, bytes/event).
fn micro_append(dir: &std::path::Path) -> (u64, u64) {
    std::fs::create_dir_all(dir).expect("bench dir");
    let path = dir.join(journal::FILE_NAME);
    let sink = Arc::new(journal::JournalSink::open(&path, 0).expect("open journal"));
    let tracer = Tracer::new();
    tracer.set_sink(Arc::clone(&sink) as Arc<dyn cr_core::trace::TraceSink>);
    let ranked = tracer.with_actor("rank3");

    let start = Instant::now();
    for i in 0..MICRO_EVENTS {
        // Alternate bare and attributed records, like a real run does.
        if i % 2 == 0 {
            tracer.record("snapc.global.request", "interval 0 source tool");
        } else {
            ranked.record("ompi.crcp.quiesced", "rank 3 drained 2 peers");
        }
    }
    sink.flush().expect("flush");
    let elapsed = start.elapsed().as_nanos() as u64;

    let (entries, bytes) = sink.stats();
    assert_eq!(entries, MICRO_EVENTS, "every record must reach the journal");
    assert_eq!(sink.append_errors(), 0);
    let report = journal::verify(&path).expect("verify");
    assert!(report.ok(), "micro journal chain broken: {}", report.render());

    (elapsed / MICRO_EVENTS, bytes / entries)
}

/// A real 4-rank early-release checkpointed run with the journal on.
/// Returns (entries, bytes) of the runtime-written journal after
/// verifying the chain.
fn checkpointed_run(base: &std::path::Path) -> (u64, u64) {
    let rt = Runtime::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()), base)
        .expect("runtime");
    let params = Arc::new(McaParams::new());
    params.set("snapc_early_release", "true");
    let proc_main: orte::job::ProcMain = Arc::new(move |ctx: LaunchCtx| {
        let fw = crs_framework(SelfCallbacks::new());
        ctx.container
            .set_crs(Arc::from(fw.select(&ctx.params).unwrap()));
        let rank = ctx.name.rank.index() as u8;
        ctx.container.register_capture(
            "app",
            Arc::new(move || Ok(vec![rank.wrapping_mul(17); 4 << 10])),
        );
        ctx.container
            .install_opal_inc(LayerInc::new("opal", ctx.runtime.tracer().clone()));
        ctx.container.enable_checkpointing();
        while !ctx.terminate.load(std::sync::atomic::Ordering::SeqCst) {
            ctx.container.gate().checkpoint_point();
            std::thread::yield_now();
        }
        ctx.container.gate().retire();
    });
    let handle = launch(&rt, JobSpec::new(4, params, proc_main)).expect("launch");
    for r in 0..4 {
        while handle.container(cr_core::Rank(r)).crs().is_none() {
            std::thread::yield_now();
        }
    }
    handle
        .checkpoint(&CheckpointOptions::tool())
        .expect("checkpoint");
    handle.request_terminate();
    handle.join().expect("join");
    rt.drain_writebehind();
    let path = rt.journal_path().expect("journal on by default");
    rt.shutdown();

    let report = journal::verify(&path).expect("verify");
    assert!(report.ok(), "run journal chain broken: {}", report.render());
    assert!(
        report.entries > 0,
        "a checkpointed run must journal its coordination events"
    );
    let bytes = std::fs::metadata(&path).expect("journal metadata").len();
    (report.entries as u64, bytes)
}

fn write_json(path: &str, append_ns: u64, bytes_per_event: u64, run: (u64, u64)) {
    let json = format!(
        "{{\n  \"micro_events\": {},\n  \"append_ns_per_event\": {},\n  \
         \"bytes_per_event\": {},\n  \
         \"run\": {{ \"entries\": {}, \"bytes\": {} }},\n  \
         \"max_append_ns_per_event\": {},\n  \"max_bytes_per_event\": {}\n}}\n",
        MICRO_EVENTS,
        append_ns,
        bytes_per_event,
        run.0,
        run.1,
        MAX_APPEND_NS_PER_EVENT,
        MAX_BYTES_PER_EVENT,
    );
    std::fs::write(path, json).expect("write BENCH_journal.json");
    println!("journal_append: wrote {path}");
}

fn journal_append(c: &mut Criterion) {
    let base = std::env::var("JOURNAL_SMOKE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("bench_journal_{}", std::process::id()))
        });
    let _ = std::fs::remove_dir_all(&base);

    let (append_ns, bytes_per_event) = micro_append(&base.join("micro"));
    let run = checkpointed_run(&base.join("run"));

    println!(
        "journal_append: {append_ns} ns/event, {bytes_per_event} bytes/event \
         (run journal: {} entries, {} bytes)",
        run.0, run.1
    );
    assert!(
        append_ns < MAX_APPEND_NS_PER_EVENT,
        "journal append cost regressed: {append_ns} ns/event >= {MAX_APPEND_NS_PER_EVENT}"
    );
    assert!(
        bytes_per_event < MAX_BYTES_PER_EVENT,
        "journal entry size regressed: {bytes_per_event} bytes/event >= {MAX_BYTES_PER_EVENT}"
    );

    if let Ok(path) = std::env::var("BENCH_JOURNAL_JSON") {
        write_json(&path, append_ns, bytes_per_event, run);
    }

    if std::env::var("JOURNAL_SMOKE").is_ok() {
        println!("journal_append smoke: assertions passed (criterion sampling skipped)");
        return;
    }

    let mut group = c.benchmark_group("journal_append");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("append_10k", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            micro_append(&base.join(format!("criterion_{round}")))
        })
    });
    group.finish();
}

criterion_group!(benches, journal_append);
criterion_main!(benches);
