//! Ablation A4: cost of the coordinated protocol's channel drain as a
//! function of in-flight traffic at checkpoint time. The bookmark
//! exchange itself is O(peers); the drain is O(in-flight messages).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cr_core::Tracer;
use netsim::{Fabric, LinkSpec, NodeId, Topology};
use ompi::crcp::{CoordCrcp, CrcpComponent};
use ompi::pml::PmlShared;
use opal::SafePointGate;

fn mesh(n: u32) -> Vec<Arc<PmlShared>> {
    let fabric = Fabric::new(Topology::uniform(1, LinkSpec::gigabit_ethernet()));
    let endpoints: Vec<_> = (0..n).map(|_| fabric.register(NodeId(0))).collect();
    let ids: Vec<_> = endpoints.iter().map(|e| e.id()).collect();
    endpoints
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            PmlShared::new(
                i as u32,
                n,
                ep,
                ids.clone(),
                Arc::new(SafePointGate::new()),
                Tracer::new(),
            )
        })
        .collect()
}

fn drain_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("coord_drain_vs_in_flight");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &in_flight in &[0usize, 64, 1024, 8192] {
        group.bench_with_input(
            BenchmarkId::from_parameter(in_flight),
            &in_flight,
            |b, &in_flight| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let pmls = mesh(2);
                        let payload = vec![0u8; 256];
                        for _ in 0..in_flight {
                            pmls[0].send(0, 1, 1, &payload).unwrap();
                        }
                        let start = Instant::now();
                        let a = Arc::clone(&pmls[0]);
                        let b2 = Arc::clone(&pmls[1]);
                        let ta = std::thread::spawn(move || {
                            CoordCrcp::new(Tracer::new()).coordinate(&a).unwrap()
                        });
                        let tb = std::thread::spawn(move || {
                            CoordCrcp::new(Tracer::new()).coordinate(&b2).unwrap()
                        });
                        ta.join().unwrap();
                        tb.join().unwrap();
                        total += start.elapsed();
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, drain_cost);
criterion_main!(benches);
