//! Ablation A4: cost of the coordinated protocol's channel drain as a
//! function of in-flight traffic at checkpoint time. The bookmark
//! exchange itself is O(peers); the drain is O(in-flight messages).
//!
//! A second group prices the FILEM write-behind drain (scratch → stable)
//! at 1 vs 4 gather workers, reporting both the serialized wire cost and
//! the critical-path (wall clock over the pool) cost.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cr_core::Tracer;
use mca::McaParams;
use netsim::{Fabric, LinkSpec, NetView, NodeId, Topology};
use ompi::crcp::{CoordCrcp, CrcpComponent};
use ompi::pml::PmlShared;
use opal::SafePointGate;
use orte::filem::{copy_all_parallel, CopyRequest, RshSimFilem};

fn mesh(n: u32) -> Vec<Arc<PmlShared>> {
    let fabric = Fabric::new(Topology::uniform(1, LinkSpec::gigabit_ethernet()));
    let endpoints: Vec<_> = (0..n).map(|_| fabric.register(NodeId(0))).collect();
    let ids: Vec<_> = endpoints.iter().map(|e| e.id()).collect();
    endpoints
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            PmlShared::new(
                i as u32,
                n,
                ep,
                ids.clone(),
                Arc::new(SafePointGate::new()),
                Tracer::new(),
            )
        })
        .collect()
}

fn drain_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("coord_drain_vs_in_flight");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &in_flight in &[0usize, 64, 1024, 8192] {
        group.bench_with_input(
            BenchmarkId::from_parameter(in_flight),
            &in_flight,
            |b, &in_flight| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let pmls = mesh(2);
                        let payload = vec![0u8; 256];
                        for _ in 0..in_flight {
                            pmls[0].send(0, 1, 1, &payload).unwrap();
                        }
                        let start = Instant::now();
                        let a = Arc::clone(&pmls[0]);
                        let b2 = Arc::clone(&pmls[1]);
                        let ta = std::thread::spawn(move || {
                            CoordCrcp::new(Tracer::new()).coordinate(&a).unwrap()
                        });
                        let tb = std::thread::spawn(move || {
                            CoordCrcp::new(Tracer::new()).coordinate(&b2).unwrap()
                        });
                        ta.join().unwrap();
                        tb.join().unwrap();
                        total += start.elapsed();
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

/// FILEM write-behind drain: 8 per-rank scratch trees pulled to stable
/// storage over 1 vs 4 gather workers. Serialized cost is identical;
/// the worker pool only shortens the critical path.
fn filem_drain_cost(c: &mut Criterion) {
    let topo = Topology::uniform(4, LinkSpec::gigabit_ethernet());
    let net = NetView::uncontended(&topo);
    let filem = RshSimFilem::from_params(&McaParams::new());
    let base = std::env::temp_dir().join(format!("bench_filem_drain_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut batch = Vec::new();
    for r in 0..8u32 {
        let src = base.join(format!("scratch_rank{r}"));
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("ompi_context.bin"), vec![0xCD; 128 << 10]).unwrap();
        batch.push(CopyRequest {
            src,
            src_node: NodeId(r % 4),
            dest: base.join(format!("stable_rank{r}")),
            dest_node: NodeId(0),
        });
    }
    for &workers in &[1usize, 4] {
        let report = copy_all_parallel(&filem, net, &batch, workers).unwrap();
        println!(
            "filem drain workers={workers}: serialized={} critical_path={}",
            report.serialized_cost, report.critical_path_cost
        );
        assert!(report.critical_path_cost <= report.serialized_cost);
    }
    let mut group = c.benchmark_group("filem_drain_workers");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for &workers in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| b.iter(|| copy_all_parallel(&filem, net, &batch, workers).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, drain_cost, filem_drain_cost);
criterion_main!(benches);
