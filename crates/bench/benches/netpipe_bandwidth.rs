//! Experiment E2 (paper §7): NetPIPE bandwidth overhead — the paper
//! reports 0% bandwidth loss from the interposition. Throughput is
//! reported in bytes/second by criterion for each mode at streaming
//! message sizes.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workloads::netpipe::{FtMode, PingPongPair};

fn netpipe_bandwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("netpipe_bandwidth");
    group.sample_size(15).measurement_time(Duration::from_secs(2));
    for &size in &[64usize << 10, 256 << 10, 1 << 20] {
        group.throughput(Throughput::Bytes(size as u64 * 2)); // there and back
        for mode in FtMode::ALL {
            let pair = PingPongPair::new(mode);
            let payload = vec![0u8; size];
            group.bench_with_input(
                BenchmarkId::new(mode.label(), size),
                &size,
                |b, &_size| {
                    b.iter_custom(|iters| {
                        let bpml = std::sync::Arc::clone(&pair.b);
                        let echo = std::thread::spawn(move || {
                            for _ in 0..iters {
                                let f = bpml.recv(0, Some(0), Some(1)).unwrap();
                                bpml.send(0, 0, 2, &f.payload).unwrap();
                            }
                        });
                        let start = Instant::now();
                        for _ in 0..iters {
                            pair.a.send(0, 1, 1, &payload).unwrap();
                            pair.a.recv(0, Some(1), Some(2)).unwrap();
                        }
                        let elapsed = start.elapsed();
                        echo.join().unwrap();
                        pair.a.begin_step();
                        pair.b.begin_step();
                        elapsed
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, netpipe_bandwidth);
criterion_main!(benches);
