//! Checkpoint cost attribution: how much of a local checkpoint is spent
//! encoding the process image (codec + CRC framing) versus moving bytes.
//! Complements A2 — the slope of `ckpt_size` is the sum of these costs
//! plus file I/O and gather.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opal::ProcessImage;

fn image_of(bytes: usize) -> ProcessImage {
    let mut img = ProcessImage::new();
    img.insert("app", vec![0xA5; bytes]);
    img.insert("pml", vec![0x5A; 256]);
    img.insert("ompi", vec![1, 2, 3, 4]);
    img
}

fn context_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_image_codec");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    for &size in &[4usize << 10, 256 << 10, 4 << 20] {
        let img = image_of(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode_frame", size), &img, |b, img| {
            b.iter(|| {
                let payload = img.to_bytes().unwrap();
                codec::write_frame(&payload)
            });
        });
        let framed = codec::write_frame(&img.to_bytes().unwrap());
        group.bench_with_input(
            BenchmarkId::new("verify_decode", size),
            &framed,
            |b, framed| {
                b.iter(|| {
                    let payload = codec::read_frame(framed).unwrap();
                    ProcessImage::from_bytes(payload).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, context_codec);
criterion_main!(benches);
