//! Ablation A3: CRCP protocol comparison. Failure-free per-message cost
//! (logger pays a payload copy; coord pays only counting) and
//! checkpoint-time cost (coord drains channels; logger only exchanges
//! counts and prunes).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cr_core::request::CheckpointOptions;
use mca::McaParams;
use netsim::{LinkSpec, Topology};
use ompi::{mpirun, RunConfig};
use orte::Runtime;
use workloads::netpipe::{FtMode, PingPongPair};
use workloads::traffic::TrafficApp;

fn failure_free_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("crcp_failure_free_per_message");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for mode in FtMode::ALL {
        let pair = PingPongPair::new(mode);
        let payload = vec![0u8; 1024];
        group.bench_function(BenchmarkId::from_parameter(mode.label()), |b| {
            b.iter_custom(|iters| {
                let bpml = Arc::clone(&pair.b);
                let echo = std::thread::spawn(move || {
                    for _ in 0..iters {
                        let f = bpml.recv(0, Some(0), Some(1)).unwrap();
                        bpml.send(0, 0, 2, &f.payload).unwrap();
                    }
                });
                let start = Instant::now();
                for _ in 0..iters {
                    pair.a.send(0, 1, 1, &payload).unwrap();
                    pair.a.recv(0, Some(1), Some(2)).unwrap();
                }
                let elapsed = start.elapsed();
                echo.join().unwrap();
                pair.a.begin_step();
                pair.b.begin_step();
                // Keep the logger's retained log from growing unboundedly
                // across samples.
                pair.a.with_state(|st| st.sender_log.clear());
                pair.b.with_state(|st| st.sender_log.clear());
                elapsed
            });
        });
    }
    group.finish();
}

fn checkpoint_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("crcp_checkpoint_cost");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for crcp in ["coord", "logger"] {
        let dir = std::env::temp_dir().join(format!("bench_crcp_{crcp}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rt = Runtime::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()), dir).unwrap();
        let params = Arc::new(McaParams::new());
        params.set("crcp", crcp);
        let app = Arc::new(TrafficApp {
            rounds: u64::MAX / 2,
            seed: 7,
            max_len: 512,
        });
        let job = mpirun(&rt, app, RunConfig { nprocs: 4, params }).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        group.bench_function(BenchmarkId::from_parameter(crcp), |b| {
            b.iter(|| job.checkpoint(&CheckpointOptions::tool()).unwrap());
        });
        job.request_terminate();
        job.wait().unwrap();
        rt.shutdown();
    }
    group.finish();
}

criterion_group!(benches, failure_free_cost, checkpoint_cost);
criterion_main!(benches);
