//! Experiment E3 companion: end-to-end distributed checkpoint latency
//! through the full Figure-1 pipeline, comparing the centralized `full`
//! coordinator (daemons + FILEM gather + cleanup) against the `direct`
//! coordinator (straight to stable storage).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cr_core::request::CheckpointOptions;
use mca::McaParams;
use netsim::{LinkSpec, Topology};
use ompi::{mpirun, RunConfig};
use orte::Runtime;
use workloads::stencil::StencilApp;

fn snapc_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapc_full_vs_direct");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for snapc in ["full", "direct"] {
        let dir = std::env::temp_dir().join(format!("bench_snapc_{snapc}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rt = Runtime::new(Topology::uniform(4, LinkSpec::gigabit_ethernet()), dir).unwrap();
        let params = Arc::new(McaParams::new());
        params.set("snapc", snapc);
        let app = Arc::new(StencilApp {
            cells_per_rank: 4096,
            iters: u64::MAX / 2,
            ..Default::default()
        });
        let job = mpirun(&rt, app, RunConfig { nprocs: 8, params }).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        group.bench_function(BenchmarkId::from_parameter(snapc), |b| {
            b.iter(|| job.checkpoint(&CheckpointOptions::tool()).unwrap());
        });
        job.request_terminate();
        job.wait().unwrap();
        rt.shutdown();
    }
    group.finish();
}

criterion_group!(benches, snapc_checkpoint);
criterion_main!(benches);
