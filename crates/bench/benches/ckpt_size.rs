//! Ablation A2: distributed checkpoint latency vs per-rank snapshot size.
//! The stencil slab is the checkpointed state; cost should be dominated by
//! context-file writes plus the FILEM gather, both roughly linear in
//! bytes.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cr_core::request::CheckpointOptions;
use mca::McaParams;
use netsim::{LinkSpec, Topology};
use ompi::{mpirun, RunConfig};
use orte::Runtime;
use workloads::stencil::StencilApp;

fn bench_runtime(tag: &str, nodes: u32) -> Runtime {
    let dir = std::env::temp_dir().join(format!("bench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Runtime::new(Topology::uniform(nodes, LinkSpec::gigabit_ethernet()), dir).unwrap()
}

fn ckpt_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckpt_latency_vs_state_size");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    // cells are f64: 8 bytes each, two ranks.
    for &cells in &[512usize, 8 << 10, 64 << 10, 256 << 10] {
        let bytes_per_rank = (cells * 8) as u64;
        group.throughput(Throughput::Bytes(bytes_per_rank * 2));
        let rt = bench_runtime(&format!("size{cells}"), 2);
        let app = Arc::new(StencilApp {
            cells_per_rank: cells,
            iters: u64::MAX / 2,
            ..Default::default()
        });
        let job = mpirun(&rt, app, RunConfig {
            nprocs: 2,
            params: Arc::new(McaParams::new()),
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        group.bench_with_input(
            BenchmarkId::from_parameter(bytes_per_rank),
            &cells,
            |b, _| {
                b.iter(|| job.checkpoint(&CheckpointOptions::tool()).unwrap());
            },
        );
        job.request_terminate();
        job.wait().unwrap();
        rt.shutdown();
    }
    group.finish();
}

criterion_group!(benches, ckpt_size);
criterion_main!(benches);
