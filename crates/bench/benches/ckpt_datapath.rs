//! Ablation A12: checkpoint data-path throughput — parallel hash/copy
//! pool, pooled buffers, and contention-aware gather scheduling.
//!
//! Three deterministic gates run on every invocation:
//!
//! * **Identity**: the parallel manifest builder must produce the exact
//!   manifest the sequential builder does, chunk record for chunk record.
//! * **Allocation flatness**: steady-state delta builds through the
//!   buffer pool must allocate O(pool) buffers total — not O(chunks) —
//!   across many intervals (pool misses stop growing after warm-up).
//! * **Scheduling**: on a contended gather batch (four ranks behind one
//!   uplink, two lanes) the `spread` plan's simulated critical path must
//!   be strictly below `fifo`'s under the 1/k link-contention pricing.
//!
//! Wall-clock MB/s ratchet: chunk hashing over the worker pool must reach
//! ≥ 1.8× single-worker throughput at 4 workers on a ≥ 64 MiB image —
//! gated only when the host actually has ≥ 4 cores (the measurement is
//! still taken and recorded otherwise, with a printed waiver).
//!
//! `CKPT_DATAPATH_SMOKE=1` (used by `scripts/check.sh`) skips criterion
//! sampling after the gates. When `BENCH_DATAPATH_JSON` names a path, the
//! per-worker-count throughput table is written there
//! (`BENCH_datapath.json`).

use std::time::{Duration, Instant};

use codec::chunk::ChunkManifest;
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{LinkSpec, NodeId, Topology};
use opal::image::ProcessImage;
use opal::incr::{build_delta_pooled, recycle_delta};
use opal::pool::{digest_all_parallel, insert_all_parallel, manifest_parallel};
use opal::{BufferPool, ChunkStore};
use orte::filem::CopyRequest;
use orte::sched::{plan, simulated_critical_path, SchedPolicy};

const IMAGE_BYTES: usize = 64 << 20; // 64 MiB hashing corpus
const CHUNK_BYTES: usize = 64 << 10; // 64 KiB chunks -> 1024 records
const INSERT_BYTES: usize = 16 << 20; // store-insert corpus (writes blobs)
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const REPS: usize = 3;

/// Deterministic pseudo-random fill (SplitMix64 per 8-byte word).
fn corpus(len: usize, mut seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&z.to_le_bytes()[..take]);
    }
    out
}

fn chunks_of(data: &[u8]) -> Vec<&[u8]> {
    data.chunks(CHUNK_BYTES).collect()
}

fn mib_per_sec(bytes: usize, wall: Duration) -> f64 {
    bytes as f64 / wall.as_secs_f64().max(1e-9) / (1024.0 * 1024.0)
}

/// Best-of-N wall clock for `f`.
fn best_of<F: FnMut()>(mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

// ---------------------------------------------------------------------------
// Deterministic gates
// ---------------------------------------------------------------------------

fn assert_parallel_manifest_identical(data: &[u8]) {
    let half = data.len() / 2;
    let sections = [("heap", &data[..half]), ("stack", &data[half..])];
    let sequential = ChunkManifest::of_sections(sections.iter().copied(), CHUNK_BYTES);
    for workers in WORKER_COUNTS {
        let parallel = manifest_parallel(&sections, CHUNK_BYTES, workers);
        assert_eq!(
            codec::to_bytes(&parallel).unwrap(),
            codec::to_bytes(&sequential).unwrap(),
            "parallel manifest diverges at {workers} workers"
        );
    }
    println!("ckpt_datapath: parallel manifest identical at {WORKER_COUNTS:?} workers");
}

/// Steady-state delta builds must stop allocating once the pool is warm:
/// with ≤ pool-cap dirty chunks per interval, total pool misses across
/// many intervals stay ≤ the cap (flat in the number of chunks handled).
fn assert_allocations_flat() {
    const CAP: usize = 8;
    const INTERVALS: usize = 16;
    let pool = BufferPool::new(CAP);
    let mut data = corpus(4 << 20, 7);
    let mut img = ProcessImage::new();
    img.insert("app".to_string(), data.clone());
    let secs: Vec<(&str, &[u8])> = img.iter().collect();
    let mut prev = ChunkManifest::of_sections(secs.into_iter(), CHUNK_BYTES);
    let mut handled = 0usize;
    for interval in 0..INTERVALS {
        // Dirty 4 chunks per interval (well under the pool cap).
        for c in 0..4usize {
            let at = (c * 16 + interval) * CHUNK_BYTES + 11;
            data[at] = data[at].wrapping_add(1);
        }
        let mut img = ProcessImage::new();
        img.insert("app".to_string(), data.clone());
        let secs: Vec<(&str, &[u8])> = img.iter().collect();
        let manifest = ChunkManifest::of_sections(secs.into_iter(), CHUNK_BYTES);
        let delta = build_delta_pooled(&img, &manifest, &prev, CHUNK_BYTES, &pool);
        handled += manifest.sections.iter().map(|s| s.chunks.len()).sum::<usize>();
        recycle_delta(delta, &pool);
        prev = manifest;
    }
    let stats = pool.stats();
    assert!(
        stats.misses as usize <= CAP,
        "buffer pool allocated {} buffers over {INTERVALS} intervals ({handled} chunk \
         records) — allocations must be flat in chunks, bounded by the pool cap {CAP}",
        stats.misses
    );
    println!(
        "ckpt_datapath: {} allocations over {INTERVALS} delta intervals ({} reuses) — flat",
        stats.misses, stats.hits
    );
}

/// The A12 contended gather: four ranks behind node 1's uplink, one each
/// on nodes 2 and 3, two lanes. Spread must strictly beat fifo under the
/// simulator's 1/k contention pricing.
fn assert_spread_beats_fifo() -> (u64, u64) {
    let topo = Topology::uniform(4, LinkSpec::gigabit_ethernet());
    let batch: Vec<CopyRequest> = [1u32, 1, 1, 1, 2, 3]
        .iter()
        .enumerate()
        .map(|(i, &src)| CopyRequest {
            src: format!("/scratch/{i}").into(),
            src_node: NodeId(src),
            dest: format!("/stable/{i}").into(),
            dest_node: NodeId(0),
        })
        .collect();
    let bytes = vec![8 << 20; batch.len()];
    let fifo =
        simulated_critical_path(&plan(&batch, 2, SchedPolicy::Fifo), &topo, &batch, &bytes);
    let spread =
        simulated_critical_path(&plan(&batch, 2, SchedPolicy::Spread), &topo, &batch, &bytes);
    assert!(
        spread < fifo,
        "spread critical path must be strictly below fifo on the contended batch \
         (spread={spread}, fifo={fifo})"
    );
    println!("ckpt_datapath: gather critical path fifo={fifo}, spread={spread}");
    (fifo.as_nanos(), spread.as_nanos())
}

// ---------------------------------------------------------------------------
// Wall-clock measurements
// ---------------------------------------------------------------------------

fn measure_hash(data: &[u8], workers: usize) -> f64 {
    let chunks = chunks_of(data);
    let wall = best_of(|| {
        let digests = digest_all_parallel(&chunks, workers);
        assert_eq!(digests.len(), chunks.len());
    });
    mib_per_sec(data.len(), wall)
}

fn measure_delta(data: &[u8], prev: &ChunkManifest, pool: &BufferPool, workers: usize) -> f64 {
    let mut img = ProcessImage::new();
    img.insert("app".to_string(), data.to_vec());
    let wall = best_of(|| {
        let secs: Vec<(&str, &[u8])> = img.iter().collect();
        let manifest = manifest_parallel(&secs, CHUNK_BYTES, workers);
        let delta = build_delta_pooled(&img, &manifest, prev, CHUNK_BYTES, pool);
        recycle_delta(delta, pool);
    });
    mib_per_sec(data.len(), wall)
}

fn measure_insert(base: &std::path::Path, data: &[u8], workers: usize) -> f64 {
    let pool = BufferPool::new(8);
    let chunks: Vec<(opal::ChunkId, &[u8])> = data
        .chunks(CHUNK_BYTES)
        .map(|c| (opal::ChunkId::of(c), c))
        .collect();
    let mut best = Duration::MAX;
    for rep in 0..REPS {
        let dir = base.join(format!("store_{workers}_{rep}"));
        let store = ChunkStore::open(&dir).expect("open chunk store");
        let t = Instant::now();
        let fresh = insert_all_parallel(&store, &chunks, workers, &pool).expect("insert");
        best = best.min(t.elapsed());
        assert!(fresh.iter().all(|&f| f), "fresh store must take every chunk");
    }
    mib_per_sec(data.len(), best)
}

// ---------------------------------------------------------------------------

fn write_json(
    path: &str,
    cores: usize,
    hash: &[(usize, f64)],
    delta: &[(usize, f64)],
    insert: &[(usize, f64)],
    alloc_note: &str,
    fifo_ns: u64,
    spread_ns: u64,
) {
    let row = |pairs: &[(usize, f64)]| {
        pairs
            .iter()
            .map(|(w, m)| format!("\"{w}\": {m:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"image_bytes\": {IMAGE_BYTES},\n  \"chunk_bytes\": {CHUNK_BYTES},\n  \
         \"cores\": {cores},\n  \
         \"hash_mib_s\": {{ {} }},\n  \
         \"delta_mib_s\": {{ {} }},\n  \
         \"insert_mib_s\": {{ {} }},\n  \
         \"alloc\": \"{alloc_note}\",\n  \
         \"sched_critical_path_ns\": {{ \"fifo\": {fifo_ns}, \"spread\": {spread_ns} }}\n}}\n",
        row(hash),
        row(delta),
        row(insert),
    );
    std::fs::write(path, json).expect("write BENCH_datapath.json");
    println!("ckpt_datapath: wrote {path}");
}

fn ckpt_datapath(c: &mut Criterion) {
    let data = corpus(IMAGE_BYTES, 1);

    // Deterministic gates first — they hold on any machine.
    assert_parallel_manifest_identical(&data);
    assert_allocations_flat();
    let (fifo_ns, spread_ns) = assert_spread_beats_fifo();

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let hash: Vec<(usize, f64)> = WORKER_COUNTS
        .iter()
        .map(|&w| (w, measure_hash(&data, w)))
        .collect();
    // Every chunk dirty against a shifted previous image: the delta build
    // hashes and copies the full corpus through the pool.
    let prev_data = corpus(IMAGE_BYTES, 2);
    let prev = {
        let secs = [("app", prev_data.as_slice())];
        ChunkManifest::of_sections(secs.into_iter(), CHUNK_BYTES)
    };
    let pool = BufferPool::new(2 * IMAGE_BYTES / CHUNK_BYTES);
    let delta: Vec<(usize, f64)> = WORKER_COUNTS
        .iter()
        .map(|&w| (w, measure_delta(&data, &prev, &pool, w)))
        .collect();
    let base = std::env::temp_dir().join(format!("bench_ckpt_datapath_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let insert_data = &data[..INSERT_BYTES];
    let insert: Vec<(usize, f64)> = WORKER_COUNTS
        .iter()
        .map(|&w| (w, measure_insert(&base, insert_data, w)))
        .collect();
    let _ = std::fs::remove_dir_all(&base);

    for (label, rows) in [("hash", &hash), ("delta", &delta), ("insert", &insert)] {
        for (w, m) in rows {
            println!("ckpt_datapath: {label} {w} workers: {m:.1} MiB/s");
        }
    }

    // The wall-clock ratchet only binds where 4 workers can actually run
    // in parallel; single-core CI still records the numbers above.
    let h1 = hash.iter().find(|(w, _)| *w == 1).map(|(_, m)| *m).unwrap_or(0.0);
    let h4 = hash.iter().find(|(w, _)| *w == 4).map(|(_, m)| *m).unwrap_or(0.0);
    let alloc_note = "flat: pool misses bounded by pool cap across 16 delta intervals";
    if cores >= 4 {
        assert!(
            h4 >= 1.8 * h1,
            "4-worker hashing must reach >= 1.8x single-worker throughput on a \
             {cores}-core host ({h4:.1} vs {h1:.1} MiB/s)"
        );
        println!("ckpt_datapath: hash speedup {:.2}x at 4 workers (gate >= 1.8x)", h4 / h1);
    } else {
        println!(
            "ckpt_datapath: WAIVED 1.8x hash-speedup gate — host has {cores} core(s); \
             measured {:.2}x",
            h4 / h1.max(1e-9)
        );
    }

    if let Ok(path) = std::env::var("BENCH_DATAPATH_JSON") {
        write_json(&path, cores, &hash, &delta, &insert, alloc_note, fifo_ns, spread_ns);
    }

    if std::env::var("CKPT_DATAPATH_SMOKE").is_ok() {
        println!("ckpt_datapath smoke: gates passed (criterion sampling skipped)");
        return;
    }

    let mut group = c.benchmark_group("ckpt_datapath");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for workers in WORKER_COUNTS {
        let chunks = chunks_of(&data);
        group.bench_function(format!("hash_{workers}w"), |b| {
            b.iter(|| digest_all_parallel(&chunks, workers))
        });
    }
    group.finish();
}

criterion_group!(benches, ckpt_datapath);
criterion_main!(benches);
