//! Ablation A1: distributed checkpoint latency vs rank count. The `full`
//! SNAPC component is centralized (one global coordinator, FILEM gather to
//! one stable store), so latency should grow roughly linearly with ranks.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cr_core::request::CheckpointOptions;
use mca::McaParams;
use netsim::{LinkSpec, Topology};
use ompi::{mpirun, RunConfig};
use orte::Runtime;
use workloads::stencil::StencilApp;

fn bench_runtime(tag: &str, nodes: u32) -> Runtime {
    let dir = std::env::temp_dir().join(format!("bench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Runtime::new(Topology::uniform(nodes, LinkSpec::gigabit_ethernet()), dir).unwrap()
}

fn ckpt_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckpt_latency_vs_ranks");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &nprocs in &[2u32, 4, 8, 16] {
        let rt = bench_runtime(&format!("scal{nprocs}"), 4);
        let app = Arc::new(StencilApp {
            cells_per_rank: 1024,
            iters: u64::MAX / 2, // effectively endless; terminated below
            ..Default::default()
        });
        let params = Arc::new(McaParams::new());
        params.set("plm_map_by", "node");
        let job = mpirun(&rt, app, RunConfig { nprocs, params }).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::from_parameter(nprocs), &nprocs, |b, _| {
            b.iter(|| job.checkpoint(&CheckpointOptions::tool()).unwrap());
        });
        job.request_terminate();
        job.wait().unwrap();
        rt.shutdown();
    }
    group.finish();
}

criterion_group!(benches, ckpt_scaling);
criterion_main!(benches);
