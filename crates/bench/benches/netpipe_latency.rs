//! Experiment E1 (paper §7): NetPIPE latency overhead of the C/R
//! infrastructure. The paper reports ~3% added latency for small messages
//! and ~0% for large ones when the interposition layers run with
//! passthrough components; `disabled` is the infrastructure-off baseline,
//! `passthrough` the paper's measured configuration, `coord`/`logger` the
//! real protocols' failure-free paths.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::netpipe::{FtMode, PingPongPair};

fn netpipe_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("netpipe_latency");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for &size in &[1usize, 16, 256, 4096, 65536, 1 << 20] {
        for mode in FtMode::ALL {
            let pair = PingPongPair::new(mode);
            let payload = vec![0u8; size];
            group.bench_with_input(
                BenchmarkId::new(mode.label(), size),
                &size,
                |b, &_size| {
                    b.iter_custom(|iters| {
                        let bpml = std::sync::Arc::clone(&pair.b);
                        let echo = std::thread::spawn(move || {
                            for _ in 0..iters {
                                let f = bpml.recv(0, Some(0), Some(1)).unwrap();
                                bpml.send(0, 0, 2, &f.payload).unwrap();
                            }
                        });
                        let start = Instant::now();
                        for _ in 0..iters {
                            pair.a.send(0, 1, 1, &payload).unwrap();
                            pair.a.recv(0, Some(1), Some(2)).unwrap();
                        }
                        let elapsed = start.elapsed();
                        echo.join().unwrap();
                        pair.a.begin_step();
                        pair.b.begin_step();
                        elapsed
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, netpipe_latency);
criterion_main!(benches);
