//! Incremental vs full-image checkpointing: bytes moved and simulated
//! checkpoint time.
//!
//! The chunk-level incremental pipeline (`crs_incr_enabled`) hashes each
//! capture section against the previous interval's chunk manifest and
//! ships only the dirty chunks through FILEM/replica. This bench runs the
//! same two-interval schedule twice — incremental on and off — dirtying
//! 10% of every rank's section bytes between the intervals, and asserts
//! the paper-motivating deltas deterministically:
//!
//! * the incremental interval moves **< 25%** of the full-image bytes,
//! * its simulated checkpoint time is **strictly below** the full-image
//!   time at the same state size.
//!
//! `CKPT_INCREMENTAL_SMOKE=1` (used by `scripts/check.sh`) skips the
//! criterion sampling after the assertions. When `BENCH_CKPT_JSON` names
//! a path, the full-vs-incremental comparison is written there as JSON.
//!
//! `RANK_STATE_BYTES` is 1 MiB so chunking (4 KiB default) has real work;
//! the dirty region is contiguous, which is the stencil-halo access
//! pattern the chunk digest is designed to exploit.

use std::sync::Arc;
use std::time::Duration;

use cr_core::inc::LayerInc;
use cr_core::request::{CheckpointOptions, CheckpointOutcome};
use criterion::{criterion_group, criterion_main, Criterion};
use mca::McaParams;
use netsim::{LinkSpec, Topology};
use opal::crs::{crs_framework, SelfCallbacks};
use orte::job::{launch, JobSpec, LaunchCtx};
use orte::Runtime;
use std::sync::Mutex;

const NODES: u32 = 4;
const NPROCS: u32 = 4;
const RANK_STATE_BYTES: usize = 1 << 20; // 1 MiB per rank
const DIRTY_FRACTION_PCT: usize = 10;

type SharedState = Arc<Vec<Mutex<Vec<u8>>>>;

/// Deterministic per-rank state: rank-seeded byte ramp.
fn fresh_state() -> SharedState {
    Arc::new(
        (0..NPROCS)
            .map(|r| {
                Mutex::new(
                    (0..RANK_STATE_BYTES)
                        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(r as u8))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Overwrite a contiguous `DIRTY_FRACTION_PCT`% of every rank's state with
/// generation-tagged bytes, starting at a generation-dependent offset so
/// consecutive intervals dirty different chunks.
fn dirty_state(state: &SharedState, generation: u8) {
    let span = RANK_STATE_BYTES * DIRTY_FRACTION_PCT / 100;
    let start = (generation as usize * span) % (RANK_STATE_BYTES - span);
    for cell in state.iter() {
        let mut buf = cell.lock().expect("state lock");
        for b in &mut buf[start..start + span] {
            *b = b.wrapping_add(generation).wrapping_mul(167).wrapping_add(1);
        }
    }
}

/// Spinning checkpointable job whose `app` capture section serves the
/// shared per-rank buffers (same shape as the SNAPC test harness, with
/// bulk state instead of a label string).
fn launch_job(rt: &Runtime, state: &SharedState, incr_enabled: bool) -> orte::JobHandle {
    let params = Arc::new(McaParams::new());
    params.set("filem", "replica");
    params.set("filem_replica_factor", "1");
    params.set("crs_incr_enabled", if incr_enabled { "true" } else { "false" });
    let proc_state = Arc::clone(state);
    let proc_main: orte::job::ProcMain = Arc::new(move |ctx: LaunchCtx| {
        let fw = crs_framework(SelfCallbacks::new());
        ctx.container
            .set_crs(Arc::from(fw.select(&ctx.params).unwrap()));
        let rank = ctx.name.rank.index();
        let st = Arc::clone(&proc_state);
        ctx.container
            .register_capture(
                "app",
                Arc::new(move || Ok(st[rank].lock().expect("state lock").clone())),
            );
        ctx.container
            .install_opal_inc(LayerInc::new("opal", ctx.runtime.tracer().clone()));
        ctx.container.enable_checkpointing();
        while !ctx.terminate.load(std::sync::atomic::Ordering::SeqCst) {
            ctx.container.gate().checkpoint_point();
            std::thread::yield_now();
        }
        ctx.container.gate().retire();
    });
    let handle = launch(rt, JobSpec::new(NPROCS, params, proc_main)).expect("launch");
    for r in 0..NPROCS {
        while handle.container(cr_core::Rank(r)).crs().is_none() {
            std::thread::yield_now();
        }
    }
    handle
}

/// Run the two-interval schedule (full baseline, then a 10%-dirty
/// interval) and return both outcomes.
fn two_intervals(base: &std::path::Path, incr_enabled: bool) -> (CheckpointOutcome, CheckpointOutcome) {
    let rt = Runtime::new(Topology::uniform(NODES, LinkSpec::gigabit_ethernet()), base)
        .expect("runtime");
    let state = fresh_state();
    let handle = launch_job(&rt, &state, incr_enabled);
    let first = handle.checkpoint(&CheckpointOptions::tool()).expect("interval 0");
    dirty_state(&state, 1);
    let second = handle.checkpoint(&CheckpointOptions::tool()).expect("interval 1");
    handle.request_terminate();
    handle.join().expect("join");
    rt.drain_writebehind();
    rt.shutdown();
    (first, second)
}

fn write_json(path: &str, full: &CheckpointOutcome, incr: &CheckpointOutcome) {
    let json = format!(
        "{{\n  \"state_bytes_per_rank\": {},\n  \"ranks\": {},\n  \"dirty_fraction_pct\": {},\n  \
         \"full\": {{ \"bytes_moved\": {}, \"sim_ns\": {} }},\n  \
         \"incremental\": {{ \"bytes_moved\": {}, \"sim_ns\": {} }},\n  \
         \"bytes_ratio\": {:.4},\n  \"sim_ratio\": {:.4}\n}}\n",
        RANK_STATE_BYTES,
        NPROCS,
        DIRTY_FRACTION_PCT,
        full.bytes_moved,
        full.sim_ns,
        incr.bytes_moved,
        incr.sim_ns,
        incr.bytes_moved as f64 / full.bytes_moved as f64,
        incr.sim_ns as f64 / full.sim_ns as f64,
    );
    std::fs::write(path, json).expect("write BENCH_ckpt.json");
    println!("ckpt_incremental: wrote {path}");
}

fn ckpt_incremental(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("bench_ckpt_incremental_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let (_, full_second) = two_intervals(&base.join("full"), false);
    let (incr_first, incr_second) = two_intervals(&base.join("incr"), true);

    // Interval 0 is a full image in both configurations; interval 1 is
    // where the pipelines diverge. Both runs captured identical state.
    println!(
        "ckpt_incremental: full interval moved {} bytes (sim {} ns), \
         incremental interval moved {} bytes (sim {} ns)",
        full_second.bytes_moved, full_second.sim_ns,
        incr_second.bytes_moved, incr_second.sim_ns
    );
    assert!(
        incr_second.bytes_moved * 4 < full_second.bytes_moved,
        "a 10%-dirty incremental interval must move < 25% of the full-image bytes \
         (incremental={}, full={})",
        incr_second.bytes_moved,
        full_second.bytes_moved
    );
    assert!(
        incr_second.sim_ns < full_second.sim_ns,
        "simulated incremental checkpoint time must be strictly below the \
         full-image time (incremental={} ns, full={} ns)",
        incr_second.sim_ns,
        full_second.sim_ns
    );
    // The incremental run's own interval 0 is a full image: its cost must
    // sit in the full-image regime, not the delta regime.
    assert!(
        incr_first.bytes_moved * 2 > full_second.bytes_moved,
        "the incremental run's base interval must still be a full image \
         (base={}, full={})",
        incr_first.bytes_moved,
        full_second.bytes_moved
    );

    if let Ok(path) = std::env::var("BENCH_CKPT_JSON") {
        write_json(&path, &full_second, &incr_second);
    }

    if std::env::var("CKPT_INCREMENTAL_SMOKE").is_ok() {
        println!("ckpt_incremental smoke: assertions passed (criterion sampling skipped)");
        return;
    }

    let mut group = c.benchmark_group("ckpt_incremental");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("full_interval", |b| {
        b.iter(|| two_intervals(&base.join("bench_full"), false))
    });
    group.bench_function("incremental_interval", |b| {
        b.iter(|| two_intervals(&base.join("bench_incr"), true))
    });
    group.finish();
}

criterion_group!(benches, ckpt_incremental);
criterion_main!(benches);
