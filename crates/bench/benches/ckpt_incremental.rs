//! Incremental vs full-image checkpointing: bytes moved and simulated
//! checkpoint time.
//!
//! The chunk-level incremental pipeline (`crs_incr_enabled`) hashes each
//! capture section against the previous interval's chunk manifest and
//! ships only the dirty chunks through FILEM/replica. This bench runs the
//! same two-interval schedule twice — incremental on and off — dirtying
//! 10% of every rank's section bytes between the intervals, and asserts
//! the paper-motivating deltas deterministically:
//!
//! * the incremental interval moves **< 25%** of the full-image bytes,
//! * its simulated checkpoint time is **strictly below** the full-image
//!   time at the same state size.
//!
//! With `CKPT_DEDUP_SMOKE=1` a third schedule runs through the
//! content-addressed dedup store (`filem_dedup_enabled`) on an
//! SPMD-shaped workload (every rank's state identical except an 8-byte
//! header), asserting a **≥ 2×** cross-rank dedup ratio and that dedup
//! restart cost stays flat as retained intervals grow while chain-replay
//! cost climbs — the restart-latency-vs-retained-intervals table.
//!
//! `CKPT_INCREMENTAL_SMOKE=1` (used by `scripts/check.sh`) skips the
//! criterion sampling after the assertions. When `BENCH_CKPT_JSON` names
//! a path, the full-vs-incremental comparison (plus the dedup columns
//! when they ran) is written there as JSON.
//!
//! `RANK_STATE_BYTES` is 1 MiB so chunking (4 KiB default) has real work;
//! the dirty region is contiguous, which is the stencil-halo access
//! pattern the chunk digest is designed to exploit.

use std::sync::Arc;
use std::time::Duration;

use cr_core::inc::LayerInc;
use cr_core::request::{CheckpointOptions, CheckpointOutcome};
use criterion::{criterion_group, criterion_main, Criterion};
use mca::McaParams;
use netsim::{LinkSpec, Topology};
use opal::crs::{crs_framework, SelfCallbacks};
use orte::job::{launch, JobSpec, LaunchCtx};
use orte::Runtime;
use std::sync::Mutex;

const NODES: u32 = 4;
const NPROCS: u32 = 4;
const RANK_STATE_BYTES: usize = 1 << 20; // 1 MiB per rank
const DIRTY_FRACTION_PCT: usize = 10;

type SharedState = Arc<Vec<Mutex<Vec<u8>>>>;

/// Deterministic per-rank state: rank-seeded byte ramp.
fn fresh_state() -> SharedState {
    Arc::new(
        (0..NPROCS)
            .map(|r| {
                Mutex::new(
                    (0..RANK_STATE_BYTES)
                        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(r as u8))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// SPMD-shaped per-rank state: the same byte ramp on every rank, with an
/// 8-byte rank-unique header — the workload shape where cross-rank dedup
/// pays (paper §7's SPMD applications checkpoint near-identical images).
fn fresh_spmd_state() -> SharedState {
    let base: Vec<u8> = (0..RANK_STATE_BYTES)
        .map(|i| (i as u8).wrapping_mul(31))
        .collect();
    Arc::new(
        (0..NPROCS)
            .map(|r| {
                let mut buf = base.clone();
                buf[..8].copy_from_slice(&u64::from(r).to_le_bytes());
                Mutex::new(buf)
            })
            .collect(),
    )
}

/// Overwrite a contiguous `DIRTY_FRACTION_PCT`% of every rank's state with
/// generation-tagged bytes, starting at a generation-dependent offset so
/// consecutive intervals dirty different chunks.
fn dirty_state(state: &SharedState, generation: u8) {
    let span = RANK_STATE_BYTES * DIRTY_FRACTION_PCT / 100;
    let start = (generation as usize * span) % (RANK_STATE_BYTES - span);
    for cell in state.iter() {
        let mut buf = cell.lock().expect("state lock");
        for b in &mut buf[start..start + span] {
            *b = b.wrapping_add(generation).wrapping_mul(167).wrapping_add(1);
        }
    }
}

/// Spinning checkpointable job whose `app` capture section serves the
/// shared per-rank buffers (same shape as the SNAPC test harness, with
/// bulk state instead of a label string).
fn launch_job(rt: &Runtime, state: &SharedState, incr_enabled: bool, dedup: bool) -> orte::JobHandle {
    let params = Arc::new(McaParams::new());
    params.set("filem", "replica");
    params.set("filem_replica_factor", "1");
    params.set("crs_incr_enabled", if incr_enabled { "true" } else { "false" });
    params.set("filem_dedup_enabled", if dedup { "true" } else { "false" });
    let proc_state = Arc::clone(state);
    let proc_main: orte::job::ProcMain = Arc::new(move |ctx: LaunchCtx| {
        let fw = crs_framework(SelfCallbacks::new());
        ctx.container
            .set_crs(Arc::from(fw.select(&ctx.params).unwrap()));
        let rank = ctx.name.rank.index();
        let st = Arc::clone(&proc_state);
        ctx.container
            .register_capture(
                "app",
                Arc::new(move || Ok(st[rank].lock().expect("state lock").clone())),
            );
        ctx.container
            .install_opal_inc(LayerInc::new("opal", ctx.runtime.tracer().clone()));
        ctx.container.enable_checkpointing();
        while !ctx.terminate.load(std::sync::atomic::Ordering::SeqCst) {
            ctx.container.gate().checkpoint_point();
            std::thread::yield_now();
        }
        ctx.container.gate().retire();
    });
    let handle = launch(rt, JobSpec::new(NPROCS, params, proc_main)).expect("launch");
    for r in 0..NPROCS {
        while handle.container(cr_core::Rank(r)).crs().is_none() {
            std::thread::yield_now();
        }
    }
    handle
}

/// Run the two-interval schedule (full baseline, then a 10%-dirty
/// interval) and return both outcomes.
fn two_intervals(base: &std::path::Path, incr_enabled: bool) -> (CheckpointOutcome, CheckpointOutcome) {
    let rt = Runtime::new(Topology::uniform(NODES, LinkSpec::gigabit_ethernet()), base)
        .expect("runtime");
    let state = fresh_state();
    let handle = launch_job(&rt, &state, incr_enabled, false);
    let first = handle.checkpoint(&CheckpointOptions::tool()).expect("interval 0");
    dirty_state(&state, 1);
    let second = handle.checkpoint(&CheckpointOptions::tool()).expect("interval 1");
    handle.request_terminate();
    handle.join().expect("join");
    rt.drain_writebehind();
    rt.shutdown();
    (first, second)
}

/// One row of the restart-latency-vs-retained-intervals table: restoring
/// the newest of `retained` intervals costs a `chain_len`-link replay
/// (simulated `chain_sim_ns`) under incremental chains, and a single
/// manifest fetch (`dedup_sim_ns`) under the dedup store regardless of
/// how many intervals are retained.
struct RestartRow {
    retained: usize,
    chain_len: usize,
    chain_sim_ns: u64,
    dedup_sim_ns: u64,
}

const DEDUP_INTERVALS: u64 = 4;

/// Run the same `DEDUP_INTERVALS`-interval SPMD schedule through the
/// dedup store and through incremental chains, and measure — per number
/// of retained intervals — the deterministic simulated cost of restoring
/// the newest interval from peer memory.  Returns the dedup schedule's
/// outcomes plus the table rows.
fn dedup_vs_chain_restart(base: &std::path::Path) -> (Vec<CheckpointOutcome>, Vec<RestartRow>) {
    // Dedup schedule.
    let rt = Runtime::new(Topology::uniform(NODES, LinkSpec::gigabit_ethernet()), &base.join("dedup"))
        .expect("runtime");
    let state = fresh_spmd_state();
    let handle = launch_job(&rt, &state, false, true);
    let mut outcomes = Vec::new();
    for i in 0..DEDUP_INTERVALS {
        if i > 0 {
            dirty_state(&state, i as u8);
        }
        outcomes.push(handle.checkpoint(&CheckpointOptions::tool()).expect("dedup interval"));
    }
    handle.request_terminate();
    handle.join().expect("join");
    rt.drain_writebehind();

    let global = cr_core::GlobalSnapshot::open(&outcomes[DEDUP_INTERVALS as usize - 1].global_snapshot)
        .expect("open dedup global");
    let job_id = global.job();
    let store = orte::store::SnapshotStore::open(&rt, job_id, global.dir()).expect("store");
    let mut dedup_sim: Vec<u64> = Vec::new();
    for i in 0..DEDUP_INTERVALS {
        let mut sim = netsim::SimTime::ZERO;
        for r in 0..NPROCS {
            let rank = cr_core::Rank(r);
            // Structural no-chain-replay guarantee: the restore set of a
            // dedup interval is the interval itself, always.
            assert_eq!(global.ckpt_chain(i, rank).expect("chain"), vec![i]);
            let manifest = codec::ChunkManifest::parse(
                global.chunk_manifest(i, rank).expect("manifest"),
            )
            .expect("parse manifest");
            let (_, stats) = store
                .fetch_image(&manifest, orte::store::ChunkSource::ReplicaOnly, true)
                .expect("dedup fetch");
            sim += stats.sim_cost;
        }
        dedup_sim.push(sim.as_nanos());
    }
    rt.shutdown();

    // Incremental-chain schedule over the identical state sequence.
    let rt = Runtime::new(Topology::uniform(NODES, LinkSpec::gigabit_ethernet()), &base.join("chain"))
        .expect("runtime");
    let state = fresh_spmd_state();
    let handle = launch_job(&rt, &state, true, false);
    let mut last = None;
    for i in 0..DEDUP_INTERVALS {
        if i > 0 {
            dirty_state(&state, i as u8);
        }
        last = Some(handle.checkpoint(&CheckpointOptions::tool()).expect("chain interval"));
    }
    handle.request_terminate();
    handle.join().expect("join");
    rt.drain_writebehind();

    let global = cr_core::GlobalSnapshot::open(&last.expect("outcome").global_snapshot)
        .expect("open chain global");
    let job_id = global.job();
    let mut rows = Vec::new();
    for i in 0..DEDUP_INTERVALS {
        let mut sim = netsim::SimTime::ZERO;
        let mut chain_len = 0;
        for r in 0..NPROCS {
            let rank = cr_core::Rank(r);
            let chain = global.ckpt_chain(i, rank).expect("chain");
            chain_len = chain.len();
            for ci in chain {
                let holders = global.replica_holders(ci, rank);
                let (_, cost) = orte::replica::fetch_image(&rt, job_id, ci, rank, &holders)
                    .expect("replica link");
                sim += cost;
            }
        }
        // Structural chain growth: restoring interval i replays i+1 links.
        assert_eq!(chain_len, i as usize + 1, "chain length at interval {i}");
        rows.push(RestartRow {
            retained: i as usize + 1,
            chain_len,
            chain_sim_ns: sim.as_nanos(),
            dedup_sim_ns: dedup_sim[i as usize],
        });
    }
    rt.shutdown();
    (outcomes, rows)
}

fn write_json(
    path: &str,
    full: &CheckpointOutcome,
    incr: &CheckpointOutcome,
    dedup: Option<(&[CheckpointOutcome], &[RestartRow])>,
) {
    let mut json = format!(
        "{{\n  \"state_bytes_per_rank\": {},\n  \"ranks\": {},\n  \"dirty_fraction_pct\": {},\n  \
         \"full\": {{ \"bytes_moved\": {}, \"sim_ns\": {} }},\n  \
         \"incremental\": {{ \"bytes_moved\": {}, \"sim_ns\": {} }},\n  \
         \"bytes_ratio\": {:.4},\n  \"sim_ratio\": {:.4}",
        RANK_STATE_BYTES,
        NPROCS,
        DIRTY_FRACTION_PCT,
        full.stats.bytes_moved,
        full.stats.sim_ns,
        incr.stats.bytes_moved,
        incr.stats.sim_ns,
        incr.stats.bytes_moved as f64 / full.stats.bytes_moved as f64,
        incr.stats.sim_ns as f64 / full.stats.sim_ns as f64,
    );
    if let Some((outcomes, rows)) = dedup {
        let newest = &outcomes[outcomes.len() - 1];
        json.push_str(&format!(
            ",\n  \"cross_rank_dedup_ratio\": {:.4},\n  \
             \"dedup\": {{ \"bytes_moved\": {}, \"sim_ns\": {}, \"dedup_ratio\": {:.4} }},\n  \
             \"restart_vs_retained\": [\n",
            outcomes[0].stats.dedup_ratio,
            newest.stats.bytes_moved,
            newest.stats.sim_ns,
            newest.stats.dedup_ratio,
        ));
        for (i, row) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"retained\": {}, \"chain_len\": {}, \"chain_sim_ns\": {}, \
                 \"dedup_sim_ns\": {}}}{}\n",
                row.retained,
                row.chain_len,
                row.chain_sim_ns,
                row.dedup_sim_ns,
                if i + 1 == rows.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]");
    }
    json.push_str("\n}\n");
    std::fs::write(path, json).expect("write BENCH_ckpt.json");
    println!("ckpt_incremental: wrote {path}");
}

fn ckpt_incremental(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("bench_ckpt_incremental_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let (_, full_second) = two_intervals(&base.join("full"), false);
    let (incr_first, incr_second) = two_intervals(&base.join("incr"), true);

    // Interval 0 is a full image in both configurations; interval 1 is
    // where the pipelines diverge. Both runs captured identical state.
    println!(
        "ckpt_incremental: full interval moved {} bytes (sim {} ns), \
         incremental interval moved {} bytes (sim {} ns)",
        full_second.stats.bytes_moved, full_second.stats.sim_ns,
        incr_second.stats.bytes_moved, incr_second.stats.sim_ns
    );
    assert!(
        incr_second.stats.bytes_moved * 4 < full_second.stats.bytes_moved,
        "a 10%-dirty incremental interval must move < 25% of the full-image bytes \
         (incremental={}, full={})",
        incr_second.stats.bytes_moved,
        full_second.stats.bytes_moved
    );
    assert!(
        incr_second.stats.sim_ns < full_second.stats.sim_ns,
        "simulated incremental checkpoint time must be strictly below the \
         full-image time (incremental={} ns, full={} ns)",
        incr_second.stats.sim_ns,
        full_second.stats.sim_ns
    );
    // The incremental run's own interval 0 is a full image: its cost must
    // sit in the full-image regime, not the delta regime.
    assert!(
        incr_first.stats.bytes_moved * 2 > full_second.stats.bytes_moved,
        "the incremental run's base interval must still be a full image \
         (base={}, full={})",
        incr_first.stats.bytes_moved,
        full_second.stats.bytes_moved
    );

    // Dedup-store schedule: cross-rank dedup on the SPMD workload and the
    // restart-latency-vs-retained-intervals comparison.
    let dedup = if std::env::var("CKPT_DEDUP_SMOKE").is_ok() {
        let (outcomes, rows) = dedup_vs_chain_restart(&base.join("dedup_vs_chain"));
        println!(
            "ckpt_incremental dedup: cross-rank ratio {:.2}, newest-interval ratio {:.2}",
            outcomes[0].stats.dedup_ratio,
            outcomes[outcomes.len() - 1].stats.dedup_ratio
        );
        assert!(
            outcomes[0].stats.dedup_ratio >= 2.0,
            "SPMD cross-rank dedup must reach 2x (got {:.2})",
            outcomes[0].stats.dedup_ratio
        );
        for row in &rows {
            println!(
                "ckpt_incremental restart_vs_retained: retained={} chain_len={} \
                 chain_sim_ns={} dedup_sim_ns={}",
                row.retained, row.chain_len, row.chain_sim_ns, row.dedup_sim_ns
            );
        }
        // Chain-replay restart cost climbs with every retained interval;
        // the dedup restart is a flat per-manifest fetch.
        for pair in rows.windows(2) {
            assert!(
                pair[1].chain_sim_ns > pair[0].chain_sim_ns,
                "chain replay cost must grow with retained intervals"
            );
        }
        let last = &rows[rows.len() - 1];
        assert!(
            last.dedup_sim_ns < last.chain_sim_ns,
            "dedup restart must undercut a {}-link chain replay (dedup={}, chain={})",
            last.chain_len,
            last.dedup_sim_ns,
            last.chain_sim_ns
        );
        Some((outcomes, rows))
    } else {
        None
    };

    if let Ok(path) = std::env::var("BENCH_CKPT_JSON") {
        write_json(
            &path,
            &full_second,
            &incr_second,
            dedup.as_ref().map(|(o, r)| (o.as_slice(), r.as_slice())),
        );
    }

    if std::env::var("CKPT_INCREMENTAL_SMOKE").is_ok() {
        println!("ckpt_incremental smoke: assertions passed (criterion sampling skipped)");
        return;
    }

    let mut group = c.benchmark_group("ckpt_incremental");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("full_interval", |b| {
        b.iter(|| two_intervals(&base.join("bench_full"), false))
    });
    group.bench_function("incremental_interval", |b| {
        b.iter(|| two_intervals(&base.join("bench_incr"), true))
    });
    group.finish();
}

criterion_group!(benches, ckpt_incremental);
criterion_main!(benches);
