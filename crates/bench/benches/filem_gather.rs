//! Ablation A5: FILEM aggregation cost — gathering N local snapshots to
//! stable storage, per component (`rsh_sim`: one session per file;
//! `oob_stream`: one session per tree). Wall time measures the real file
//! copies; the simulated wire costs per strategy — serialized (sum of
//! per-copy wire time) and critical-path (wall clock over the worker
//! pool) — are printed once, sequential vs a 4-lane parallel gather.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mca::McaParams;
use netsim::{LinkSpec, NetView, NodeId, Topology};
use orte::filem::{copy_all_parallel, CopyRequest, FilemComponent, OobStreamFilem, RshSimFilem};

fn make_local_snapshots(base: &std::path::Path, ranks: u32, bytes_per_rank: usize) -> Vec<CopyRequest> {
    let mut batch = Vec::new();
    for r in 0..ranks {
        let src = base.join(format!("src_rank{r}"));
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("snapshot_meta.data"), b"[snapshot]\ncrs = blcr_sim\n").unwrap();
        std::fs::write(src.join("ompi_context.bin"), vec![0xAB; bytes_per_rank]).unwrap();
        batch.push(CopyRequest {
            src,
            src_node: NodeId(r % 4),
            dest: base.join(format!("dest_rank{r}")),
            dest_node: NodeId(0),
        });
    }
    batch
}

fn filem_gather(c: &mut Criterion) {
    let topo = Topology::uniform(4, LinkSpec::gigabit_ethernet());
    let mut group = c.benchmark_group("filem_gather");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let params = McaParams::new();
    for &(ranks, size) in &[(4u32, 64usize << 10), (16, 64 << 10), (4, 1 << 20)] {
        let base = std::env::temp_dir().join(format!(
            "bench_filem_{ranks}_{size}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let batch = make_local_snapshots(&base, ranks, size);

        let rsh = RshSimFilem::from_params(&params);
        let stream = OobStreamFilem::from_params(&params);
        let net = NetView::uncontended(&topo);
        // Print the simulated wire costs once per configuration:
        // sequential gather, then the same batch over 4 parallel lanes.
        let r1 = rsh.copy_all(net, &batch).unwrap();
        let r2 = stream.copy_all(net, &batch).unwrap();
        println!(
            "filem sim cost ranks={ranks} bytes/rank={size}: \
             rsh_sim serialized={} critical_path={} \
             oob_stream serialized={} critical_path={}",
            r1.serialized_cost, r1.critical_path_cost, r2.serialized_cost, r2.critical_path_cost
        );
        let rp = copy_all_parallel(&rsh, net, &batch, 4).unwrap();
        assert!(rp.critical_path_cost <= rp.serialized_cost);
        println!(
            "filem sim cost ranks={ranks} bytes/rank={size}: \
             rsh_sim(4 lanes) serialized={} critical_path={}",
            rp.serialized_cost, rp.critical_path_cost
        );

        group.bench_with_input(
            BenchmarkId::new("rsh_sim", format!("{ranks}r_{size}B")),
            &batch,
            |b, batch| b.iter(|| rsh.copy_all(net, batch).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("oob_stream", format!("{ranks}r_{size}B")),
            &batch,
            |b, batch| b.iter(|| stream.copy_all(net, batch).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("rsh_sim_parallel4", format!("{ranks}r_{size}B")),
            &batch,
            |b, batch| b.iter(|| copy_all_parallel(&rsh, net, batch, 4).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, filem_gather);
criterion_main!(benches);
