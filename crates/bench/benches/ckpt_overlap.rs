//! Ablation A9: pipelined checkpoint commit — blocking vs early-release
//! app stall, and link-contention pricing for the parallel gather.
//!
//! Two deterministic assertions gate this bench:
//!
//! * **Stall**: at 8 ranks, the app-visible checkpoint stall with
//!   `snapc_early_release=true` must be ≤ 50% of the blocking stall
//!   (the early path charges no gather wall time at all — the gather
//!   runs concurrently with resumed app progress).
//! * **Contention**: k concurrent transfers on one shared link are each
//!   charged ~1/k bandwidth — exactly `latency + k × serialization` in
//!   the simulator's pricing model.
//!
//! `CKPT_OVERLAP_SMOKE=1` (used by `scripts/check.sh`) skips the
//! criterion sampling after the assertions. When `BENCH_COMMIT_JSON`
//! names a path, the blocking-vs-early comparison is written there as
//! JSON (`BENCH_commit.json`).

use std::sync::Arc;
use std::time::Duration;

use cr_core::inc::LayerInc;
use cr_core::request::{CheckpointOptions, CheckpointOutcome};
use cr_core::CommitState;
use criterion::{criterion_group, criterion_main, Criterion};
use mca::McaParams;
use netsim::{LinkMeter, LinkSpec, NetView, NodeId, Topology};
use opal::crs::{crs_framework, SelfCallbacks};
use orte::job::{launch, JobSpec, LaunchCtx};
use orte::Runtime;

const NODES: u32 = 4;
const NPROCS: u32 = 8;
const RANK_STATE_BYTES: usize = 256 << 10; // 256 KiB per rank

/// Spinning checkpointable job with a bulk `app` capture section (same
/// shape as the SNAPC test harness).
fn launch_job(rt: &Runtime, early_release: bool) -> orte::JobHandle {
    let params = Arc::new(McaParams::new());
    params.set(
        "snapc_early_release",
        if early_release { "true" } else { "false" },
    );
    let proc_main: orte::job::ProcMain = Arc::new(move |ctx: LaunchCtx| {
        let fw = crs_framework(SelfCallbacks::new());
        ctx.container
            .set_crs(Arc::from(fw.select(&ctx.params).unwrap()));
        let rank = ctx.name.rank.index() as u8;
        ctx.container.register_capture(
            "app",
            Arc::new(move || {
                Ok((0..RANK_STATE_BYTES)
                    .map(|i| (i as u8).wrapping_mul(29).wrapping_add(rank))
                    .collect())
            }),
        );
        ctx.container
            .install_opal_inc(LayerInc::new("opal", ctx.runtime.tracer().clone()));
        ctx.container.enable_checkpointing();
        while !ctx.terminate.load(std::sync::atomic::Ordering::SeqCst) {
            ctx.container.gate().checkpoint_point();
            std::thread::yield_now();
        }
        ctx.container.gate().retire();
    });
    let handle = launch(rt, JobSpec::new(NPROCS, params, proc_main)).expect("launch");
    for r in 0..NPROCS {
        while handle.container(cr_core::Rank(r)).crs().is_none() {
            std::thread::yield_now();
        }
    }
    handle
}

/// One checkpoint of an 8-rank job, blocking or early-release. Returns
/// the outcome after the write-behind gather (if any) has fully drained,
/// so both configurations leave an identical restorable snapshot behind.
fn one_checkpoint(base: &std::path::Path, early_release: bool) -> CheckpointOutcome {
    let rt = Runtime::new(Topology::uniform(NODES, LinkSpec::gigabit_ethernet()), base)
        .expect("runtime");
    let handle = launch_job(&rt, early_release);
    let outcome = handle
        .checkpoint(&CheckpointOptions::tool())
        .expect("checkpoint");
    handle.request_terminate();
    handle.join().expect("join");
    rt.drain_writebehind();
    rt.shutdown();
    outcome
}

/// Deterministic unit check of the fabric's contention pricing: with k
/// transfers registered on one link, each is charged exactly
/// `latency + k × serialization`.
fn assert_contention_pricing() {
    let topo = Topology::uniform(2, LinkSpec::gigabit_ethernet());
    let (a, b) = (NodeId(0), NodeId(1));
    let bytes = 1 << 20;
    let quiet = topo.cost(a, b, bytes);
    let serialization = quiet - topo.link(a, b).latency;
    let meter = LinkMeter::new();
    let net = NetView::contended(&topo, &meter);
    let mut slots = Vec::new();
    for k in 1..=8u64 {
        slots.push(meter.begin(a, b));
        let expected = topo.link(a, b).latency + serialization * k;
        assert_eq!(
            net.cost(a, b, bytes),
            expected,
            "k={k} concurrent transfers must each see ~1/k bandwidth"
        );
        assert_eq!(net.cost(a, b, bytes), topo.contended_cost(a, b, bytes, k as u32));
    }
    drop(slots);
    assert_eq!(net.cost(a, b, bytes), quiet, "quiet link back to full bandwidth");
    println!(
        "ckpt_overlap: contention pricing ok (quiet={quiet}, serialization={serialization})"
    );
}

fn write_json(path: &str, blocking: &CheckpointOutcome, early: &CheckpointOutcome) {
    let json = format!(
        "{{\n  \"ranks\": {},\n  \"state_bytes_per_rank\": {},\n  \
         \"blocking\": {{ \"stall_sim_ns\": {}, \"bytes_moved\": {}, \"commit\": \"{}\" }},\n  \
         \"early_release\": {{ \"stall_sim_ns\": {}, \"bytes_moved\": {}, \"commit\": \"{}\" }},\n  \
         \"stall_ratio\": {:.4}\n}}\n",
        NPROCS,
        RANK_STATE_BYTES,
        blocking.stats.sim_ns,
        blocking.stats.bytes_moved,
        blocking.stats.commit,
        early.stats.sim_ns,
        early.stats.bytes_moved,
        early.stats.commit,
        early.stats.sim_ns as f64 / blocking.stats.sim_ns as f64,
    );
    std::fs::write(path, json).expect("write BENCH_commit.json");
    println!("ckpt_overlap: wrote {path}");
}

fn ckpt_overlap(c: &mut Criterion) {
    assert_contention_pricing();

    let base = std::env::temp_dir().join(format!("bench_ckpt_overlap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let blocking = one_checkpoint(&base.join("blocking"), false);
    let early = one_checkpoint(&base.join("early"), true);

    println!(
        "ckpt_overlap: blocking stall {} ns ({}), early-release stall {} ns ({})",
        blocking.stats.sim_ns, blocking.stats.commit, early.stats.sim_ns, early.stats.commit
    );
    assert_eq!(blocking.stats.commit, CommitState::GlobalCommitted);
    assert_eq!(early.stats.commit, CommitState::LocalCommitted);
    assert!(blocking.stats.sim_ns > 0, "blocking gather must charge wall time");
    assert!(
        early.stats.sim_ns * 2 <= blocking.stats.sim_ns,
        "early-release stall must be ≤ 50% of the blocking stall at {NPROCS} ranks \
         (early={} ns, blocking={} ns)",
        early.stats.sim_ns,
        blocking.stats.sim_ns
    );

    if let Ok(path) = std::env::var("BENCH_COMMIT_JSON") {
        write_json(&path, &blocking, &early);
    }

    if std::env::var("CKPT_OVERLAP_SMOKE").is_ok() {
        println!("ckpt_overlap smoke: assertions passed (criterion sampling skipped)");
        return;
    }

    let mut group = c.benchmark_group("ckpt_overlap");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("blocking_commit", |b| {
        b.iter(|| one_checkpoint(&base.join("bench_blocking"), false))
    });
    group.bench_function("early_release_commit", |b| {
        b.iter(|| one_checkpoint(&base.join("bench_early"), true))
    });
    group.finish();
}

criterion_group!(benches, ckpt_overlap);
criterion_main!(benches);
