//! Benchmark harness crate.
//!
//! All content lives in `benches/` (one Criterion bench per experiment in
//! DESIGN.md's index):
//!
//! | bench | experiment |
//! |---|---|
//! | `netpipe_latency` | E1 — §7 latency overhead |
//! | `netpipe_bandwidth` | E2 — §7 bandwidth overhead |
//! | `snapc_checkpoint` | E3 — Figure 1 pipeline cost, full vs direct |
//! | `ckpt_scaling` | A1 — checkpoint latency vs rank count |
//! | `ckpt_size` | A2 — checkpoint latency vs snapshot size |
//! | `crcp_protocols` | A3 — coord vs logger vs none vs disabled |
//! | `drain_cost` | A4 — channel drain vs in-flight traffic |
//! | `filem_gather` | A5 — aggregation strategies |
//!
//! Run with `cargo bench` (all) or `cargo bench --bench netpipe_latency`.

#![forbid(unsafe_code)]
