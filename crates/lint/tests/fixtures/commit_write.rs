//! Fixture: a component minting `CommitState` values by hand.

use cr_core::CommitState;

pub struct Stats {
    pub commit: CommitState,
}

/// Violation: constructs a commit status the authority never recorded.
pub fn finish_interval() -> Stats {
    Stats {
        commit: CommitState::GlobalCommitted,
    }
}

/// Violation: a let-bound construction is still a construction.
pub fn assume_local() -> CommitState {
    let c = CommitState::LocalCommitted;
    c
}

/// Allowed: comparisons and match arms read a value, they don't mint one.
pub fn inspect(c: CommitState) -> bool {
    if c == CommitState::GlobalCommitted {
        return true;
    }
    match c {
        CommitState::GlobalCommitted => true,
        CommitState::LocalCommitted | CommitState::Uncommitted => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let s = Stats {
            commit: CommitState::Uncommitted,
        };
        assert!(!inspect(s.commit));
    }
}
