//! Fixture: every path takes `a` before `b` — a consistent total order,
//! so cr-lint must report nothing.

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn both(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    pub fn nested(&self) {
        let ga = self.a.lock();
        self.take_b();
        drop(ga);
    }

    fn take_b(&self) {
        let gb = self.b.lock();
        drop(gb);
    }
}
