//! Fixture registry: stands in for `mca/src/registry.rs` so that
//! `good_key` in `mca_use.rs` counts as registered.

pub const KNOWN_PARAMS: &[ParamDef] = &[ParamDef {
    key: "good_key",
    default: None,
    help: "a registered parameter",
}];
