//! Fixture: two lock acquisition paths in opposite order — a lock-order
//! cycle cr-lint must report. `forward` holds `a` while taking `b`;
//! `backward` holds `b` while taking `a` through a helper call, so the
//! cycle needs the inter-procedural summary to close.

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    pub fn backward(&self) {
        let gb = self.b.lock();
        self.take_a();
        drop(gb);
    }

    fn take_a(&self) {
        let ga = self.a.lock();
        drop(ga);
    }
}
