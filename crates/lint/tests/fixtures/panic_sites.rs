//! Fixture: one unwrap in library code (counted, ratcheted via the
//! baseline) and one in a test function (exempt).

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

#[test]
fn exempt_in_tests() {
    assert_eq!(risky(Some(3)), 3);
    let x: Option<u32> = Some(1);
    x.unwrap();
}
