//! Fixture: an `FtEvent` handler that hides protocol states behind a
//! wildcard arm — cr-lint must flag the `_` arm and the unnamed variants.

impl FtEvent for Thing {
    fn ft_event(&mut self, state: FtEventState) {
        match state {
            FtEventState::Checkpoint => self.prepare(),
            _ => {}
        }
    }
}
