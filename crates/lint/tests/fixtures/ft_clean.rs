//! Fixture: an `FtEvent` handler that names all four protocol states —
//! cr-lint must report nothing.

impl FtEvent for Thing {
    fn ft_event(&mut self, state: FtEventState) {
        match state {
            FtEventState::Checkpoint => self.prepare(),
            FtEventState::Continue => self.resume(),
            FtEventState::Restart => self.rebuild(),
            FtEventState::Error => self.abort(),
        }
    }
}
