//! Fixture registry standing in for `cr_core::events`.

pub struct TraceEventDef {
    pub phase: &'static str,
    pub help: &'static str,
}

pub const KNOWN_TRACE_EVENTS: &[TraceEventDef] = &[
    TraceEventDef {
        phase: "snapc.global.initiate",
        help: "global coordinator initiated a checkpoint interval",
    },
    TraceEventDef {
        phase: "demo.component.ready",
        help: "demo component finished initialising",
    },
];
