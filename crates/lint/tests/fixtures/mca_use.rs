//! Fixture: one registered and one unregistered MCA parameter read —
//! cr-lint must flag `made_up_key` and accept `good_key`.

pub fn read_params(params: &McaParams) -> u64 {
    let good: u64 = params.get_parsed_or("good_key", 1);
    let bad: u64 = params.get_parsed_or("made_up_key", 5);
    good + bad
}
