//! Fixture: commit status read back from the snapshot authority.

use cr_core::{CommitState, GlobalSnapshot};

pub struct Stats {
    pub commit: CommitState,
}

/// Clean: the status comes from `commit_state`, never a hand-built value.
pub fn finish_interval(global: &mut GlobalSnapshot, interval: u64) -> Stats {
    global.local_commit_interval(interval, &[]).ok();
    global.promote_interval(interval).ok();
    Stats {
        commit: global.commit_state(interval),
    }
}

/// Clean: comparing against the lattice is a read.
pub fn is_restartable(s: &Stats) -> bool {
    s.commit == CommitState::GlobalCommitted
}
