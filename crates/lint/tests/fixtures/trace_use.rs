//! Fixture: trace-event record sites, one typo'd and one registered.

use cr_core::Tracer;

/// Violation: "initate" is a typo of the registered "initiate" phase.
pub fn announce(tracer: &Tracer, interval: u64) {
    tracer.record("snapc.global.initate", &format!("interval {interval}"));
}

/// Clean: the phase appears in the registry fixture.
pub fn ready(tracer: &Tracer) {
    tracer.record("demo.component.ready", "ok");
}

/// Skipped: phases built at runtime are outside a token lint's reach.
pub fn dynamic(tracer: &Tracer, which: &str) {
    let phase = format!("demo.component.{which}");
    tracer.record(&phase, "ok");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let t = Tracer::new();
        t.record("totally.unregistered.phase", "fine in tests");
    }
}
