//! Integration tests: feed the fixture sources under `tests/fixtures/`
//! through [`lint::analyze_sources`] and assert each rule family fires on
//! its seeded violation and stays quiet on the clean variant.

use lint::baseline::Baseline;
use lint::report::Rule;
use lint::{analyze_sources, LintRun};

fn run(files: &[(&str, &str)]) -> LintRun {
    run_with_baseline(files, "")
}

fn run_with_baseline(files: &[(&str, &str)], baseline: &str) -> LintRun {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    let baseline = Baseline::parse(baseline).expect("fixture baseline parses");
    analyze_sources(&sources, &baseline)
}

#[test]
fn lock_order_cycle_detected() {
    let out = run(&[(
        "crates/demo/src/pair.rs",
        include_str!("fixtures/lock_cycle.rs"),
    )]);
    let cycles: Vec<_> = out
        .hard
        .iter()
        .filter(|f| f.rule == Rule::LockOrder)
        .collect();
    assert!(!cycles.is_empty(), "expected a lock-order cycle finding");
    let msg = &cycles[0].message;
    assert!(msg.contains("lock-order cycle"), "unexpected message: {msg}");
    // Both lock ids participate, and the inter-procedural edge through
    // `take_a` is attributed to the calling path.
    assert!(msg.contains("Pair.a") && msg.contains("Pair.b"), "{msg}");
    assert!(msg.contains("take_a"), "inter-proc edge missing: {msg}");
}

#[test]
fn lock_order_consistent_order_is_clean() {
    let out = run(&[(
        "crates/demo/src/pair.rs",
        include_str!("fixtures/lock_clean.rs"),
    )]);
    assert!(
        out.hard.iter().all(|f| f.rule != Rule::LockOrder),
        "clean fixture flagged: {:?}",
        out.hard
    );
}

#[test]
fn ft_event_wildcard_detected() {
    let out = run(&[(
        "crates/demo/src/handler.rs",
        include_str!("fixtures/ft_wildcard.rs"),
    )]);
    let ft: Vec<_> = out
        .hard
        .iter()
        .filter(|f| f.rule == Rule::FtEvent)
        .collect();
    assert!(
        ft.iter().any(|f| f.message.contains("wildcard `_` arm")),
        "wildcard arm not flagged: {ft:?}"
    );
    // The wildcard also hides the three unnamed variants.
    assert!(
        ft.iter().any(|f| f.message.contains("Restart")),
        "missing-variant finding absent: {ft:?}"
    );
}

#[test]
fn ft_event_full_match_is_clean() {
    let out = run(&[(
        "crates/demo/src/handler.rs",
        include_str!("fixtures/ft_clean.rs"),
    )]);
    assert!(
        out.hard.iter().all(|f| f.rule != Rule::FtEvent),
        "clean fixture flagged: {:?}",
        out.hard
    );
}

#[test]
fn mca_unregistered_key_detected() {
    let out = run(&[
        (
            "crates/demo/src/component.rs",
            include_str!("fixtures/mca_use.rs"),
        ),
        (
            "crates/mca/src/registry.rs",
            include_str!("fixtures/mca_registry.rs"),
        ),
    ]);
    let mca: Vec<_> = out
        .hard
        .iter()
        .filter(|f| f.rule == Rule::McaKeys)
        .collect();
    assert_eq!(mca.len(), 1, "exactly the bad key should fire: {mca:?}");
    assert!(mca[0].message.contains("made_up_key"), "{}", mca[0].message);
    assert!(
        !out.hard.iter().any(|f| f.message.contains("good_key")),
        "registered key must not be flagged"
    );
}

#[test]
fn commit_state_construction_detected() {
    let out = run(&[(
        "crates/demo/src/component.rs",
        include_str!("fixtures/commit_write.rs"),
    )]);
    let cs: Vec<_> = out
        .hard
        .iter()
        .filter(|f| f.rule == Rule::CommitState)
        .collect();
    // The struct-field construction and the let-bound construction fire;
    // the comparison, the match arms, and the test module do not.
    assert_eq!(cs.len(), 2, "expected both constructions: {cs:?}");
    assert!(
        cs.iter().any(|f| f.message.contains("GlobalCommitted")),
        "{cs:?}"
    );
    assert!(
        cs.iter().any(|f| f.message.contains("LocalCommitted")),
        "{cs:?}"
    );
    assert!(
        cs.iter().all(|f| f.message.contains("commit_state")),
        "message must point at the authority accessor: {cs:?}"
    );
}

#[test]
fn commit_state_authority_reads_are_clean() {
    let out = run(&[
        (
            "crates/demo/src/component.rs",
            include_str!("fixtures/commit_clean.rs"),
        ),
        // The authority file itself may mint values freely.
        (
            "crates/core/src/snapshot.rs",
            include_str!("fixtures/commit_write.rs"),
        ),
    ]);
    assert!(
        out.hard.iter().all(|f| f.rule != Rule::CommitState),
        "clean fixture flagged: {:?}",
        out.hard
    );
}

#[test]
fn trace_unregistered_phase_detected() {
    let out = run(&[
        (
            "crates/demo/src/component.rs",
            include_str!("fixtures/trace_use.rs"),
        ),
        (
            "crates/core/src/events.rs",
            include_str!("fixtures/trace_registry.rs"),
        ),
    ]);
    let tk: Vec<_> = out
        .hard
        .iter()
        .filter(|f| f.rule == Rule::TraceKeys)
        .collect();
    assert_eq!(tk.len(), 1, "exactly the typo'd phase should fire: {tk:?}");
    assert!(tk[0].message.contains("snapc.global.initate"), "{}", tk[0].message);
    assert!(
        tk[0].message.contains("KNOWN_TRACE_EVENTS"),
        "message must point at the registry: {}",
        tk[0].message
    );
    assert!(
        !out.hard.iter().any(|f| f.message.contains("demo.component.ready")),
        "registered phase must not be flagged"
    );
}

#[test]
fn trace_registered_phases_are_clean() {
    let out = run(&[
        (
            "crates/core/src/events.rs",
            include_str!("fixtures/trace_registry.rs"),
        ),
        (
            "crates/demo/src/ready_only.rs",
            "pub fn ready(tracer: &cr_core::Tracer) {\n    \
             tracer.record(\"demo.component.ready\", \"ok\");\n}\n",
        ),
    ]);
    assert!(
        out.hard.iter().all(|f| f.rule != Rule::TraceKeys),
        "clean fixture flagged: {:?}",
        out.hard
    );
}

#[test]
fn dead_event_detected() {
    // The registry fixture registers two phases; only one is ever
    // recorded (multiline call formatting, to prove token adjacency
    // spans newlines), so the other is a dead row.
    let out = run(&[
        (
            "crates/core/src/events.rs",
            include_str!("fixtures/trace_registry.rs"),
        ),
        (
            "crates/demo/src/ready_only.rs",
            "pub fn ready(tracer: &cr_core::Tracer) {\n    \
             tracer.record(\n        \"demo.component.ready\",\n        \"ok\",\n    );\n}\n",
        ),
    ]);
    let dead: Vec<_> = out
        .baselined
        .iter()
        .filter(|f| f.rule == Rule::DeadEvents)
        .collect();
    assert_eq!(dead.len(), 1, "exactly the unrecorded phase fires: {dead:?}");
    assert!(
        dead[0].message.contains("snapc.global.initiate"),
        "{}",
        dead[0].message
    );
    assert_eq!(
        dead[0].file, "crates/core/src/events.rs",
        "finding anchors at the registry row"
    );
    assert!(dead[0].line > 0);
    // With an empty baseline the dead row fails the run; a grandfathering
    // `lint.allow` entry ratchets it instead.
    assert!(out.violations().iter().any(|f| f.rule == Rule::DeadEvents));
    let out = run_with_baseline(
        &[
            (
                "crates/core/src/events.rs",
                include_str!("fixtures/trace_registry.rs"),
            ),
            (
                "crates/demo/src/ready_only.rs",
                "pub fn ready(tracer: &cr_core::Tracer) {\n    \
                 tracer.record(\"demo.component.ready\", \"ok\");\n}\n",
            ),
        ],
        "dead-events\tcrates/core/src/events.rs\t1\n",
    );
    assert!(out.violations().is_empty(), "{:?}", out.violations());
}

#[test]
fn recorded_everywhere_is_clean() {
    // Both registered phases have record sites — one in library code, one
    // only inside a test function, which still counts as alive.
    let out = run(&[
        (
            "crates/core/src/events.rs",
            include_str!("fixtures/trace_registry.rs"),
        ),
        (
            "crates/demo/src/both.rs",
            "pub fn ready(tracer: &cr_core::Tracer) {\n    \
             tracer.record(\"demo.component.ready\", \"ok\");\n}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn initiates() {\n        \
             let t = cr_core::Tracer::new();\n        \
             t.record(\"snapc.global.initiate\", \"interval 0\");\n    }\n}\n",
        ),
    ]);
    assert!(
        out.baselined.iter().all(|f| f.rule != Rule::DeadEvents),
        "clean fixture flagged: {:?}",
        out.baselined
    );
}

#[test]
fn panic_path_counted_and_ratcheted() {
    let files = &[(
        "crates/demo/src/risky.rs",
        include_str!("fixtures/panic_sites.rs"),
    )];

    // With an empty baseline the library-code unwrap is a violation; the
    // test-function unwraps are exempt.
    let out = run(files);
    assert_eq!(out.baselined.len(), 1, "{:?}", out.baselined);
    assert_eq!(out.baselined[0].rule, Rule::PanicPath);
    assert_eq!(out.violations().len(), 1);

    // A baseline that grandfathers the site makes the run clean.
    let out = run_with_baseline(files, "panic-path\tcrates/demo/src/risky.rs\t1\n");
    assert!(out.violations().is_empty(), "{:?}", out.violations());

    // A stale over-allowance is a ratchet note, never a violation.
    let out = run_with_baseline(files, "panic-path\tcrates/demo/src/risky.rs\t5\n");
    assert!(out.violations().is_empty());
    assert!(
        out.baseline_check.notes.iter().any(|n| n.contains("5")),
        "ratchet opportunity not noted: {:?}",
        out.baseline_check.notes
    );
}
