//! `cr-lint` binary: run the C/R invariant lints over the workspace.
//!
//! ```text
//! cr-lint [--root DIR] [--json] [--update-baseline]
//! ```
//!
//! Exit codes: 0 clean, 1 new violations, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::baseline::Baseline;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("cr-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: cr-lint [--root DIR] [--json] [--update-baseline]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cr-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = root.or_else(|| lint::find_root(&cwd)) else {
        eprintln!("cr-lint: workspace root not found (looked for Cargo.toml + crates/)");
        return ExitCode::from(2);
    };

    let allow_path = root.join("lint.allow");
    let baseline = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cr-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(),
    };

    let sources = match lint::workspace_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cr-lint: cannot read workspace sources: {e}");
            return ExitCode::from(2);
        }
    };

    let run = lint::analyze_sources(&sources, &baseline);

    if update_baseline {
        let text = Baseline::render_from(&run.baselined);
        if let Err(e) = std::fs::write(&allow_path, text) {
            eprintln!("cr-lint: cannot write {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
        println!(
            "cr-lint: baseline rewritten with {} sites ({})",
            run.baselined.len(),
            allow_path.display()
        );
    }

    let violations = run.violations();
    if json {
        println!("{}", lint::render_json(&violations));
    } else {
        println!("{}", lint::summary_line(&run));
        for note in &run.baseline_check.notes {
            println!("  note: {note}");
        }
        if !violations.is_empty() {
            print!("{}", lint::render_human(&violations));
        }
    }

    if violations.is_empty() || update_baseline {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
