//! Structural model of a source file: functions with their bodies, the
//! module path and impl context they live in, and whether they are test
//! code.
//!
//! Built by a single recursive pass over the token stream from
//! [`crate::lexer`]. The pass understands just enough item structure
//! (`mod`, `impl`, `fn`, attributes) to attribute every function body to a
//! qualified name; it does not descend into function bodies looking for
//! nested items (test helpers defined inside `#[test]` functions are test
//! code anyway and excluded wholesale).

use std::ops::Range;

use crate::lexer::{lex, Tok, TokKind};

/// One analyzed source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path (display + baseline key).
    pub rel: String,
    /// Token stream of the whole file.
    pub toks: Vec<Tok>,
    /// Every function found at item level (including inside impls and
    /// nested modules).
    pub fns: Vec<FnDecl>,
    /// Crate-qualified module path of the file, e.g. `ompi::pml`.
    pub module: String,
}

/// A function declaration with its body span.
#[derive(Debug)]
pub struct FnDecl {
    /// Bare function name.
    pub name: String,
    /// `module::[Type::]name` — used in reports and the call graph.
    pub qual: String,
    /// Impl self-type when declared inside an `impl` block.
    pub self_ty: Option<String>,
    /// Trait name when declared inside an `impl Trait for Type` block.
    pub trait_name: Option<String>,
    /// True when inside `#[cfg(test)]` / `#[test]` scope.
    pub is_test: bool,
    /// Token range of the signature, from after `fn name` to the body `{`.
    pub sig: Range<usize>,
    /// Token range of the body, inside (excluding) the braces.
    pub body: Range<usize>,
}

/// Derive the `crate::module` path for a file inside `crates/<name>/src/`.
fn module_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, tail) = match parts.as_slice() {
        ["crates", k, "src", rest @ ..] => ((*k).to_string(), rest.to_vec()),
        ["src", rest @ ..] => ("ompi_cr".to_string(), rest.to_vec()),
        _ => (rel.to_string(), Vec::new()),
    };
    let krate = krate.replace('-', "_");
    let mut out = krate;
    for t in tail {
        let stem = t.strip_suffix(".rs").unwrap_or(t);
        if stem != "lib" && stem != "main" && stem != "mod" {
            out.push_str("::");
            out.push_str(stem);
        }
    }
    out
}

/// Parse `src` (at workspace-relative path `rel`) into a [`FileModel`].
pub fn parse_file(rel: &str, src: &str) -> FileModel {
    let toks = lex(src);
    let module = module_of(rel);
    let mut fns = Vec::new();
    let mut p = Parser {
        toks: &toks,
        fns: &mut fns,
    };
    p.items(0, toks.len(), &module, None, None, false);
    FileModel {
        rel: rel.to_string(),
        toks,
        fns,
        module,
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    fns: &'a mut Vec<FnDecl>,
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    /// Index just past the `{ ... }` block whose opening brace is at `open`.
    fn skip_block(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if let Some(t) = self.tok(i) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            i += 1;
        }
        end
    }

    /// Walk items in `toks[i..end]`; `in_test` marks enclosing test scope.
    #[allow(clippy::too_many_arguments)]
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        module: &str,
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        in_test: bool,
    ) {
        let mut attr_test = false;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            if t.is_punct('#') {
                let (is_test_attr, next) = self.attr(i, end);
                attr_test |= is_test_attr;
                i = next;
            } else if t.is_ident("mod") {
                let name = self
                    .tok(i + 1)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                if self.tok(i + 2).is_some_and(|t| t.is_punct('{')) {
                    let after = self.skip_block(i + 2, end);
                    let sub = format!("{module}::{name}");
                    self.items(i + 3, after - 1, &sub, None, None, in_test || attr_test);
                    i = after;
                } else {
                    i += 3; // `mod name;`
                }
                attr_test = false;
            } else if t.is_ident("impl") {
                i = self.impl_block(i, end, module, in_test || attr_test);
                attr_test = false;
            } else if t.is_ident("fn") {
                i = self.fn_item(i, end, module, self_ty, trait_name, in_test || attr_test);
                attr_test = false;
            } else if t.is_punct('{') {
                // Brace of some other item (struct, enum, trait, const
                // block): skip it wholesale. Trait default bodies are not
                // analyzed — only impls carry behaviour we lint.
                i = self.skip_block(i, end);
                attr_test = false;
            } else {
                i += 1;
                if t.is_punct(';') {
                    attr_test = false;
                }
            }
        }
    }

    /// Parse a `#[...]` attribute at `i`; report whether it marks test code.
    fn attr(&self, i: usize, end: usize) -> (bool, usize) {
        // i points at `#`; accept `#![...]` too.
        let mut j = i + 1;
        if self.tok(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !self.tok(j).is_some_and(|t| t.is_punct('[')) {
            return (false, i + 1);
        }
        let mut depth = 0i32;
        let mut is_test = false;
        let mut saw_cfg = false;
        while j < end {
            let Some(t) = self.tok(j) else { break };
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return (is_test, j + 1);
                }
            } else if t.is_ident("cfg") {
                saw_cfg = true;
            } else if t.is_ident("test") {
                // `#[test]`, `#[cfg(test)]`, `#[tokio::test]`-style.
                is_test = true;
            } else if saw_cfg && t.is_ident("bench") {
                is_test = true;
            }
            j += 1;
        }
        (is_test, end)
    }

    /// Parse an `impl` header at `i` and recurse into its block.
    fn impl_block(&mut self, i: usize, end: usize, module: &str, in_test: bool) -> usize {
        // Collect path segments between `impl` and `{`, noting a `for`.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut seen_for = false;
        while j < end {
            let Some(t) = self.tok(j) else { break };
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 && t.is_punct('{') {
                break;
            } else if angle == 0 && t.is_ident("for") {
                seen_for = true;
            } else if angle == 0 && t.is_ident("where") {
                // Bounds may mention trait-like idents; stop collecting.
                while j < end && !self.tok(j).is_some_and(|t| t.is_punct('{')) {
                    j += 1;
                }
                break;
            } else if angle == 0 && t.kind == TokKind::Ident {
                if seen_for {
                    after_for.push(t.text.clone());
                } else {
                    before_for.push(t.text.clone());
                }
            }
            j += 1;
        }
        if j >= end {
            return end;
        }
        let (trait_name, self_ty) = if seen_for {
            (before_for.last().cloned(), after_for.last().cloned())
        } else {
            (None, before_for.last().cloned())
        };
        let after = self.skip_block(j, end);
        self.items(
            j + 1,
            after - 1,
            module,
            self_ty.as_deref(),
            trait_name.as_deref(),
            in_test,
        );
        after
    }

    /// Parse a `fn` item at `i` (token `fn`), record it, return next index.
    #[allow(clippy::too_many_arguments)]
    fn fn_item(
        &mut self,
        i: usize,
        end: usize,
        module: &str,
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        is_test: bool,
    ) -> usize {
        let Some(name_tok) = self.tok(i + 1) else {
            return i + 1;
        };
        if name_tok.kind != TokKind::Ident {
            return i + 1;
        }
        let name = name_tok.text.clone();
        // Find the body `{` (or `;` for a bodiless trait method) at zero
        // paren/angle/bracket depth.
        let mut j = i + 2;
        let (mut paren, mut angle, mut bracket) = (0i32, 0i32, 0i32);
        while j < end {
            let Some(t) = self.tok(j) else { break };
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                // `->` must not close an angle bracket.
                if !self.tok(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('-')) {
                    angle -= 1;
                }
            } else if paren == 0 && bracket == 0 && angle <= 0 && t.is_punct('{') {
                break;
            } else if paren == 0 && bracket == 0 && t.is_punct(';') {
                return j + 1; // trait method without body
            }
            j += 1;
        }
        if j >= end {
            return end;
        }
        let after = self.skip_block(j, end);
        let qual = match self_ty {
            Some(ty) => format!("{module}::{ty}::{name}"),
            None => format!("{module}::{name}"),
        };
        self.fns.push(FnDecl {
            name,
            qual,
            self_ty: self_ty.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            is_test,
            sig: (i + 2)..j,
            body: (j + 1)..(after - 1),
        });
        after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_functions_with_context() {
        let src = r#"
            pub fn free() {}
            impl Widget {
                fn method(&self) { self.x = 1; }
            }
            impl FtEvent for Widget {
                fn ft_event(&mut self, state: FtEventState) -> R { Ok(()) }
            }
            mod inner {
                pub fn nested() {}
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn a_test() {}
            }
        "#;
        let m = parse_file("crates/demo/src/w.rs", src);
        let names: Vec<(&str, Option<&str>, Option<&str>, bool)> = m
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.self_ty.as_deref(),
                    f.trait_name.as_deref(),
                    f.is_test,
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, None, false),
                ("method", Some("Widget"), None, false),
                ("ft_event", Some("Widget"), Some("FtEvent"), false),
                ("nested", None, None, false),
                ("a_test", None, None, true),
            ]
        );
        assert_eq!(m.fns[0].qual, "demo::w::free");
        assert_eq!(m.fns[1].qual, "demo::w::Widget::method");
        assert_eq!(m.fns[3].qual, "demo::w::inner::nested");
        assert_eq!(m.module, "demo::w");
    }

    #[test]
    fn generic_impl_headers() {
        let src = "impl<T: FtEvent + Send> FtEvent for OnceFt<T> { fn ft_event(&mut self) {} }";
        let m = parse_file("crates/demo/src/lib.rs", src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].self_ty.as_deref(), Some("OnceFt"));
        assert_eq!(m.fns[0].trait_name.as_deref(), Some("FtEvent"));
    }

    #[test]
    fn trait_decl_methods_skipped_bodies_spanned() {
        let src = "trait T { fn sig_only(&self); } fn real() { let x = 1; }";
        let m = parse_file("crates/demo/src/lib.rs", src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "real");
        let body: Vec<&str> = m.toks[m.fns[0].body.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["let", "x", "=", "1", ";"]);
    }

    #[test]
    fn return_type_arrow_does_not_confuse_sig() {
        let src = "fn f(x: Vec<u8>) -> Result<(), E> { body(); }";
        let m = parse_file("crates/demo/src/lib.rs", src);
        assert_eq!(m.fns.len(), 1);
        assert!(m.toks[m.fns[0].body.clone()].iter().any(|t| t.is_ident("body")));
    }

    #[test]
    fn root_package_module_path() {
        assert_eq!(module_of("src/lib.rs"), "ompi_cr");
        assert_eq!(module_of("crates/core/src/inc.rs"), "core::inc");
    }
}
