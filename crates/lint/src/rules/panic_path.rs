//! Rule `panic-path`: audit aborts hiding in non-test library code.
//!
//! A checkpoint/restart runtime must degrade into `CrError` results, not
//! process aborts: a panic inside the INC stack takes down the rank and
//! turns a recoverable checkpoint failure into a job failure. This rule
//! counts, per file:
//!
//! - `.unwrap()` / `.expect(...)` on `Option`/`Result`
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!` invocations
//! - direct index expressions `x[...]` (implicit bounds-check panics)
//!
//! Existing sites are grandfathered through the `lint.allow` baseline
//! (see [`crate::baseline`]); the count per (rule, file) may only go down.

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::report::{Finding, Rule};

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Run the rule over one file.
pub fn check(file: &FileModel, findings: &mut Vec<Finding>) {
    let toks = &file.toks;
    for f in &file.fns {
        if f.is_test {
            continue;
        }
        let mut i = f.body.start;
        while i < f.body.end {
            let t = &toks[i];
            // `.unwrap()` / `.expect(`
            if t.is_punct('.') {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    let called = toks.get(i + 2).is_some_and(|p| p.is_punct('('));
                    if called && name.text == "unwrap" {
                        findings.push(Finding::new(
                            Rule::PanicPath,
                            &file.rel,
                            name.line,
                            format!("`.unwrap()` in {}", f.qual),
                        ));
                    } else if called && name.text == "expect" {
                        findings.push(Finding::new(
                            Rule::PanicPath,
                            &file.rel,
                            name.line,
                            format!("`.expect(..)` in {}", f.qual),
                        ));
                    }
                }
            }
            // `panic!(` and friends
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                findings.push(Finding::new(
                    Rule::PanicPath,
                    &file.rel,
                    t.line,
                    format!("`{}!` in {}", t.text, f.qual),
                ));
            }
            // Direct indexing: `[` straight after an ident, `)` or `]`.
            // Array types/literals (`[u8; 4]`, `[0; n]`), attributes (`#[`),
            // and macro brackets (`vec![`) all follow other tokens.
            if t.is_punct('[') && i > f.body.start {
                let prev = &toks[i - 1];
                let indexes = (prev.kind == TokKind::Ident && !is_keyword(&prev.text))
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if indexes {
                    findings.push(Finding::new(
                        Rule::PanicPath,
                        &file.rel,
                        t.line,
                        format!("direct index `{}[..]` in {}", prev.text, f.qual),
                    ));
                }
            }
            i += 1;
        }
    }
}

/// Keywords that may precede `[` without forming an index expression
/// (`let [a, b] = ..` slice patterns, `in [..]` iteration).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let" | "in" | "return" | "if" | "else" | "match" | "mut" | "ref" | "move" | "as"
    )
}
