//! Rule `commit-state`: `CommitState` values are minted only by the
//! snapshot authority.
//!
//! The commit lattice (`Uncommitted < LocalCommitted < GlobalCommitted`)
//! is owned by `cr_core::snapshot`: every transition must go through
//! `GlobalSnapshot::{commit_interval, local_commit_interval,
//! promote_interval}` so the persisted metadata, the promotion
//! monotonicity checked by `cr-model` (see `crates/model/src/commit.rs`),
//! and the in-memory view can never disagree.  A component that builds a
//! `CommitState::…` value by hand is asserting a commit status the
//! authority never recorded — read it back with
//! `GlobalSnapshot::commit_state(interval)` instead.
//!
//! The rule flags `CommitState::Variant` path expressions in non-test
//! function bodies outside `cr_core::snapshot`.  Read-only contexts are
//! allowed: comparison operands (preceded by `==`/`!=`) and match-arm
//! patterns (followed by `=>` or `|`), which inspect a value the
//! authority produced rather than minting a new one.

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::report::{Finding, Rule};

/// The module that owns the lattice; constructions there are legitimate.
const AUTHORITY_FILE: &str = "core/src/snapshot.rs";

/// Check one file for hand-built `CommitState` values.
pub fn check(file: &FileModel, findings: &mut Vec<Finding>) {
    if file.rel.ends_with(AUTHORITY_FILE) {
        return;
    }
    let toks = &file.toks;
    for f in &file.fns {
        if f.is_test {
            continue;
        }
        let mut i = f.body.start;
        while i + 3 < f.body.end {
            let Some(t) = toks.get(i) else { break };
            if !(t.is_ident("CommitState")
                && toks.get(i + 1).is_some_and(|p| p.is_punct(':'))
                && toks.get(i + 2).is_some_and(|p| p.is_punct(':')))
            {
                i += 1;
                continue;
            }
            let Some(variant) = toks.get(i + 3).filter(|v| v.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            // Comparison operand: `== CommitState::X` / `!= CommitState::X`.
            let compared = i >= f.body.start + 2
                && toks.get(i - 1).is_some_and(|p| p.is_punct('='))
                && toks
                    .get(i - 2)
                    .is_some_and(|p| p.is_punct('=') || p.is_punct('!'));
            // Match-arm pattern: `CommitState::X => …` / `CommitState::X | …`.
            let pattern = toks.get(i + 4).is_some_and(|p| p.is_punct('|'))
                || (toks.get(i + 4).is_some_and(|p| p.is_punct('='))
                    && toks.get(i + 5).is_some_and(|p| p.is_punct('>')));
            if !compared && !pattern {
                findings.push(Finding::new(
                    Rule::CommitState,
                    &file.rel,
                    variant.line,
                    format!(
                        "CommitState::{} is constructed outside cr_core::snapshot: \
                         commit transitions must go through commit_interval / \
                         local_commit_interval / promote_interval; read the status \
                         back with GlobalSnapshot::commit_state(interval)",
                        variant.text
                    ),
                ));
            }
            i += 4;
        }
    }
}
