//! Rule `trace-keys`: trace-event phase strings must be registered.
//!
//! Tests and benchmarks assert the paper's coordination orderings via
//! `Tracer` phase strings (`snapc.*`, `opal.crs.*`, `ompi.crcp.*`, …), so
//! a typo'd phase at a `record` site silently breaks an ordering
//! assertion instead of failing loudly.  Mirroring the `mca-keys` rule:
//! every string literal passed as the first argument of a `.record(...)`
//! call in non-test code must appear as a `phase: "..."` row of
//! `cr_core::events::KNOWN_TRACE_EVENTS` (in `crates/core/src/events.rs`).
//!
//! Phases built at runtime (`format!`, variables) are outside a token
//! lint's reach and are skipped; doc-comment examples are stripped by the
//! lexer; test code is exempt by construction.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::report::{Finding, Rule};

/// The registration site scanned for `phase: "..."` rows.
const REGISTRY_FILE: &str = "core/src/events.rs";

/// A trace-record site observed in non-test code.
#[derive(Debug)]
pub struct UseSite {
    /// The phase string.
    pub phase: String,
    /// File.
    pub file: String,
    /// Line.
    pub line: u32,
}

/// Collect registered phases from one file (the events registry).
pub fn collect_registered(file: &FileModel, registered: &mut BTreeSet<String>) {
    if !file.rel.ends_with(REGISTRY_FILE) {
        return;
    }
    let toks = &file.toks;
    let mut i = 0;
    while i < toks.len() {
        // `phase: "..."` rows of the KNOWN_TRACE_EVENTS table.
        if toks.get(i).is_some_and(|t| t.is_ident("phase"))
            && toks.get(i + 1).is_some_and(|p| p.is_punct(':'))
        {
            if let Some(k) = toks.get(i + 2).filter(|k| k.kind == TokKind::Str) {
                registered.insert(k.text.clone());
            }
        }
        i += 1;
    }
}

/// Collect literal-phase `.record("...")` sites from non-test functions.
pub fn collect_uses(file: &FileModel, uses: &mut Vec<UseSite>) {
    let toks = &file.toks;
    for f in &file.fns {
        if f.is_test {
            continue;
        }
        let mut i = f.body.start;
        while i + 3 < f.body.end {
            let Some(t) = toks.get(i) else { break };
            if t.is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_ident("record"))
                && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
            {
                if let Some(k) = toks.get(i + 3).filter(|k| k.kind == TokKind::Str) {
                    uses.push(UseSite {
                        phase: k.text.clone(),
                        file: file.rel.clone(),
                        line: k.line,
                    });
                }
            }
            i += 1;
        }
    }
}

/// Turn unregistered record sites into findings.
pub fn check(registered: &BTreeSet<String>, uses: &[UseSite], findings: &mut Vec<Finding>) {
    for u in uses {
        if !registered.contains(&u.phase) {
            findings.push(Finding::new(
                Rule::TraceKeys,
                &u.file,
                u.line,
                format!(
                    "trace event {:?} is recorded here but never registered \
                     (add it to cr_core::events::KNOWN_TRACE_EVENTS)",
                    u.phase
                ),
            ));
        }
    }
}
