//! The seven rule families (see crate docs and DESIGN.md "Static analysis").

pub mod commit_state;
pub mod dead_events;
pub mod ft_event;
pub mod lock_order;
pub mod mca_keys;
pub mod panic_path;
pub mod trace_keys;
