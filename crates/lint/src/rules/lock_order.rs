//! Rule `lock-order`: the workspace-wide lock acquisition graph must be
//! acyclic.
//!
//! The C/R control path crosses every layer — `opal::container` (the INC
//! gate), `cr_core::inc` (the callback stack), `orte::job`/`snapc` (the
//! coordinator), `ompi::init`/`pml` (the interposed messaging layer) — and
//! each layer has its own mutexes. A checkpoint request travelling down
//! while message progress travels up is exactly the shape that deadlocks
//! when two functions take the same pair of locks in opposite orders.
//!
//! The analysis is source-level and conservative-but-heuristic:
//!
//! 1. **Acquisition sites.** A zero-argument `.lock()` / `.read()` /
//!    `.write()` call on a plain field path is an acquisition. The lock's
//!    identity is `module::Receiver.path` with `self` replaced by the impl
//!    type, so `self.entries.read()` inside `impl McaParams` in
//!    `crates/mca/src/params.rs` becomes `mca::params::McaParams.entries`.
//! 2. **Guard lifetime.** A guard bound with `let` (or assigned) is held to
//!    the end of its block; an unbound temporary is released at the next
//!    `;` of the same depth. `drop(guard)` is not modelled (conservative:
//!    the guard is considered held longer than it is).
//! 3. **Intra-procedural edges.** Acquiring `B` while `A` is held adds the
//!    edge `A -> B`.
//! 4. **Inter-procedural edges.** Calling `f()` while `A` is held adds
//!    `A -> L` for every lock `L` in `f`'s transitive acquisition summary
//!    (a fixpoint over the call graph). Calls resolve by qualified name
//!    (`Type::method`) or by bare name when the name is unique across the
//!    workspace; ambiguous names are skipped rather than over-linked.
//! 5. **Cycles.** Any strongly connected component with a cycle (including
//!    a self-edge, which is a re-entrant `Mutex` deadlock) is reported
//!    with the contributing edges and their source sites.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::model::{FileModel, FnDecl};
use crate::report::{Finding, Rule};

/// One analyzed function: the locks it takes and the calls it makes.
#[derive(Debug, Default)]
struct FnFacts {
    qual: String,
    /// Locks acquired directly in this function.
    locks: BTreeSet<String>,
    /// `(callee key, held locks at the call, line)`.
    calls: Vec<(CallKey, Vec<String>, u32)>,
    /// `(held lock, acquired lock, line)` intra-procedural edges.
    edges: Vec<(String, String, u32)>,
    file: String,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CallKey {
    /// `name(..)` or `.name(..)` — resolved only if globally unique.
    Bare(String),
    /// `Type::name(..)`.
    Qualified(String, String),
}

/// A directed edge in the lock graph with provenance.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: String,
}

/// Run the rule over all files at once (the graph is workspace-global).
pub fn check(files: &[FileModel], findings: &mut Vec<Finding>) {
    let mut facts: Vec<FnFacts> = Vec::new();
    for file in files {
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            facts.push(scan_fn(file, f));
        }
    }

    // Resolve bare names: name -> unique function index (or ambiguous).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (i, ff) in facts.iter().enumerate() {
        let name = ff.qual.rsplit("::").next().unwrap_or(&ff.qual);
        by_name.entry(name).or_default().push(i);
        let mut segs = ff.qual.rsplit("::");
        let fn_name = segs.next().unwrap_or_default().to_string();
        if let Some(ty) = segs.next() {
            by_qual.insert((ty.to_string(), fn_name), i);
        }
    }
    let resolve = |key: &CallKey| -> Option<usize> {
        match key {
            CallKey::Bare(name) => match by_name.get(name.as_str()) {
                Some(v) if v.len() == 1 => v.first().copied(),
                _ => None,
            },
            CallKey::Qualified(ty, name) => by_qual.get(&(ty.clone(), name.clone())).copied(),
        }
    };

    // Fixpoint: transitive lock summaries.
    let mut summaries: Vec<BTreeSet<String>> =
        facts.iter().map(|f| f.locks.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..facts.len() {
            let mut add: Vec<String> = Vec::new();
            for (key, _, _) in &facts[i].calls {
                if let Some(j) = resolve(key) {
                    for l in &summaries[j] {
                        if !summaries[i].contains(l) {
                            add.push(l.clone());
                        }
                    }
                }
            }
            for l in add {
                summaries[i].insert(l);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Assemble the edge set.
    let mut edges: Vec<Edge> = Vec::new();
    for ff in &facts {
        for (from, to, line) in &ff.edges {
            edges.push(Edge {
                from: from.clone(),
                to: to.clone(),
                file: ff.file.clone(),
                line: *line,
                via: ff.qual.clone(),
            });
        }
        for (key, held, line) in &ff.calls {
            if held.is_empty() {
                continue;
            }
            if let Some(j) = resolve(key) {
                for to in &summaries[j] {
                    for from in held {
                        edges.push(Edge {
                            from: from.clone(),
                            to: to.clone(),
                            file: ff.file.clone(),
                            line: *line,
                            via: format!("{} -> {}", ff.qual, facts[j].qual),
                        });
                    }
                }
            }
        }
    }

    report_cycles(&edges, findings);
}

/// SCCs via pairwise reachability (the lock graph is small); emit one
/// finding per cyclic component.
fn report_cycles(edges: &[Edge], findings: &mut Vec<Finding>) {
    let mut nodes: BTreeMap<&str, usize> = BTreeMap::new();
    let mut names: Vec<&str> = Vec::new();
    for e in edges {
        for n in [e.from.as_str(), e.to.as_str()] {
            if !nodes.contains_key(n) {
                nodes.insert(n, names.len());
                names.push(n);
            }
        }
    }
    let n = names.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        let (Some(&a), Some(&b)) = (nodes.get(e.from.as_str()), nodes.get(e.to.as_str()))
        else {
            continue;
        };
        if !adj[a].contains(&b) {
            adj[a].push(b);
        }
    }

    // reach[v] = set of nodes reachable from v (BFS per node).
    let mut reach: Vec<Vec<bool>> = Vec::with_capacity(n);
    for start in 0..n {
        let mut seen = vec![false; n];
        let mut queue: Vec<usize> = adj[start].clone();
        while let Some(v) = queue.pop() {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            queue.extend(adj[v].iter().copied());
        }
        reach.push(seen);
    }

    // Two nodes share a cyclic SCC when each reaches the other; a node with
    // a self-path (start reaches itself) is cyclic alone.
    let mut assigned = vec![false; n];
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for v in 0..n {
        if assigned[v] {
            continue;
        }
        let mut comp = vec![v];
        for w in (v + 1)..n {
            if !assigned[w] && reach[v][w] && reach[w][v] {
                comp.push(w);
            }
        }
        if comp.len() > 1 || reach[v][v] {
            for &m in &comp {
                assigned[m] = true;
            }
            sccs.push(comp);
        }
    }

    for comp in sccs {
        let members: BTreeSet<&str> = comp.iter().map(|&v| names[v]).collect();
        let mut detail = String::new();
        let mut first_site: Option<(&str, u32)> = None;
        for e in edges {
            if members.contains(e.from.as_str()) && members.contains(e.to.as_str()) {
                if first_site.is_none() {
                    first_site = Some((&e.file, e.line));
                }
                detail.push_str(&format!(
                    "\n    {} -> {} ({}:{}, via {})",
                    e.from, e.to, e.file, e.line, e.via
                ));
            }
        }
        let (file, line) = first_site.unwrap_or(("<graph>", 0));
        let member_list: Vec<&str> = members.into_iter().collect();
        findings.push(Finding::new(
            Rule::LockOrder,
            file,
            line,
            format!(
                "lock-order cycle between {{{}}}; contributing edges:{}",
                member_list.join(", "),
                detail
            ),
        ));
    }
}

/// Scan one function body for acquisitions, calls, and local edges.
fn scan_fn(file: &FileModel, f: &FnDecl) -> FnFacts {
    let toks = &file.toks;
    let mut facts = FnFacts {
        qual: f.qual.clone(),
        file: file.rel.clone(),
        ..FnFacts::default()
    };
    // Held locks: (id, depth, bound).
    let mut held: Vec<(String, i32, bool)> = Vec::new();
    let mut depth = 0i32;
    let mut i = f.body.start;
    while i < f.body.end {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            held.retain(|(_, d, _)| *d <= depth);
        } else if t.is_punct(';') {
            held.retain(|(_, d, bound)| *bound || *d != depth);
        } else if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|n| matches!(n.text.as_str(), "lock" | "read" | "write"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 3).is_some_and(|p| p.is_punct(')'))
        {
            if let Some(chain) = receiver_chain(file, f, i) {
                let id = lock_id(file, f, &chain);
                let line = toks[i + 1].line;
                for (h, _, _) in &held {
                    if h != &id {
                        facts.edges.push((h.clone(), id.clone(), line));
                    }
                }
                facts.locks.insert(id.clone());
                let bound = statement_binds(file, f, i, chain.len());
                held.push((id, depth, bound));
                i += 4;
                continue;
            }
        } else if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            && !not_a_call(&t.text)
        {
            // A call site. Calls with nothing held still feed the summary
            // fixpoint (transitive acquisition); calls with locks held also
            // generate inter-procedural edges.
            if let Some(key) = call_key(file, f, i, t.text.clone()) {
                let held_ids: Vec<String> =
                    held.iter().map(|(h, _, _)| h.clone()).collect();
                facts.calls.push((key, held_ids, t.line));
            }
        }
        i += 1;
    }
    facts
}

/// Identifiers followed by `(` that are not function calls: control-flow
/// keywords, common enum constructors, and the lock methods themselves.
fn not_a_call(name: &str) -> bool {
    matches!(
        name,
        "lock"
            | "read"
            | "write"
            | "Some"
            | "Ok"
            | "Err"
            | "if"
            | "while"
            | "match"
            | "return"
            | "for"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "fn"
            | "let"
            | "else"
            | "box"
    )
}

/// Classify the call at token `i` (an ident followed by `(`), or `None`
/// when the callee cannot be named safely.
///
/// Method calls on receivers other than `self` are deliberately *not*
/// resolved by bare name: `guard.clear()` or `handle.join()` would
/// otherwise shadow-match workspace methods that happen to share a name
/// with a std method (`Tracer::clear`, `JobHandle::join`), manufacturing
/// false cycles. The inter-procedural graph flows through free functions,
/// `Type::method(..)` calls, and `self.method(..)` calls, which cover the
/// C/R control path.
fn call_key(file: &FileModel, f: &FnDecl, i: usize, name: String) -> Option<CallKey> {
    let toks = &file.toks;
    // `Type::name(` — two colons then a type ident before the name.
    if i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].kind == TokKind::Ident
    {
        let ty = toks[i - 3].text.clone();
        if ty == "Self" {
            if let Some(st) = &f.self_ty {
                return Some(CallKey::Qualified(st.clone(), name));
            }
        }
        return Some(CallKey::Qualified(ty, name));
    }
    if i >= 1 && toks[i - 1].is_punct('.') {
        // `self.name(` — a method of the impl type; anything else is an
        // unresolvable method call.
        if i >= 2 && toks[i - 2].is_ident("self") {
            if let Some(st) = &f.self_ty {
                return Some(CallKey::Qualified(st.clone(), name));
            }
        }
        return None;
    }
    Some(CallKey::Bare(name))
}

/// Walk backwards from the `.` at `i` collecting a plain `a.b.c` chain.
/// Returns `None` when the receiver is not a simple field path (e.g. a call
/// result like `stdin().lock()`).
fn receiver_chain(file: &FileModel, f: &FnDecl, dot: usize) -> Option<Vec<String>> {
    let toks = &file.toks;
    let mut chain: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        // Expect an ident before the current `.`.
        if j == 0 || j - 1 < f.body.start {
            break;
        }
        let id = &toks[j - 1];
        if id.kind != TokKind::Ident {
            return if chain.is_empty() { None } else { Some(chain) };
        }
        chain.insert(0, id.text.clone());
        // Another `.` before it continues the chain.
        if j >= 2 && toks[j - 2].is_punct('.') && j - 2 > f.body.start {
            j -= 2;
        } else {
            break;
        }
    }
    if chain.is_empty() {
        None
    } else {
        Some(chain)
    }
}

/// Lock identity from a receiver chain (see module docs, point 1).
fn lock_id(file: &FileModel, f: &FnDecl, chain: &[String]) -> String {
    let mut parts: Vec<String> = chain.to_vec();
    if parts.first().map(String::as_str) == Some("self") {
        let ty = f.self_ty.clone().unwrap_or_else(|| "Self".to_string());
        parts[0] = ty;
    }
    format!("{}::{}", file.module, parts.join("."))
}

/// Does the statement containing the acquisition bind its guard (`let` /
/// assignment), meaning the guard lives to end of scope?
fn statement_binds(file: &FileModel, f: &FnDecl, dot: usize, chain_len: usize) -> bool {
    let toks = &file.toks;
    // Walk back past the receiver chain, then to the statement start.
    let mut j = dot.saturating_sub(chain_len * 2 - 1);
    while j > f.body.start {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") || t.is_punct('=') {
            return true;
        }
        j -= 1;
    }
    false
}
