//! Rule `mca-keys`: MCA parameter keys read at use sites must appear at a
//! registration site.
//!
//! Open MPI registers every MCA parameter (`mca_base_param_reg_*`) so that
//! `ompi_info` can enumerate it and a typo'd `--mca` key is diagnosable.
//! The reproduction keeps the same discipline: a string key passed to a
//! typed accessor (`get_parsed_or`, `get_bool_or`, `get_with_source`, or a
//! single-argument `.get("...")`) in non-test code must be one of:
//!
//! - the first argument of a `.default_value("key", ..)` call, or
//! - a `key: "..."` field of the `KNOWN_PARAMS` table in
//!   `crates/mca/src/registry.rs`.
//!
//! Two-argument `.get(section, key)` calls (metadata documents) are not
//! parameter reads and are ignored.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::report::{Finding, Rule};

/// A parameter use site observed in non-test code.
#[derive(Debug)]
pub struct UseSite {
    /// The string key.
    pub key: String,
    /// File.
    pub file: String,
    /// Line.
    pub line: u32,
}

/// Collect registration sites (keys) from one file.
pub fn collect_registered(file: &FileModel, registered: &mut BTreeSet<String>) {
    let toks = &file.toks;
    let registry_file = file.rel.ends_with("mca/src/registry.rs");
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        // `.default_value("key"` anywhere.
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_ident("default_value"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            if let Some(k) = toks.get(i + 3).filter(|k| k.kind == TokKind::Str) {
                registered.insert(k.text.clone());
            }
        }
        // `key: "..."` fields of the registry table.
        if registry_file
            && t.is_ident("key")
            && toks.get(i + 1).is_some_and(|p| p.is_punct(':'))
        {
            if let Some(k) = toks.get(i + 2).filter(|k| k.kind == TokKind::Str) {
                registered.insert(k.text.clone());
            }
        }
        i += 1;
    }
}

/// Collect parameter use sites from one file's non-test functions.
pub fn collect_uses(file: &FileModel, uses: &mut Vec<UseSite>) {
    let toks = &file.toks;
    for f in &file.fns {
        if f.is_test {
            continue;
        }
        let mut i = f.body.start;
        while i + 3 < f.body.end {
            let t = &toks[i];
            if !t.is_punct('.') {
                i += 1;
                continue;
            }
            let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            let open = toks.get(i + 2).is_some_and(|p| p.is_punct('('));
            let lit = toks.get(i + 3).filter(|k| k.kind == TokKind::Str);
            if let (true, Some(k)) = (open, lit) {
                let typed = matches!(
                    name.text.as_str(),
                    "get_parsed_or" | "get_bool_or" | "get_with_source"
                );
                // `.get("key")` only with exactly one argument: metadata
                // documents use `.get(section, key)`.
                let single_get = name.text == "get"
                    && toks.get(i + 4).is_some_and(|p| p.is_punct(')'));
                if typed || single_get {
                    uses.push(UseSite {
                        key: k.text.clone(),
                        file: file.rel.clone(),
                        line: k.line,
                    });
                }
            }
            i += 1;
        }
    }
}

/// Turn unregistered use sites into findings.
pub fn check(registered: &BTreeSet<String>, uses: &[UseSite], findings: &mut Vec<Finding>) {
    for u in uses {
        if !registered.contains(&u.key) {
            findings.push(Finding::new(
                Rule::McaKeys,
                &u.file,
                u.line,
                format!(
                    "MCA parameter {:?} is read here but never registered \
                     (add it to mca::registry::KNOWN_PARAMS)",
                    u.key
                ),
            ));
        }
    }
}
