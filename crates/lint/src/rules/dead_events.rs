//! Rule `dead-events`: every registered trace event must be recorded.
//!
//! The inverse of `trace-keys`.  `cr_core::events::KNOWN_TRACE_EVENTS` is
//! the contract surface that `cr-replay` and the journal tooling replay
//! against; a registered phase that no `.record(...)` site emits is dead
//! weight that silently rots — replay rule tables and ordering assertions
//! keep referencing it while no run can ever produce it.  Every `phase:
//! "..."` row of the registry (`crates/core/src/events.rs`) must therefore
//! have at least one literal `.record("...")` site somewhere in the
//! workspace sources — test functions count, since an event exercised
//! only by tests is still alive.
//!
//! Phases recorded through runtime-built strings (`format!`, variables)
//! are invisible to a token lint; if one ever exists, grandfather it
//! through `lint.allow` (`dead-events<TAB>crates/core/src/events.rs<TAB>n`)
//! — the rule is ratcheted, not hard, for exactly that escape hatch.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::report::{Finding, Rule};

/// The registration site scanned for `phase: "..."` rows.
const REGISTRY_FILE: &str = "core/src/events.rs";

/// One `phase: "..."` row of the registry, with its location.
#[derive(Debug)]
pub struct RegisteredEvent {
    /// The phase string.
    pub phase: String,
    /// File (the registry).
    pub file: String,
    /// Line of the phase row.
    pub line: u32,
}

/// Collect registry rows with their lines from the events registry file.
pub fn collect_registered(file: &FileModel, registered: &mut Vec<RegisteredEvent>) {
    if !file.rel.ends_with(REGISTRY_FILE) {
        return;
    }
    let toks = &file.toks;
    let mut i = 0;
    while i < toks.len() {
        if toks.get(i).is_some_and(|t| t.is_ident("phase"))
            && toks.get(i + 1).is_some_and(|p| p.is_punct(':'))
        {
            if let Some(k) = toks.get(i + 2).filter(|k| k.kind == TokKind::Str) {
                registered.push(RegisteredEvent {
                    phase: k.text.clone(),
                    file: file.rel.clone(),
                    line: k.line,
                });
            }
        }
        i += 1;
    }
}

/// Collect every literal phase passed to a `.record(...)` call, anywhere
/// in the file — test functions included (the lexer strips doc-comment
/// examples, and token adjacency spans newlines, so multiline call
/// formatting is matched too).
pub fn collect_recorded(file: &FileModel, recorded: &mut BTreeSet<String>) {
    let toks = &file.toks;
    let mut i = 0;
    while i + 3 < toks.len() {
        let Some(t) = toks.get(i) else { break };
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_ident("record"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            if let Some(k) = toks.get(i + 3).filter(|k| k.kind == TokKind::Str) {
                recorded.insert(k.text.clone());
            }
        }
        i += 1;
    }
}

/// Turn registered-but-never-recorded phases into findings, anchored at
/// the registry row so the fix site is one click away.
pub fn check(
    registered: &[RegisteredEvent],
    recorded: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for r in registered {
        if !recorded.contains(&r.phase) {
            findings.push(Finding::new(
                Rule::DeadEvents,
                &r.file,
                r.line,
                format!(
                    "trace event {:?} is registered here but never recorded \
                     anywhere (remove the registry row or add the emission)",
                    r.phase
                ),
            ));
        }
    }
}
