//! Rule `ft-event`: every `FtEvent` implementation must consciously handle
//! all four `FtEventState` protocol states.
//!
//! The INC contract (paper §4.2: Checkpoint / Continue / Restart, plus the
//! Error rollback state) is easy to silently violate by adding a variant
//! arm-less `match`: a `_ =>` wildcard compiles clean when a fifth state is
//! added, and a catch-all binding (`other => ...`) hides which states a
//! subsystem actually thought about. The rule:
//!
//! - An impl that matches on its state parameter must name every variant
//!   (`Checkpoint`, `Continue`, `Restart`, `Error`); `_` arms and bare
//!   binding arms are violations.
//! - An impl that never matches handles all states uniformly (delegation,
//!   logging); that is allowed, but the state parameter must not be
//!   discarded with a leading-underscore name.

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::report::{Finding, Rule};

const VARIANTS: [&str; 4] = ["Checkpoint", "Continue", "Restart", "Error"];

/// Run the rule over one file.
pub fn check(file: &FileModel, findings: &mut Vec<Finding>) {
    for f in &file.fns {
        if f.is_test || f.name != "ft_event" || f.trait_name.as_deref() != Some("FtEvent") {
            continue;
        }
        let who = f.self_ty.as_deref().unwrap_or("<unknown>");
        let toks = &file.toks;
        let line_of = |i: usize| toks.get(i).map_or(0, |t| t.line);

        // State parameter: first ident after the `,` following `self`.
        let state_param = param_after_self(file, f.sig.clone());
        let Some(param) = state_param else { continue };

        // Find `match <param>` in the body.
        let mut match_open = None;
        let mut i = f.body.start;
        while i < f.body.end {
            if toks[i].is_ident("match")
                && toks.get(i + 1).is_some_and(|t| t.is_ident(&param))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
            {
                match_open = Some(i + 2);
                break;
            }
            i += 1;
        }

        let Some(open) = match_open else {
            if param.starts_with('_') {
                findings.push(Finding::new(
                    Rule::FtEvent,
                    &file.rel,
                    line_of(f.body.start.saturating_sub(1)),
                    format!(
                        "impl FtEvent for {who}: state parameter `{param}` is discarded; \
                         every protocol state must be consciously handled"
                    ),
                ));
            }
            continue;
        };

        // Walk arms at depth 1 of the match block.
        let mut seen: Vec<&str> = Vec::new();
        let mut depth = 1i32;
        let (mut paren, mut bracket) = (0i32, 0i32);
        let mut arm: Vec<usize> = Vec::new(); // token indices of current pattern
        let mut in_pattern = true;
        let mut j = open + 1;
        while j < f.body.end && depth > 0 {
            let t = &toks[j];
            if t.is_punct('{') {
                if depth == 1 && !in_pattern {
                    // arm body block
                }
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 1 && !in_pattern {
                    // end of a `{ ... }` arm body
                    in_pattern = true;
                    arm.clear();
                }
            } else if depth == 1 && paren == 0 && bracket == 0 {
                if t.is_punct('(') {
                    paren += 1;
                    if in_pattern {
                        arm.push(j);
                    }
                } else if t.is_punct('[') {
                    bracket += 1;
                } else if in_pattern
                    && t.is_punct('=')
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('>'))
                {
                    check_pattern(file, &arm, who, &mut seen, findings);
                    arm.clear();
                    in_pattern = false;
                    j += 1; // skip `>`
                } else if !in_pattern && t.is_punct(',') {
                    in_pattern = true;
                } else if in_pattern {
                    arm.push(j);
                }
            } else if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            }
            j += 1;
        }

        let missing: Vec<&str> = VARIANTS
            .iter()
            .filter(|v| !seen.contains(v))
            .copied()
            .collect();
        if !missing.is_empty() {
            findings.push(Finding::new(
                Rule::FtEvent,
                &file.rel,
                line_of(open),
                format!(
                    "impl FtEvent for {who}: match on `{param}` does not name \
                     FtEventState::{{{}}}",
                    missing.join(", ")
                ),
            ));
        }
    }
}

/// Extract the name of the parameter after `&mut self`.
fn param_after_self(file: &FileModel, sig: std::ops::Range<usize>) -> Option<String> {
    let toks = &file.toks;
    let mut i = sig.start;
    let mut seen_comma = false;
    while i < sig.end {
        let t = &toks[i];
        if t.is_punct(',') {
            seen_comma = true;
        } else if seen_comma && t.kind == TokKind::Ident {
            return Some(t.text.clone());
        }
        i += 1;
    }
    None
}

/// Inspect one arm pattern: record named variants, flag `_` and catch-alls.
fn check_pattern(
    file: &FileModel,
    arm: &[usize],
    who: &str,
    seen: &mut Vec<&'static str>,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    // Pattern tokens before any `if` guard.
    let guard_at = arm
        .iter()
        .position(|&i| toks[i].is_ident("if"))
        .unwrap_or(arm.len());
    let pat = &arm[..guard_at];
    let line = pat.first().or(arm.first()).map_or(0, |&i| toks[i].line);

    let mut named_any = false;
    for &i in pat {
        for v in VARIANTS {
            if toks[i].is_ident(v) {
                if !seen.contains(&v) {
                    seen.push(v);
                }
                named_any = true;
            }
        }
        if toks[i].is_ident("_") || toks[i].is_punct('_') {
            findings.push(Finding::new(
                Rule::FtEvent,
                &file.rel,
                line,
                format!(
                    "impl FtEvent for {who}: wildcard `_` arm hides protocol states; \
                     name each FtEventState variant"
                ),
            ));
            return;
        }
    }
    // A pure binding arm (single ident, no path, no variant name) is a
    // catch-all: `other => ...`.
    if !named_any {
        let idents: Vec<&str> = pat
            .iter()
            .filter(|&&i| toks[i].kind == TokKind::Ident)
            .map(|&i| toks[i].text.as_str())
            .collect();
        if idents.len() == 1 && !pat.iter().any(|&i| toks[i].is_punct(':')) {
            findings.push(Finding::new(
                Rule::FtEvent,
                &file.rel,
                line,
                format!(
                    "impl FtEvent for {who}: catch-all binding `{}` hides protocol states; \
                     name each FtEventState variant",
                    idents.first().copied().unwrap_or("_")
                ),
            ));
        }
    }
}
