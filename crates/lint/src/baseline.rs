//! The `lint.allow` baseline: a per-(rule, file) count ratchet.
//!
//! Pre-existing panic paths are grandfathered: the committed `lint.allow`
//! records how many sites each file is allowed. A file may only ever get
//! better — counts above the baseline are new violations and fail the run;
//! counts below it are reported as ratchet opportunities (and
//! `--update-baseline` rewrites the file to the lower numbers).
//!
//! Format: one `rule<TAB>path<TAB>count` per line, `#` comments allowed.

use std::collections::BTreeMap;

use crate::report::Finding;

/// Parsed baseline: (rule name, file) -> allowed count.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// Outcome of checking findings against the baseline.
#[derive(Debug)]
pub struct BaselineCheck {
    /// Findings in excess of the allowance, per (rule, file) — these fail
    /// the run. Contains every finding of an over-budget file so the user
    /// sees all candidate sites (line-level attribution of "which one is
    /// new" is not possible with count ratchets).
    pub new_violations: Vec<Finding>,
    /// Human notes: files now under budget, stale entries.
    pub notes: Vec<String>,
}

impl Baseline {
    /// Parse the `lint.allow` text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(rule), Some(path), Some(count)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "lint.allow:{}: expected `rule<TAB>path<TAB>count`, got {:?}",
                    lineno + 1,
                    raw
                ));
            };
            let count: usize = count.trim().parse().map_err(|_| {
                format!("lint.allow:{}: bad count {:?}", lineno + 1, count)
            })?;
            entries.insert((rule.to_string(), path.to_string()), count);
        }
        Ok(Baseline { entries })
    }

    /// Compare `findings` (all from baselined rules) against the allowance.
    pub fn check(&self, findings: &[Finding]) -> BaselineCheck {
        let mut by_file: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            by_file
                .entry((f.rule.name().to_string(), f.file.clone()))
                .or_default()
                .push(f);
        }
        let mut new_violations = Vec::new();
        let mut notes = Vec::new();
        for (key, sites) in &by_file {
            let allowed = self.entries.get(key).copied().unwrap_or(0);
            if sites.len() > allowed {
                notes.push(format!(
                    "{}: {} has {} sites, baseline allows {}",
                    key.0,
                    key.1,
                    sites.len(),
                    allowed
                ));
                new_violations.extend(sites.iter().map(|f| (*f).clone()));
            } else if sites.len() < allowed {
                notes.push(format!(
                    "ratchet: {} in {} dropped {} -> {}; run with --update-baseline",
                    key.0,
                    key.1,
                    allowed,
                    sites.len()
                ));
            }
        }
        for (key, allowed) in &self.entries {
            if *allowed > 0 && !by_file.contains_key(key) {
                notes.push(format!(
                    "ratchet: {} in {} dropped {} -> 0; run with --update-baseline",
                    key.0, key.1, allowed
                ));
            }
        }
        BaselineCheck {
            new_violations,
            notes,
        }
    }

    /// Serialize the current findings as a fresh baseline.
    pub fn render_from(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.name().to_string(), f.file.clone()))
                .or_default() += 1;
        }
        let mut out = String::from(
            "# cr-lint baseline: per-file allowance of grandfathered sites.\n\
             # Counts may only decrease; regenerate with `cr-lint --update-baseline`.\n\
             # Format: rule<TAB>path<TAB>count\n",
        );
        for ((rule, path), count) in counts {
            out.push_str(&format!("{rule}\t{path}\t{count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Rule;

    fn f(file: &str, line: u32) -> Finding {
        Finding::new(Rule::PanicPath, file, line, "x")
    }

    #[test]
    fn over_budget_fails_under_budget_notes() {
        let base = Baseline::parse("panic-path\ta.rs\t1\npanic-path\tb.rs\t2\n")
            .expect("parses");
        let findings = vec![f("a.rs", 1), f("a.rs", 2), f("b.rs", 9)];
        let check = base.check(&findings);
        assert_eq!(check.new_violations.len(), 2, "a.rs over budget");
        assert!(check.notes.iter().any(|n| n.contains("b.rs") && n.contains("ratchet")));
    }

    #[test]
    fn stale_entries_reported() {
        let base = Baseline::parse("panic-path\tgone.rs\t3\n").expect("parses");
        let check = base.check(&[]);
        assert!(check.new_violations.is_empty());
        assert!(check.notes.iter().any(|n| n.contains("gone.rs")));
    }

    #[test]
    fn roundtrip_render_parse() {
        let findings = vec![f("a.rs", 1), f("a.rs", 2)];
        let text = Baseline::render_from(&findings);
        let base = Baseline::parse(&text).expect("parses");
        assert!(base.check(&findings).new_violations.is_empty());
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Baseline::parse("panic-path a.rs 1\n").is_err(), "spaces not tabs");
        assert!(Baseline::parse("panic-path\ta.rs\tmany\n").is_err());
    }
}
