//! A minimal Rust tokenizer, sufficient for source-level lint rules.
//!
//! This is deliberately not a full lexer: it produces identifiers, string
//! and char literals, numbers, lifetimes, and single-character punctuation,
//! with comments (line, block, doc) stripped. Multi-character operators
//! arrive as consecutive punctuation tokens; rules match the sequences they
//! care about (`=` `>` for a match arm, `:` `:` for a path separator).
//! Line numbers are 1-based and attached to every token so findings can be
//! reported as `file:line`.

/// The coarse class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident,
    /// Single punctuation character (`.`, `{`, `=`, ...).
    Punct,
    /// String literal (text excludes the quotes; escapes are left raw).
    Str,
    /// Character literal.
    Char,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// Lifetime such as `'a` (text excludes the leading quote).
    Lifetime,
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.chars().next() == Some(c)
    }

    /// True when this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// Tokenize `src`, stripping comments.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Byte accessor that cannot panic on EOF.
    let at = |i: usize| -> u8 { b.get(i).copied().unwrap_or(0) };

    while i < b.len() {
        let c = at(i);
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if at(i + 1) == b'/' => {
                while i < b.len() && at(i) != b'\n' {
                    i += 1;
                }
            }
            b'/' if at(i + 1) == b'*' => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if at(i) == b'/' && at(i + 1) == b'*' {
                        depth += 1;
                        i += 2;
                    } else if at(i) == b'*' && at(i + 1) == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if at(i) == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (text, next, nl) = scan_string(b, i + 1);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line += nl;
                i = next;
            }
            b'b' | b'r' if is_string_start(b, i) => {
                let (skip, hashes) = string_prefix(b, i);
                if hashes == 0 {
                    let (text, next, nl) = scan_string(b, skip);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line,
                    });
                    line += nl;
                    i = next;
                } else {
                    let (text, next, nl) = scan_raw_string(b, skip, hashes);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line,
                    });
                    line += nl;
                    i = next;
                }
            }
            b'\'' => {
                // Distinguish a char literal from a lifetime: a char closes
                // with a quote shortly after; a lifetime never closes.
                if let Some((text, next)) = scan_char(b, i + 1) {
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text,
                        line,
                    });
                    i = next;
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && is_ident_byte(at(j)) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: String::from_utf8_lossy(&b[start..j]).into_owned(),
                        line,
                    });
                    i = j;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (is_ident_byte(at(i)) || at(i) == b'.') {
                    // `0..10` range: stop before a second consecutive dot.
                    if at(i) == b'.' && at(i + 1) == b'.' {
                        break;
                    }
                    // `1.method()` style: a dot followed by a non-digit is
                    // punctuation, not part of the number.
                    if at(i) == b'.' && !at(i + 1).is_ascii_digit() {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_byte(at(i)) {
                    i += 1;
                }
                let mut text = String::from_utf8_lossy(&b[start..i]).into_owned();
                // Raw identifier `r#name`: strip the prefix so rules see the
                // plain name.
                if text == "r" && at(i) == b'#' && is_ident_start(at(i + 1)) {
                    let s2 = i + 1;
                    let mut j = s2;
                    while j < b.len() && is_ident_byte(at(j)) {
                        j += 1;
                    }
                    text = String::from_utf8_lossy(&b[s2..j]).into_owned();
                    i = j;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Is `b[i..]` the start of a `b"`, `r"`, `br"`, `r#"`-style string?
fn is_string_start(b: &[u8], i: usize) -> bool {
    let at = |k: usize| -> u8 { b.get(k).copied().unwrap_or(0) };
    match at(i) {
        b'b' => at(i + 1) == b'"' || (at(i + 1) == b'r' && raw_tail(b, i + 2)),
        b'r' => raw_tail(b, i + 1),
        _ => false,
    }
}

/// After an `r`, do we see `#*"`?
fn raw_tail(b: &[u8], mut i: usize) -> bool {
    while b.get(i).copied() == Some(b'#') {
        i += 1;
    }
    b.get(i).copied() == Some(b'"')
}

/// Length of the `b`/`r`/`#` prefix and the number of hashes.
fn string_prefix(b: &[u8], mut i: usize) -> (usize, usize) {
    if b.get(i).copied() == Some(b'b') {
        i += 1;
    }
    let raw = b.get(i).copied() == Some(b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while b.get(i).copied() == Some(b'#') {
        hashes += 1;
        i += 1;
    }
    // Position after the opening quote; raw strings with zero hashes still
    // need raw (no-escape) handling, signal with hashes+1 sentinel.
    (i + 1, if raw { hashes + 1 } else { 0 })
}

/// Scan an escaped string body starting just after the opening quote.
/// Returns (text, index after closing quote, newlines consumed).
fn scan_string(b: &[u8], mut i: usize) -> (String, usize, u32) {
    let start = i;
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                return (text, i + 1, nl);
            }
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (String::from_utf8_lossy(&b[start..]).into_owned(), i, nl)
}

/// Scan a raw string body; `hashes` is the sentinel from [`string_prefix`]
/// (actual hash count + 1).
fn scan_raw_string(b: &[u8], start: usize, hashes: usize) -> (String, usize, u32) {
    let want = hashes - 1;
    let mut i = start;
    let mut nl = 0u32;
    while i < b.len() {
        if b[i] == b'\n' {
            nl += 1;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < want && b.get(j).copied() == Some(b'#') {
                seen += 1;
                j += 1;
            }
            if seen == want {
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                return (text, j, nl);
            }
        }
        i += 1;
    }
    (String::from_utf8_lossy(&b[start..]).into_owned(), i, nl)
}

/// Try to scan a char literal starting just after the opening quote.
/// Returns None when this is actually a lifetime.
fn scan_char(b: &[u8], i: usize) -> Option<(String, usize)> {
    let at = |k: usize| -> u8 { b.get(k).copied().unwrap_or(0) };
    if at(i) == b'\\' {
        // Escaped char: find the closing quote within a small window
        // (handles \n, \t, \\, \', \u{...}, \x7f).
        let mut j = i + 1;
        let limit = (i + 12).min(b.len());
        while j < limit {
            if at(j) == b'\'' && j > i + 1 {
                let text = String::from_utf8_lossy(&b[i..j]).into_owned();
                return Some((text, j + 1));
            }
            j += 1;
        }
        None
    } else {
        // Unescaped char: exactly one (possibly multibyte) character then a
        // quote. A lifetime like 'a is followed by an ident byte or non-quote.
        let mut j = i + 1;
        // Skip UTF-8 continuation bytes.
        while j < b.len() && (at(j) & 0xC0) == 0x80 {
            j += 1;
        }
        if at(j) == b'\'' {
            let text = String::from_utf8_lossy(&b[i..j]).into_owned();
            Some((text, j + 1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            texts("fn f(x: u32) -> u32 { x + 1 }"),
            ["fn", "f", "(", "x", ":", "u32", ")", "-", ">", "u32", "{", "x", "+", "1", "}"]
        );
    }

    #[test]
    fn comments_stripped_lines_counted() {
        let toks = lex("// line\n/* block\nstill */ x\ny");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "x");
        assert_eq!(toks[0].line, 3);
        assert_eq!(toks[1].line, 4);
    }

    #[test]
    fn strings_and_raw_strings() {
        let toks = lex(r###"a "plain \" esc" r#"raw "inner""# b"bytes""###);
        assert_eq!(toks[1].kind, TokKind::Str);
        assert_eq!(toks[1].text, "plain \\\" esc");
        assert_eq!(toks[2].kind, TokKind::Str);
        assert_eq!(toks[2].text, "raw \"inner\"");
        assert_eq!(toks[3].kind, TokKind::Str);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("'a' 'x: &'a str '\\n'");
        assert_eq!(toks[0].kind, TokKind::Char);
        assert_eq!(toks[1].kind, TokKind::Lifetime);
        assert_eq!(toks[1].text, "x");
        let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Lifetime));
        assert_eq!(toks.last().map(|t| t.kind), Some(TokKind::Char));
    }

    #[test]
    fn ranges_and_floats() {
        assert_eq!(texts("0..64"), ["0", ".", ".", "64"]);
        assert_eq!(texts("1.5f64"), ["1.5f64"]);
        assert_eq!(texts("1.max(2)"), ["1", ".", "max", "(", "2", ")"]);
    }

    #[test]
    fn raw_idents_unwrapped() {
        assert_eq!(texts("r#type"), ["type"]);
    }
}
