//! cr-lint: source-level static analysis for checkpoint/restart invariants.
//!
//! The compiler cannot see the C/R protocol: that `FtEvent` handlers must
//! consider all four protocol states, that the INC/coordinator/PML mutexes
//! must be acquired in one global order, that the fault-tolerance path must
//! not contain hidden aborts, that every `--mca` key a component reads is
//! registered for `ompi-info` to enumerate, that `CommitState` values are
//! minted only by the snapshot authority (`cr_core::snapshot`), and that
//! every trace-event phase recorded is registered in
//! `cr_core::events::KNOWN_TRACE_EVENTS` — and, inversely, that every
//! registered phase is recorded somewhere (no dead registry rows rotting
//! under the replay tooling). `cr-lint` walks the workspace's
//! Rust sources with a lightweight tokenizer (no syntax tree, no external
//! dependencies) and enforces those seven invariants; see DESIGN.md section
//! "Static analysis" for the rationale and ROADMAP.md for its place in the
//! tier-1 checks.
//!
//! Scope: `src/` of every workspace member under `crates/`, plus the root
//! package's `src/`. The `shims/` crates are vendored stand-ins for
//! external dependencies and are not held to C/R invariants. Test code
//! (`#[cfg(test)]` modules, `#[test]` functions, `tests/`, `benches/`) is
//! exempt from the panic-path and MCA rules by construction.

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use baseline::{Baseline, BaselineCheck};
use model::FileModel;
use report::{Finding, Rule};

/// Everything one lint run produces.
#[derive(Debug)]
pub struct LintRun {
    /// Hard findings (lock-order, ft-event, mca-keys, commit-state,
    /// trace-keys): always violations.
    pub hard: Vec<Finding>,
    /// Baselined findings (panic-path, dead-events): all sites,
    /// pre-ratchet.
    pub baselined: Vec<Finding>,
    /// Result of comparing `baselined` against `lint.allow`.
    pub baseline_check: BaselineCheck,
    /// Number of files analyzed.
    pub files: usize,
}

impl LintRun {
    /// Findings that should fail the run.
    pub fn violations(&self) -> Vec<Finding> {
        let mut out = self.hard.clone();
        out.extend(self.baseline_check.new_violations.iter().cloned());
        out
    }
}

/// Analyze a set of already-loaded `(relative path, source)` pairs.
///
/// This is the test entry point: fixtures feed sources directly without
/// touching the filesystem.
pub fn analyze_sources(sources: &[(String, String)], baseline: &Baseline) -> LintRun {
    let models: Vec<FileModel> = sources
        .iter()
        .map(|(rel, src)| model::parse_file(rel, src))
        .collect();

    let mut hard = Vec::new();
    let mut baselined = Vec::new();

    rules::lock_order::check(&models, &mut hard);

    let mut registered: BTreeSet<String> = BTreeSet::new();
    let mut uses = Vec::new();
    let mut trace_registered: BTreeSet<String> = BTreeSet::new();
    let mut trace_uses = Vec::new();
    let mut event_rows = Vec::new();
    let mut recorded: BTreeSet<String> = BTreeSet::new();
    for m in &models {
        rules::ft_event::check(m, &mut hard);
        rules::panic_path::check(m, &mut baselined);
        rules::commit_state::check(m, &mut hard);
        rules::mca_keys::collect_registered(m, &mut registered);
        rules::mca_keys::collect_uses(m, &mut uses);
        rules::trace_keys::collect_registered(m, &mut trace_registered);
        rules::trace_keys::collect_uses(m, &mut trace_uses);
        rules::dead_events::collect_registered(m, &mut event_rows);
        rules::dead_events::collect_recorded(m, &mut recorded);
    }
    rules::mca_keys::check(&registered, &uses, &mut hard);
    rules::trace_keys::check(&trace_registered, &trace_uses, &mut hard);
    rules::dead_events::check(&event_rows, &recorded, &mut baselined);

    let baseline_check = baseline.check(&baselined);
    LintRun {
        hard,
        baselined,
        baseline_check,
        files: models.len(),
    }
}

/// Discover the workspace's lintable sources under `root`.
///
/// Returns `(relative path, source)` pairs for `crates/*/src/**/*.rs` and
/// the root package's `src/**/*.rs`, sorted by path for deterministic
/// output.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        out.push((rel, src));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first directory
/// holding both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// Render a short human summary line.
pub fn summary_line(run: &LintRun) -> String {
    format!(
        "cr-lint: {} files, {} hard findings, {} baselined sites ({} over baseline)",
        run.files,
        run.hard.len(),
        run.baselined.len(),
        run.baseline_check.new_violations.len()
    )
}

/// Re-export for binary convenience.
pub use report::{render_human, render_json};

/// Which rules are hard (non-baselined). Exposed for documentation tests.
pub const HARD_RULES: [Rule; 5] = [
    Rule::LockOrder,
    Rule::FtEvent,
    Rule::McaKeys,
    Rule::CommitState,
    Rule::TraceKeys,
];
