//! Finding type and human/JSON rendering.

use std::fmt::Write as _;

/// Rule families implemented by cr-lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Inter-procedural lock acquisition order must be acyclic.
    LockOrder,
    /// `FtEvent` impls must handle all four protocol states explicitly.
    FtEvent,
    /// Panic paths (unwrap/expect/panic!/indexing) in non-test lib code.
    PanicPath,
    /// MCA parameter keys used must be registered.
    McaKeys,
    /// `CommitState` values minted only by `cr_core::snapshot`.
    CommitState,
    /// Trace-event phase strings recorded must be registered.
    TraceKeys,
    /// Registered trace events must be recorded somewhere (no dead rows).
    DeadEvents,
}

impl Rule {
    /// Stable machine name (baseline file + JSON output).
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::FtEvent => "ft-event",
            Rule::PanicPath => "panic-path",
            Rule::McaKeys => "mca-keys",
            Rule::CommitState => "commit-state",
            Rule::TraceKeys => "trace-keys",
            Rule::DeadEvents => "dead-events",
        }
    }
}

/// One violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Build a finding.
    pub fn new(rule: Rule, file: &str, line: u32, message: impl Into<String>) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

/// Render findings grouped by rule, one `file:line: message` per line.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.message).cmp(&(b.rule, &b.file, b.line, &b.message))
    });
    let mut last_rule = None;
    for f in sorted {
        if last_rule != Some(f.rule) {
            let _ = writeln!(out, "[{}]", f.rule.name());
            last_rule = Some(f.rule);
        }
        let _ = writeln!(out, "  {}:{}: {}", f.file, f.line, f.message);
    }
    out
}

/// Render findings as a JSON array (no external dependencies, so emitted
/// by hand with proper string escaping).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(f.rule.name()),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        );
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let f = vec![Finding::new(Rule::PanicPath, "a.rs", 3, "say \"hi\"\n")];
        let json = render_json(&f);
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.contains("\\n"));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn human_groups_by_rule() {
        let f = vec![
            Finding::new(Rule::McaKeys, "b.rs", 1, "x"),
            Finding::new(Rule::FtEvent, "a.rs", 2, "y"),
        ];
        let text = render_human(&f);
        let ft = text.find("[ft-event]").expect("ft-event header");
        let mca = text.find("[mca-keys]").expect("mca-keys header");
        assert!(ft < mca, "rules render in enum order");
    }
}
