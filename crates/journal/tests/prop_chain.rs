//! Chain-integrity properties (ISSUE 8 satellite):
//!
//! * random event streams round-trip through append → reopen → append →
//!   read back, and re-serializing the entries produces a byte-identical
//!   file;
//! * flipping any single byte of a journal file is detected by `verify`
//!   with the correct breaking seq;
//! * truncating any suffix is detected with the correct breaking seq.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use journal::{format, verify_bytes, Break, JournalEntry, JournalWriter, GENESIS_HASH};
use proptest::collection::vec;
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpfile(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "journal_prop_{tag}_{}_{:?}_{}",
        std::process::id(),
        std::thread::current().id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join(journal::FILE_NAME)
}

/// Re-encode `entries` into a fresh in-memory journal image.
fn reserialize(entries: &[JournalEntry]) -> Vec<u8> {
    let mut out = format::header_bytes().to_vec();
    for e in entries {
        out.extend_from_slice(&format::encode_record(e).expect("encode"));
    }
    out
}

/// Strategy for one event: printable-ish actor/phase plus arbitrary
/// detail text (newlines, unicode, empty strings).
fn arb_events() -> impl Strategy<Value = Vec<(String, String, String, u64)>> {
    vec(
        ("[a-z0-9]{0,8}", "[a-z0-9._]{1,24}", "\\PC*", any::<u64>()),
        1..24,
    )
}

/// Seq a byte offset belongs to, given the record boundaries.
fn seq_of_offset(entries: &[JournalEntry], offset: usize) -> Option<u64> {
    if offset < format::HEADER_LEN {
        return None; // header byte
    }
    let mut at = format::HEADER_LEN;
    for e in entries {
        let end = at + format::encode_record(e).expect("encode").len();
        if offset < end {
            return Some(e.seq);
        }
        at = end;
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_across_reopen_is_byte_identical(
        events in arb_events(),
        split in any::<prop::sample::Index>(),
    ) {
        let path = tmpfile("roundtrip");
        let cut = split.index(events.len() + 1);
        {
            let mut w = JournalWriter::open(&path, 0).expect("open");
            for (actor, phase, detail, ns) in events.iter().take(cut) {
                w.append(actor, phase, detail, *ns).expect("append");
            }
        }
        {
            // Reopen recovers the tail and keeps chaining.
            let mut w = JournalWriter::open(&path, 0).expect("reopen");
            prop_assert_eq!(w.next_seq(), cut as u64);
            for (actor, phase, detail, ns) in events.iter().skip(cut) {
                w.append(actor, phase, detail, *ns).expect("append");
            }
        }
        let data = std::fs::read(&path).expect("read file");
        let report = verify_bytes(&data);
        prop_assert!(report.ok(), "{}", report.render());
        let entries = journal::read_entries(&path).expect("read entries");
        prop_assert_eq!(entries.len(), events.len());
        for (e, (actor, phase, detail, ns)) in entries.iter().zip(events.iter()) {
            prop_assert_eq!(&e.actor, actor);
            prop_assert_eq!(&e.phase, phase);
            prop_assert_eq!(&e.detail, detail);
            prop_assert_eq!(e.elapsed_ns, *ns);
        }
        // Byte-identical: re-serializing the parsed entries reproduces
        // the file exactly.
        prop_assert_eq!(reserialize(&entries), data);
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn any_single_byte_flip_is_detected_with_the_breaking_seq(
        events in arb_events(),
        which in any::<prop::sample::Index>(),
        flip in 1..=255u8,
    ) {
        let mut data = format::header_bytes().to_vec();
        let mut prev = GENESIS_HASH;
        let mut entries = Vec::new();
        for (i, (actor, phase, detail, ns)) in events.iter().enumerate() {
            let e = JournalEntry::chained(i as u64, prev, actor, phase, detail, *ns);
            prev = e.hash;
            data.extend_from_slice(&format::encode_record(&e).expect("encode"));
            entries.push(e);
        }
        let at = which.index(data.len());
        data[at] ^= flip;
        let report = verify_bytes(&data);
        prop_assert!(!report.ok(), "flip at {at} went undetected");
        let hit = seq_of_offset(&entries, at);
        match (&report.broken, hit) {
            // Header byte: must be a header break.
            (Some(Break::BadHeader { .. }), None) => {}
            // A record byte: the break must name that record's seq.  A
            // corrupted length field may also read past the end of the
            // file, which still reports the same seq as truncation.
            (Some(b), Some(seq)) => {
                prop_assert_eq!(b.seq(), Some(seq), "flip at {} in seq {}: {}", at, seq, b);
                prop_assert_eq!(report.entries as u64, seq, "entries before break");
            }
            (b, hit) => prop_assert!(false, "unexpected: {:?} for offset {:?} -> {:?}", b, at, hit),
        }
    }

    #[test]
    fn any_suffix_truncation_is_detected_with_the_breaking_seq(
        events in arb_events(),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let mut data = format::header_bytes().to_vec();
        let mut boundaries = vec![data.len()]; // boundaries[i] = end of record i-1
        let mut prev = GENESIS_HASH;
        for (i, (actor, phase, detail, ns)) in events.iter().enumerate() {
            let e = JournalEntry::chained(i as u64, prev, actor, phase, detail, *ns);
            prev = e.hash;
            data.extend_from_slice(&format::encode_record(&e).expect("encode"));
            boundaries.push(data.len());
        }
        let cut = cut_at.index(data.len()); // strictly shorter than the file
        let report = verify_bytes(&data[..cut]);
        prop_assert!(!report.ok(), "truncation to {cut} bytes went undetected");
        // Number of complete records that survive the cut.
        let intact = boundaries.iter().filter(|b| **b <= cut).count() - 1;
        if cut < format::HEADER_LEN {
            prop_assert!(matches!(report.broken, Some(Break::BadHeader { .. })));
        } else {
            prop_assert_eq!(report.entries, intact);
            match &report.broken {
                Some(Break::Truncated { seq, .. }) => {
                    prop_assert_eq!(*seq, intact as u64);
                }
                other => prop_assert!(false, "expected Truncated, got {:?}", other),
            }
        }
    }
}
