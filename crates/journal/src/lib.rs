//! The durable FT event journal: an append-only, hash-chained record of
//! every fault-tolerance event the runtime traces.
//!
//! The paper's SNAPC/CRCP protocols are defined by *orderings* (Figures
//! 1–2).  In-memory `Tracer` records die with the process, so a failure
//! that happens once under load leaves no artifact.  This crate makes
//! the trace durable:
//!
//! * [`JournalEntry`] — one event with rank/node attribution plus the
//!   hash chain (`prev_hash`/`hash` via `codec::chunk_digest`); the
//!   newest hash commits to the entire history ([`entry`]).
//! * [`format`] — the framed on-disk codec (`OCRJ` header; per-record
//!   length + CRC-32 frames) with O(1) append.
//! * [`JournalWriter`] — append handle that recovers the chain tail on
//!   reopen and refuses broken files ([`writer`]).
//! * [`verify`]/[`read_entries`] — front-to-back validation naming the
//!   exact breaking seq on corruption, truncation, or tampering
//!   ([`read`]).
//! * [`JournalSink`] — the `cr_core::trace::TraceSink` bridge: attach it
//!   to a `Tracer` and every existing `record` call-site in the
//!   workspace is journaled without being rewritten ([`sink`]).
//! * [`diff`] — positional first-divergence report between two runs.
//!
//! Replay-conformance against the `cr-model` protocol models lives in
//! `model::replay` (the models cannot depend on this crate); the
//! `cr-replay` binary in `crates/tools` ties both together.  See
//! DESIGN.md §2.6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod entry;
pub mod format;
pub mod read;
pub mod sink;
pub mod writer;

pub use diff::{diff, DiffKey, DiffReport, Divergence};
pub use entry::{JournalEntry, GENESIS_HASH};
pub use read::{read_entries, verify, verify_bytes, Break, VerifyReport};
pub use sink::JournalSink;
pub use writer::{JournalWriter, FILE_NAME};
