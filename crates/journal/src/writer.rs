//! Appending to a journal file.
//!
//! [`JournalWriter::open`] creates the file (with its header) or reopens
//! an existing one, re-verifying the whole chain and continuing from the
//! recovered tail — so one journal accumulates across runtime restarts
//! into the same directory, and any corruption is refused at open time
//! rather than silently extended.  Each [`JournalWriter::append`] writes
//! exactly one framed record at the tail: O(1) in the journal length.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use cr_core::CrError;

use crate::entry::{JournalEntry, GENESIS_HASH};
use crate::format::{encode_record, header_bytes};
use crate::read::parse_bytes;

/// Conventional file name of a runtime's journal (`<dir>/ft.jrnl`).
pub const FILE_NAME: &str = "ft.jrnl";

/// Append handle to one journal file.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
    prev_hash: u64,
    bytes: u64,
    /// fsync after every N appends (0 = rely on OS writeback; the final
    /// flush still syncs).
    fsync_every: u64,
    appends_since_sync: u64,
}

impl JournalWriter {
    /// Open `path` for appending, creating it (and its parent directory)
    /// if needed.  An existing file is fully re-verified; a broken
    /// journal is refused so tampering or corruption can never be buried
    /// under fresh valid records.
    pub fn open(path: &Path, fsync_every: u64) -> Result<Self, CrError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| CrError::io(parent.display().to_string(), &e))?;
        }
        let ctx = || path.display().to_string();
        let (next_seq, prev_hash, bytes) = if path.exists() {
            let data = std::fs::read(path).map_err(|e| CrError::io(ctx(), &e))?;
            let (entries, broken) = parse_bytes(&data);
            if let Some(b) = broken {
                return Err(CrError::protocol(format!(
                    "refusing to append to broken journal {}: {b}",
                    path.display()
                )));
            }
            let tail = entries.last().map(|e| e.hash).unwrap_or(GENESIS_HASH);
            (entries.len() as u64, tail, data.len() as u64)
        } else {
            let mut file = File::create(path).map_err(|e| CrError::io(ctx(), &e))?;
            file.write_all(&header_bytes())
                .map_err(|e| CrError::io(ctx(), &e))?;
            (0, GENESIS_HASH, header_bytes().len() as u64)
        };
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| CrError::io(ctx(), &e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            next_seq,
            prev_hash,
            bytes,
            fsync_every,
            appends_since_sync: 0,
        })
    }

    /// Append one event; returns its seq.
    pub fn append(
        &mut self,
        actor: &str,
        phase: &str,
        detail: &str,
        elapsed_ns: u64,
    ) -> Result<u64, CrError> {
        let entry = JournalEntry::chained(
            self.next_seq,
            self.prev_hash,
            actor,
            phase,
            detail,
            elapsed_ns,
        );
        let rec = encode_record(&entry)?;
        self.file
            .write_all(&rec)
            .map_err(|e| CrError::io(self.path.display().to_string(), &e))?;
        self.prev_hash = entry.hash;
        self.next_seq += 1;
        self.bytes += rec.len() as u64;
        if self.fsync_every > 0 {
            self.appends_since_sync += 1;
            if self.appends_since_sync >= self.fsync_every {
                self.flush()?;
            }
        }
        Ok(entry.seq)
    }

    /// Sync appended records to disk.
    pub fn flush(&mut self) -> Result<(), CrError> {
        self.appends_since_sync = 0;
        self.file
            .sync_data()
            .map_err(|e| CrError::io(self.path.display().to_string(), &e))
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Seq the next append will use (= entries written so far).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Hash of the newest entry ([`GENESIS_HASH`] when empty).
    pub fn tail_hash(&self) -> u64 {
        self.prev_hash
    }

    /// Current file size in bytes (header + records).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::{read_entries, verify};

    fn tmpfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "journal_writer_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join(FILE_NAME)
    }

    #[test]
    fn append_reopen_append_chains_across_sessions() {
        let path = tmpfile("reopen");
        {
            let mut w = JournalWriter::open(&path, 0).unwrap();
            assert_eq!(w.append("rank0", "a.b", "one", 1).unwrap(), 0);
            assert_eq!(w.append("", "c.d", "two", 2).unwrap(), 1);
            w.flush().unwrap();
        }
        {
            let mut w = JournalWriter::open(&path, 0).unwrap();
            assert_eq!(w.next_seq(), 2);
            assert_eq!(w.append("rank1", "e.f", "three", 3).unwrap(), 2);
            assert_eq!(w.bytes(), std::fs::metadata(&path).unwrap().len());
        }
        let report = verify(&path).unwrap();
        assert!(report.ok(), "{}", report.render());
        let entries = read_entries(&path).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[2].detail, "three");
        assert_eq!(entries[1].hash, entries[2].prev_hash);
    }

    #[test]
    fn broken_journal_refused_at_open() {
        let path = tmpfile("refuse");
        {
            let mut w = JournalWriter::open(&path, 0).unwrap();
            w.append("", "a.b", "x", 0).unwrap();
        }
        // Corrupt one payload byte, then try to reopen.
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let err = JournalWriter::open(&path, 0).unwrap_err();
        assert!(err.to_string().contains("broken journal"), "{err}");
    }

    #[test]
    fn fsync_interval_flushes() {
        let path = tmpfile("fsync");
        let mut w = JournalWriter::open(&path, 2).unwrap();
        for i in 0..5 {
            w.append("", "a.b", &i.to_string(), i).unwrap();
        }
        assert_eq!(verify(&path).unwrap().entries, 5);
    }
}
