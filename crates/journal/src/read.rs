//! Reading and verifying journals.
//!
//! [`parse_bytes`] is the single total parser everything builds on: it
//! walks the records front to back, validating the frame CRC, the decoded
//! seq, and the hash chain as it goes, and stops at the *first* break —
//! so a verify failure always names the exact broken link.  Single-byte
//! corruption is caught by the record CRC (or the header/length checks)
//! at the record containing the byte; truncation is caught as an
//! incomplete tail record; a consistent rewrite (valid CRC, recomputed
//! entry hash) is caught by the `prev_hash` link of the first record
//! after the tampered one.

use std::fmt;
use std::path::Path;

use cr_core::CrError;

use crate::entry::{JournalEntry, GENESIS_HASH};
use crate::format::{HEADER_LEN, MAGIC, RECORD_HEADER_LEN, VERSION};

/// The first structural or chain break found in a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Break {
    /// The fixed file header is missing, truncated, or wrong.
    BadHeader {
        /// What is wrong with it.
        detail: String,
    },
    /// A record failed its CRC, failed to decode, or carries the wrong seq.
    BadRecord {
        /// Seq this chain position should hold (the breaking seq).
        seq: u64,
        /// Byte offset of the record's frame in the file.
        offset: u64,
        /// What is wrong with it.
        detail: String,
    },
    /// The file ends in the middle of a record.
    Truncated {
        /// Seq of the first incomplete record (the breaking seq).
        seq: u64,
        /// Byte offset where the incomplete record starts.
        offset: u64,
        /// Bytes present past that offset.
        have: u64,
        /// Bytes the record frame requires.
        need: u64,
    },
    /// The hash chain is broken at this record.
    ChainBreak {
        /// Seq of the record whose link is broken (the breaking seq).
        seq: u64,
        /// What is wrong with the link.
        detail: String,
    },
}

impl Break {
    /// The breaking seq: the chain position at which the journal stops
    /// being trustworthy (`None` when the header itself is bad).
    pub fn seq(&self) -> Option<u64> {
        match self {
            Break::BadHeader { .. } => None,
            Break::BadRecord { seq, .. }
            | Break::Truncated { seq, .. }
            | Break::ChainBreak { seq, .. } => Some(*seq),
        }
    }
}

impl fmt::Display for Break {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Break::BadHeader { detail } => write!(f, "bad journal header: {detail}"),
            Break::BadRecord { seq, offset, detail } => {
                write!(f, "bad record at seq {seq} (offset {offset}): {detail}")
            }
            Break::Truncated { seq, offset, have, need } => write!(
                f,
                "journal truncated at seq {seq} (offset {offset}): record needs {need} \
                 bytes, file has {have}"
            ),
            Break::ChainBreak { seq, detail } => {
                write!(f, "hash chain broken at seq {seq}: {detail}")
            }
        }
    }
}

/// Outcome of verifying one journal file.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Entries intact before the break (all of them when `broken` is
    /// `None`).
    pub entries: usize,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Hash of the last intact entry ([`GENESIS_HASH`] for an empty
    /// journal).
    pub tail_hash: u64,
    /// The first break, if any.
    pub broken: Option<Break>,
}

impl VerifyReport {
    /// True when the whole file verified.
    pub fn ok(&self) -> bool {
        self.broken.is_none()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        match &self.broken {
            None => format!(
                "ok: {} entries, {} bytes, tail hash {:016x}",
                self.entries, self.bytes, self.tail_hash
            ),
            Some(b) => format!(
                "BROKEN after {} intact entries ({} bytes): {b}",
                self.entries, self.bytes
            ),
        }
    }
}

/// Fixed-size field at `at`, or `None` past the end.
fn field<const N: usize>(data: &[u8], at: usize) -> Option<[u8; N]> {
    data.get(at..at.checked_add(N)?)?.try_into().ok()
}

/// Parse `data` front to back: the entries intact before the first break,
/// plus the break itself (if any).  Total — never panics, never errors.
pub fn parse_bytes(data: &[u8]) -> (Vec<JournalEntry>, Option<Break>) {
    let mut entries = Vec::new();
    if data.len() < HEADER_LEN {
        let detail = format!("file has {} bytes, header needs {HEADER_LEN}", data.len());
        return (entries, Some(Break::BadHeader { detail }));
    }
    if field::<4>(data, 0) != Some(MAGIC) {
        let detail = "bad magic (not a journal file)".to_string();
        return (entries, Some(Break::BadHeader { detail }));
    }
    let version = field::<2>(data, 4).map(u16::from_le_bytes);
    if version != Some(VERSION) {
        let detail = format!(
            "unsupported journal version {} (this build reads {VERSION})",
            version.unwrap_or(0)
        );
        return (entries, Some(Break::BadHeader { detail }));
    }
    if field::<2>(data, 6) != Some([0u8; 2]) {
        // Every header byte is significant so single-byte corruption
        // anywhere in the file is detectable.
        let detail = "nonzero reserved header bytes".to_string();
        return (entries, Some(Break::BadHeader { detail }));
    }

    let mut off = HEADER_LEN;
    let mut prev_hash = GENESIS_HASH;
    while off < data.len() {
        let seq = entries.len() as u64;
        let have = (data.len() - off) as u64;
        let (len_bytes, crc_bytes) = match (field::<4>(data, off), field::<4>(data, off + 4)) {
            (Some(l), Some(c)) => (l, c),
            _ => {
                let b = Break::Truncated {
                    seq,
                    offset: off as u64,
                    have,
                    need: RECORD_HEADER_LEN as u64,
                };
                return (entries, Some(b));
            }
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        let stored_crc = u32::from_le_bytes(crc_bytes);
        let body_at = off + RECORD_HEADER_LEN;
        let body = match body_at.checked_add(len).and_then(|end| data.get(body_at..end)) {
            Some(b) => b,
            None => {
                let b = Break::Truncated {
                    seq,
                    offset: off as u64,
                    have,
                    need: RECORD_HEADER_LEN as u64 + len as u64,
                };
                return (entries, Some(b));
            }
        };
        let computed = codec::crc32::crc32(body);
        if computed != stored_crc {
            let detail =
                format!("CRC mismatch: stored {stored_crc:08x}, computed {computed:08x}");
            let b = Break::BadRecord { seq, offset: off as u64, detail };
            return (entries, Some(b));
        }
        let entry: JournalEntry = match codec::from_bytes(body) {
            Ok(e) => e,
            Err(e) => {
                let detail = format!("payload decode failed: {e}");
                let b = Break::BadRecord { seq, offset: off as u64, detail };
                return (entries, Some(b));
            }
        };
        if entry.seq != seq {
            let detail = format!("record claims seq {}, chain position is {seq}", entry.seq);
            let b = Break::BadRecord { seq, offset: off as u64, detail };
            return (entries, Some(b));
        }
        if entry.prev_hash != prev_hash {
            let detail = format!(
                "prev_hash {:016x} does not match the previous entry's hash {prev_hash:016x}",
                entry.prev_hash
            );
            return (entries, Some(Break::ChainBreak { seq, detail }));
        }
        let expect = entry.compute_hash();
        if entry.hash != expect {
            let detail = format!(
                "stored hash {:016x} does not match recomputed {expect:016x}",
                entry.hash
            );
            return (entries, Some(Break::ChainBreak { seq, detail }));
        }
        prev_hash = entry.hash;
        entries.push(entry);
        off = body_at + len;
    }
    (entries, None)
}

fn read_file(path: &Path) -> Result<Vec<u8>, CrError> {
    std::fs::read(path).map_err(|e| CrError::io(path.display().to_string(), &e))
}

/// Verify `path`'s hash chain and framing.  I/O failures are errors; a
/// broken journal is a successful verification with a [`Break`] report.
pub fn verify(path: &Path) -> Result<VerifyReport, CrError> {
    let data = read_file(path)?;
    Ok(verify_bytes(&data))
}

/// [`verify`] over in-memory bytes.
pub fn verify_bytes(data: &[u8]) -> VerifyReport {
    let (entries, broken) = parse_bytes(data);
    let tail_hash = entries.last().map(|e| e.hash).unwrap_or(GENESIS_HASH);
    VerifyReport { entries: entries.len(), bytes: data.len() as u64, tail_hash, broken }
}

/// All entries of `path`, erroring on any break.
pub fn read_entries(path: &Path) -> Result<Vec<JournalEntry>, CrError> {
    let data = read_file(path)?;
    let (entries, broken) = parse_bytes(&data);
    match broken {
        None => Ok(entries),
        Some(b) => Err(CrError::protocol(format!(
            "journal {} is broken: {b}",
            path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_record, header_bytes};

    fn journal_bytes(n: u64) -> Vec<u8> {
        let mut data = header_bytes().to_vec();
        let mut prev = GENESIS_HASH;
        for seq in 0..n {
            let e = JournalEntry::chained(
                seq,
                prev,
                &format!("rank{seq}"),
                "snapc.global.request",
                &format!("interval {seq}"),
                seq * 10,
            );
            prev = e.hash;
            data.extend_from_slice(&encode_record(&e).unwrap());
        }
        data
    }

    #[test]
    fn clean_journal_verifies() {
        let data = journal_bytes(5);
        let report = verify_bytes(&data);
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.entries, 5);
        let (entries, broken) = parse_bytes(&data);
        assert!(broken.is_none());
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[4].detail, "interval 4");
        assert_eq!(report.tail_hash, entries[4].hash);
    }

    #[test]
    fn empty_journal_is_ok() {
        let report = verify_bytes(&header_bytes());
        assert!(report.ok());
        assert_eq!(report.entries, 0);
        assert_eq!(report.tail_hash, GENESIS_HASH);
    }

    #[test]
    fn bad_magic_and_short_header_reported() {
        let report = verify_bytes(b"OC");
        assert!(matches!(report.broken, Some(Break::BadHeader { .. })));
        let mut data = journal_bytes(1);
        data[0] = b'Z';
        let report = verify_bytes(&data);
        assert!(matches!(report.broken, Some(Break::BadHeader { .. })));
    }

    #[test]
    fn payload_flip_breaks_at_that_record() {
        let data = journal_bytes(3);
        // Flip one byte inside record 1's payload.
        let rec0_end = {
            let (entries, _) = parse_bytes(&data);
            let rec = encode_record(&entries[0]).unwrap();
            HEADER_LEN + rec.len()
        };
        let mut bad = data.clone();
        bad[rec0_end + RECORD_HEADER_LEN + 2] ^= 0x40;
        let report = verify_bytes(&bad);
        assert_eq!(report.entries, 1);
        match report.broken {
            Some(Break::BadRecord { seq: 1, .. }) => {}
            other => panic!("expected BadRecord at seq 1, got {other:?}"),
        }
    }

    #[test]
    fn rewritten_record_with_valid_crc_breaks_the_chain() {
        // A "smart" tamper: rewrite entry 1 with a recomputed entry hash
        // and a valid CRC.  The record itself verifies, but entry 2's
        // prev_hash no longer matches — the chain names seq 2.
        let data = journal_bytes(3);
        let (entries, _) = parse_bytes(&data);
        let forged = JournalEntry::chained(
            1,
            entries[0].hash,
            &entries[1].actor,
            &entries[1].phase,
            "forged detail",
            entries[1].elapsed_ns,
        );
        let mut out = header_bytes().to_vec();
        out.extend_from_slice(&encode_record(&entries[0]).unwrap());
        out.extend_from_slice(&encode_record(&forged).unwrap());
        out.extend_from_slice(&encode_record(&entries[2]).unwrap());
        let report = verify_bytes(&out);
        assert_eq!(report.entries, 2);
        match report.broken {
            Some(Break::ChainBreak { seq: 2, .. }) => {}
            other => panic!("expected ChainBreak at seq 2, got {other:?}"),
        }
    }

    #[test]
    fn truncation_names_first_incomplete_seq() {
        let data = journal_bytes(4);
        let cut = data.len() - 3;
        let report = verify_bytes(&data[..cut]);
        assert_eq!(report.entries, 3);
        match report.broken {
            Some(Break::Truncated { seq: 3, .. }) => {}
            other => panic!("expected Truncated at seq 3, got {other:?}"),
        }
        assert!(report.render().contains("BROKEN"));
    }
}
