//! First-divergence diff between two journals.
//!
//! Two runs of the same seeded workload should journal the same event
//! sequence; when one fails, the first index at which the sequences part
//! is where to start debugging.  Entries are compared positionally under
//! a [`DiffKey`]: `Full` compares `(actor, phase, detail)`, `PhaseOnly`
//! compares `(actor, phase)` — useful when details embed run-local paths.
//! `elapsed_ns` and the chain hashes never participate (they differ
//! between any two runs by construction).

use crate::entry::JournalEntry;

/// Which fields participate in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKey {
    /// Compare `(actor, phase, detail)`.
    Full,
    /// Compare `(actor, phase)` only.
    PhaseOnly,
}

impl DiffKey {
    fn equal(self, a: &JournalEntry, b: &JournalEntry) -> bool {
        match self {
            DiffKey::Full => {
                a.actor == b.actor && a.phase == b.phase && a.detail == b.detail
            }
            DiffKey::PhaseOnly => a.actor == b.actor && a.phase == b.phase,
        }
    }

    fn render(self, e: &JournalEntry) -> String {
        let actor = if e.actor.is_empty() { "-" } else { &e.actor };
        match self {
            DiffKey::Full => format!("#{:<5} {:<8} {:<36} {}", e.seq, actor, e.phase, e.detail),
            DiffKey::PhaseOnly => format!("#{:<5} {:<8} {}", e.seq, actor, e.phase),
        }
    }
}

/// The first position at which two journals disagree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index into both journals (entries before it match under the key).
    pub index: usize,
    /// Left entry at `index` (`None` when the left journal ended).
    pub left: Option<JournalEntry>,
    /// Right entry at `index` (`None` when the right journal ended).
    pub right: Option<JournalEntry>,
}

/// Result of diffing two journals.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Key the comparison ran under.
    pub key: DiffKey,
    /// Entries in the left journal.
    pub left_len: usize,
    /// Entries in the right journal.
    pub right_len: usize,
    /// First divergence, or `None` when the journals match end to end.
    pub divergence: Option<Divergence>,
}

impl DiffReport {
    /// True when the journals match end to end under the key.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }

    /// Human-readable report with up to `context` aligned matching
    /// entries (from the left journal) before the divergence.
    pub fn render(&self, left: &[JournalEntry], context: usize) -> String {
        let mut out = String::new();
        let d = match &self.divergence {
            None => {
                out.push_str(&format!(
                    "identical: {} entries on both sides\n",
                    self.left_len
                ));
                return out;
            }
            Some(d) => d,
        };
        out.push_str(&format!(
            "first divergence at index {} (left has {} entries, right has {})\n",
            d.index, self.left_len, self.right_len
        ));
        let from = d.index.saturating_sub(context);
        if from < d.index {
            out.push_str(&format!("  ...{} matching entries before:\n", d.index - from));
        }
        for e in left.iter().skip(from).take(d.index - from) {
            out.push_str(&format!("  = {}\n", self.key.render(e)));
        }
        match &d.left {
            Some(e) => out.push_str(&format!("  < {}\n", self.key.render(e))),
            None => out.push_str("  < <end of journal>\n"),
        }
        match &d.right {
            Some(e) => out.push_str(&format!("  > {}\n", self.key.render(e))),
            None => out.push_str("  > <end of journal>\n"),
        }
        out
    }
}

/// Diff `left` against `right` under `key`.
pub fn diff(left: &[JournalEntry], right: &[JournalEntry], key: DiffKey) -> DiffReport {
    let mut index = 0;
    loop {
        match (left.get(index), right.get(index)) {
            (None, None) => {
                return DiffReport {
                    key,
                    left_len: left.len(),
                    right_len: right.len(),
                    divergence: None,
                }
            }
            (a, b) => {
                let matched = match (a, b) {
                    (Some(a), Some(b)) => key.equal(a, b),
                    _ => false,
                };
                if !matched {
                    return DiffReport {
                        key,
                        left_len: left.len(),
                        right_len: right.len(),
                        divergence: Some(Divergence {
                            index,
                            left: a.cloned(),
                            right: b.cloned(),
                        }),
                    };
                }
            }
        }
        index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::GENESIS_HASH;

    fn seq(phases: &[(&str, &str)]) -> Vec<JournalEntry> {
        let mut prev = GENESIS_HASH;
        phases
            .iter()
            .enumerate()
            .map(|(i, (phase, detail))| {
                let e = JournalEntry::chained(i as u64, prev, "rank0", phase, detail, i as u64);
                prev = e.hash;
                e
            })
            .collect()
    }

    #[test]
    fn identical_journals_report_identical() {
        let a = seq(&[("x.y", "1"), ("x.z", "2")]);
        let b = seq(&[("x.y", "1"), ("x.z", "2")]);
        let report = diff(&a, &b, DiffKey::Full);
        assert!(report.identical());
        assert!(report.render(&a, 3).contains("identical"));
    }

    #[test]
    fn first_divergence_is_pinpointed() {
        let a = seq(&[("x.y", "1"), ("x.z", "2"), ("x.w", "3")]);
        let b = seq(&[("x.y", "1"), ("x.q", "2"), ("x.w", "3")]);
        let report = diff(&a, &b, DiffKey::Full);
        let d = report.divergence.as_ref().unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left.as_ref().unwrap().phase, "x.z");
        assert_eq!(d.right.as_ref().unwrap().phase, "x.q");
        let rendered = report.render(&a, 2);
        assert!(rendered.contains("index 1"), "{rendered}");
        assert!(rendered.contains("= #0"), "{rendered}");
        assert!(rendered.contains("< #1"), "{rendered}");
    }

    #[test]
    fn prefix_ending_diverges_at_the_shorter_end() {
        let a = seq(&[("x.y", "1"), ("x.z", "2")]);
        let b = seq(&[("x.y", "1")]);
        let report = diff(&a, &b, DiffKey::Full);
        let d = report.divergence.as_ref().unwrap();
        assert_eq!(d.index, 1);
        assert!(d.right.is_none());
        assert!(report.render(&a, 1).contains("<end of journal>"));
    }

    #[test]
    fn phase_only_key_ignores_details() {
        let a = seq(&[("x.y", "/tmp/run_a/snap")]);
        let b = seq(&[("x.y", "/tmp/run_b/snap")]);
        assert!(!diff(&a, &b, DiffKey::Full).identical());
        assert!(diff(&a, &b, DiffKey::PhaseOnly).identical());
    }
}
