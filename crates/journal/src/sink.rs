//! The `TraceSink` bridge: every `Tracer::record` call-site in the
//! workspace lands in the journal without being rewritten.
//!
//! Journaling must never take down the job it is auditing (the same
//! degrade-don't-abort rule as the rest of the C/R stack), so append
//! failures here are counted and remembered, not propagated — the
//! runtime can surface [`JournalSink::last_error`] at shutdown.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use cr_core::trace::{TraceEvent, TraceSink};
use cr_core::CrError;

use crate::writer::JournalWriter;

/// A [`TraceSink`] writing every event through a [`JournalWriter`].
pub struct JournalSink {
    writer: Mutex<JournalWriter>,
    path: PathBuf,
    append_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl JournalSink {
    /// Wrap an open writer.
    pub fn new(writer: JournalWriter) -> Self {
        let path = writer.path().to_path_buf();
        JournalSink {
            writer: Mutex::new(writer),
            path,
            append_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
        }
    }

    /// Open (or create) the journal at `path` and wrap it.
    pub fn open(path: &Path, fsync_every: u64) -> Result<Self, CrError> {
        Ok(Self::new(JournalWriter::open(path, fsync_every)?))
    }

    /// Path of the journal file.
    pub fn path(&self) -> PathBuf {
        self.path.clone()
    }

    /// Sync appended records to disk.
    pub fn flush(&self) -> Result<(), CrError> {
        self.writer.lock().flush()
    }

    /// `(entries, bytes)` currently in the journal file.
    pub fn stats(&self) -> (u64, u64) {
        let w = self.writer.lock();
        (w.next_seq(), w.bytes())
    }

    /// Number of appends that failed (disk full, I/O error).
    pub fn append_errors(&self) -> u64 {
        self.append_errors.load(Ordering::Relaxed)
    }

    /// The most recent append failure, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }
}

impl TraceSink for JournalSink {
    fn append(&self, event: &TraceEvent) {
        let result = self.writer.lock().append(
            &event.actor,
            &event.phase,
            &event.detail,
            event.elapsed_ns,
        );
        if let Err(e) = result {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            *self.last_error.lock() = Some(e.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cr_core::Tracer;

    use super::*;
    use crate::read::read_entries;
    use crate::writer::FILE_NAME;

    fn tmpjournal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "journal_sink_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join(FILE_NAME)
    }

    #[test]
    fn tracer_records_land_in_the_journal() {
        let path = tmpjournal("record");
        let sink = Arc::new(JournalSink::open(&path, 0).unwrap());
        let tracer = Tracer::new();
        tracer.set_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        tracer.record("snapc.global.request", "interval 0");
        tracer
            .with_actor("rank2")
            .record("ompi.crcp.quiesced", "round 0");
        assert_eq!(sink.stats().0, 2);
        assert_eq!(sink.append_errors(), 0);
        sink.flush().unwrap();
        let entries = read_entries(&path).unwrap();
        assert_eq!(entries[0].phase, "snapc.global.request");
        assert_eq!(entries[1].actor, "rank2");
        assert_eq!(entries[1].seq, 1);
    }

    #[test]
    fn clean_appends_report_no_errors() {
        let path = tmpjournal("clean");
        let sink = JournalSink::open(&path, 0).unwrap();
        sink.append(&TraceEvent {
            seq: 0,
            actor: String::new(),
            phase: "a.b".into(),
            detail: "x".into(),
            elapsed_ns: 0,
        });
        assert_eq!(sink.append_errors(), 0);
        assert!(sink.last_error().is_none());
        assert_eq!(sink.path(), path);
        assert_eq!(sink.stats().0, 1);
    }
}
