//! The journal entry and its hash chain.
//!
//! Every entry's `hash` covers the entry's own content *and* the previous
//! entry's hash (`prev_hash`), so the newest hash commits to the entire
//! history: rewriting, reordering, or splicing any prefix breaks the
//! first link after the tampered record, and `verify` reports exactly
//! that seq.  Entry 0 chains from [`GENESIS_HASH`].

use serde::{Deserialize, Serialize};

/// `prev_hash` of entry 0: a fixed, format-versioned seed (not a digest
/// of anything — there is no history yet to commit to).
pub const GENESIS_HASH: u64 = 0x6372_6a72_6e6c_3031; // "crjrnl01"

/// One journaled FT event.
///
/// Mirrors `cr_core::trace::TraceEvent` plus the chain fields; `seq` is
/// the journal's own append index (a journal outlives any single
/// `Tracer`, e.g. across restarts into the same runtime directory).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Position in the journal (0-based, dense).
    pub seq: u64,
    /// Rank/node attribution label (`rank3`, `node01`), empty for
    /// runtime-level events.
    pub actor: String,
    /// Registered trace-event phase (`cr_core::events`).
    pub phase: String,
    /// Free-form detail.
    pub detail: String,
    /// Nanoseconds since the recording tracer was created (diagnostic
    /// only: deterministic replay and diff ignore it).
    pub elapsed_ns: u64,
    /// Hash of the previous entry ([`GENESIS_HASH`] for entry 0).
    pub prev_hash: u64,
    /// Chain hash of this entry (see [`JournalEntry::compute_hash`]).
    pub hash: u64,
}

impl JournalEntry {
    /// Build entry `seq` chained onto `prev_hash`, with `hash` filled in.
    pub fn chained(
        seq: u64,
        prev_hash: u64,
        actor: &str,
        phase: &str,
        detail: &str,
        elapsed_ns: u64,
    ) -> Self {
        let mut entry = JournalEntry {
            seq,
            actor: actor.to_string(),
            phase: phase.to_string(),
            detail: detail.to_string(),
            elapsed_ns,
            prev_hash,
            hash: 0,
        };
        entry.hash = entry.compute_hash();
        entry
    }

    /// The chain hash: `chunk_digest` over a canonical length-prefixed
    /// encoding of every field except `hash` itself.  Because `prev_hash`
    /// is covered, the hash commits to the whole journal prefix.
    pub fn compute_hash(&self) -> u64 {
        let mut buf = Vec::with_capacity(
            48 + self.actor.len() + self.phase.len() + self.detail.len(),
        );
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.prev_hash.to_le_bytes());
        buf.extend_from_slice(&self.elapsed_ns.to_le_bytes());
        for field in [&self.actor, &self.phase, &self.detail] {
            buf.extend_from_slice(&(field.len() as u64).to_le_bytes());
            buf.extend_from_slice(field.as_bytes());
        }
        codec::chunk_digest(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_fills_a_valid_hash() {
        let e = JournalEntry::chained(0, GENESIS_HASH, "rank0", "a.b", "x", 7);
        assert_eq!(e.hash, e.compute_hash());
        assert_eq!(e.prev_hash, GENESIS_HASH);
    }

    #[test]
    fn hash_covers_every_field() {
        let base = JournalEntry::chained(3, 42, "rank1", "p.q", "detail", 9);
        let mut variants = vec![base.clone(); 6];
        if let Some(v) = variants.get_mut(0) {
            v.seq = 4;
        }
        if let Some(v) = variants.get_mut(1) {
            v.actor = "rank2".into();
        }
        if let Some(v) = variants.get_mut(2) {
            v.phase = "p.r".into();
        }
        if let Some(v) = variants.get_mut(3) {
            v.detail = "detail!".into();
        }
        if let Some(v) = variants.get_mut(4) {
            v.elapsed_ns = 10;
        }
        if let Some(v) = variants.get_mut(5) {
            v.prev_hash = 43;
        }
        for v in &variants {
            assert_ne!(v.compute_hash(), base.hash, "field change must move the hash");
        }
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        // Length prefixes keep ("ab", "c") distinct from ("a", "bc").
        let a = JournalEntry::chained(0, GENESIS_HASH, "ab", "c.d", "", 0);
        let b = JournalEntry::chained(0, GENESIS_HASH, "a", "bc.d", "", 0);
        assert_ne!(a.hash, b.hash);
    }
}
