//! On-disk journal format.
//!
//! ```text
//! +--------+---------+----------+   +---------+---------+----------+
//! | magic  | version | reserved |   | rec len | rec crc | payload  |  ...
//! | 4 B    | 2 B     | 2 B      |   | 4 B     | 4 B     | len B    |
//! +--------+---------+----------+   +---------+---------+----------+
//!      file header (once)                one record per entry
//! ```
//!
//! All integers little-endian.  Each record's payload is the
//! `codec::to_bytes` encoding of one [`JournalEntry`]; the CRC-32 is
//! computed over the payload, so any byte flip inside a record is caught
//! at that record, while the entry-level hash chain catches *logical*
//! tampering (a re-framed rewrite with a recomputed CRC) at the first
//! link after it.  Appending is O(1): one record is written at the tail,
//! nothing earlier is touched.

use cr_core::CrError;

use crate::entry::JournalEntry;

/// Magic bytes at the start of every journal file.
pub const MAGIC: [u8; 4] = *b"OCRJ";

/// Current journal format version.
pub const VERSION: u16 = 1;

/// Fixed file-header size.
pub const HEADER_LEN: usize = 8;

/// Fixed per-record header size (length + CRC).
pub const RECORD_HEADER_LEN: usize = 8;

/// The fixed file header.
pub fn header_bytes() -> [u8; HEADER_LEN] {
    let [m0, m1, m2, m3] = MAGIC;
    let [v0, v1] = VERSION.to_le_bytes();
    [m0, m1, m2, m3, v0, v1, 0, 0]
}

/// Encode one entry as a framed record (`len | crc | payload`).
pub fn encode_record(entry: &JournalEntry) -> Result<Vec<u8>, CrError> {
    let payload = codec::to_bytes(entry)?;
    let len = u32::try_from(payload.len()).map_err(|_| {
        CrError::protocol(format!(
            "journal entry {} payload is {} bytes (over the 4 GiB record cap)",
            entry.seq,
            payload.len()
        ))
    })?;
    let mut rec = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    rec.extend_from_slice(&len.to_le_bytes());
    rec.extend_from_slice(&codec::crc32::crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::GENESIS_HASH;

    #[test]
    fn header_is_fixed_size_with_magic() {
        let h = header_bytes();
        assert_eq!(&h[..4], b"OCRJ");
        assert_eq!(h.len(), HEADER_LEN);
    }

    #[test]
    fn record_layout() {
        let e = JournalEntry::chained(0, GENESIS_HASH, "", "a.b", "d", 1);
        let rec = encode_record(&e).unwrap();
        let len = u32::from_le_bytes(rec[..4].try_into().unwrap()) as usize;
        assert_eq!(rec.len(), RECORD_HEADER_LEN + len);
        let crc = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        assert_eq!(crc, codec::crc32::crc32(&rec[8..]));
        let back: JournalEntry = codec::from_bytes(&rec[8..]).unwrap();
        assert_eq!(back, e);
    }
}
