//! OPAL — Open Portable Access Layer (simulated).
//!
//! In Open MPI, OPAL abstracts the local machine: event loop, process
//! utilities, and — for fault tolerance — the **CRS framework**
//! (Checkpoint/Restart Service), which turns "checkpoint this PID" into a
//! context file regardless of which single-process checkpointer is
//! installed. This crate reproduces that layer for simulated processes:
//!
//! * [`gate::SafePointGate`] — the cooperative stop/resume mechanism that
//!   stands in for BLCR's signal-based thread interruption: application
//!   threads park at *safe points* (explicit progress calls and blocking
//!   communication waits) while the checkpoint notification thread drives
//!   the INC chain.
//! * [`image::ProcessImage`] — the captured process state: named sections
//!   contributed by each subsystem (application state, point-to-point
//!   layer state, ...), serialized into a single checksummed context file.
//! * [`crs`] — the CRS framework with three components: `blcr_sim`
//!   (system-level style, no application cooperation), `self` (application
//!   callbacks, as in LAM/MPI and Open MPI), and `none` (declares the
//!   process non-checkpointable).
//! * [`incr`] — the chunk-level incremental checkpoint engine the
//!   checkpointing components delegate context encoding to: full images by
//!   default, dirty-chunks-only deltas when `crs_incr_enabled` is set,
//!   with manifest-verified chain replay at restart.
//! * [`store`] — the content-addressed chunk store: digest-keyed,
//!   frame-wrapped blobs with persisted refcounts, shared across ranks and
//!   intervals when `filem_dedup_enabled` is set.
//! * [`pool`] — the parallel hash/copy pool of the checkpoint data path:
//!   bounded hash workers (`opal_hash_workers`) for manifest builds and
//!   digest verification, plus a reusable buffer pool
//!   (`opal_buffer_pool_cap`) bounding per-chunk allocations.
//! * [`container::ProcessContainer`] — per-process control plane: the
//!   checkpoint window (enabled after `MPI_Init`, disabled at
//!   `MPI_Finalize`), capture-section registry, INC registry, and the
//!   checkpoint **notification thread** (paper §6.5).
//! * [`progress::ProgressEngine`] — the OPAL event-loop stand-in; a real
//!   subsystem that must pause around checkpoints, used to populate the
//!   OPAL slot of the INC chain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod crs;
pub mod gate;
pub mod image;
pub mod incr;
pub mod pool;
pub mod progress;
pub mod store;

pub use container::{OpalCtrl, ProcessContainer};
pub use crs::{crs_framework, CrsComponent, SelfCallbacks};
pub use incr::{CkptKind, IncrConfig, IncrEngine};
pub use pool::{BufferPool, PoolStats};
pub use store::{ChunkId, ChunkStore};
pub use gate::SafePointGate;
pub use image::ProcessImage;
pub use progress::ProgressEngine;
