//! OPAL CRS — the Checkpoint/Restart Service framework (paper §6.4).
//!
//! A CRS component provides exactly two operations: checkpoint a process
//! into a local snapshot reference, and restart a process image from one.
//! Components also implement enable/disable so non-checkpointable code
//! sections are protected, and may refuse service entirely (the `none`
//! component), which marks the process non-checkpointable — the snapshot
//! coordinator must then refuse whole-job requests without affecting any
//! process.
//!
//! Components:
//!
//! * **`blcr_sim`** — models BLCR, a *system-level* checkpointer: it images
//!   the process without any application cooperation (no callbacks). An
//!   MCA parameter can inject deterministic failures for fault testing.
//! * **`self`** — models the SELF component: the application registers
//!   checkpoint / continue / restart callbacks that run around the image
//!   capture, supporting application-level checkpointing.
//! * **`none`** — no checkpointer available; the process declares itself
//!   non-checkpointable.

use std::sync::Arc;

use mca::{Framework, McaParams};
use parking_lot::Mutex;

use cr_core::snapshot::LocalSnapshot;
use cr_core::{CrError, FtEventState};

use crate::image::ProcessImage;
use crate::incr::IncrEngine;

/// Callback the application may register through the SELF component.
pub type SelfCallback = Box<dyn FnMut() -> Result<(), CrError> + Send>;

/// Registry of SELF-component application callbacks for one process.
#[derive(Default)]
pub struct SelfCallbacks {
    /// Invoked just before the process image is captured.
    pub on_checkpoint: Mutex<Option<SelfCallback>>,
    /// Invoked when the process continues after a checkpoint.
    pub on_continue: Mutex<Option<SelfCallback>>,
    /// Invoked when the process has been restarted from a snapshot.
    pub on_restart: Mutex<Option<SelfCallback>>,
}

impl SelfCallbacks {
    /// Empty registry (no callbacks installed).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn fire(slot: &Mutex<Option<SelfCallback>>) -> Result<(), CrError> {
        if let Some(cb) = slot.lock().as_mut() {
            cb()?;
        }
        Ok(())
    }
}

/// A single-process checkpoint/restart system.
pub trait CrsComponent: Send + Sync {
    /// Component name as used in MCA selection and snapshot metadata.
    fn name(&self) -> &'static str;

    /// True when this component can actually take checkpoints. The snapshot
    /// coordinator consults this before initiating any process checkpoint.
    fn can_checkpoint(&self) -> bool {
        true
    }

    /// Persist `image` into `snapshot` (write the context file and any
    /// component-specific metadata).
    fn checkpoint(
        &self,
        image: &ProcessImage,
        snapshot: &mut LocalSnapshot,
    ) -> Result<(), CrError>;

    /// Reconstruct a process image from `snapshot`.
    fn restart(&self, snapshot: &LocalSnapshot) -> Result<ProcessImage, CrError>;

    /// Notification delivered after the checkpoint operation resolves
    /// (continue in place, restarted image, or error). The SELF component
    /// uses this to fire application callbacks.
    fn post_event(&self, _state: FtEventState) -> Result<(), CrError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// blcr_sim
// ---------------------------------------------------------------------------

/// Simulated BLCR: transparent system-level checkpointing.
pub struct BlcrSim {
    /// Fail every Nth checkpoint (0 = never); deterministic fault injection
    /// via the `crs_blcr_sim_fail_every` MCA parameter.
    fail_every: u64,
    attempts: Mutex<u64>,
    /// Memory-exclusion hints (paper §5.4, citing Plank's memory
    /// exclusion): image sections named in the comma-separated
    /// `crs_blcr_sim_exclude` parameter are omitted from the context file.
    /// Excluded state must be reconstructible by its owner at restart —
    /// the classic use is scratch buffers the application can recompute.
    exclude: Vec<String>,
    /// Context encoder: full images, or dirty-chunk deltas when
    /// `crs_incr_enabled` is set (see [`crate::incr`]).
    incr: IncrEngine,
}

impl BlcrSim {
    /// Build from MCA parameters.
    pub fn from_params(params: &McaParams) -> Self {
        let exclude = params
            .get("crs_blcr_sim_exclude")
            .map(|raw| {
                raw.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        BlcrSim {
            fail_every: params
                .get_parsed_or("crs_blcr_sim_fail_every", 0u64)
                .unwrap_or(0),
            attempts: Mutex::new(0),
            exclude,
            incr: IncrEngine::from_params(params),
        }
    }
}

impl CrsComponent for BlcrSim {
    fn name(&self) -> &'static str {
        "blcr_sim"
    }

    fn checkpoint(
        &self,
        image: &ProcessImage,
        snapshot: &mut LocalSnapshot,
    ) -> Result<(), CrError> {
        {
            let mut attempts = self.attempts.lock();
            *attempts += 1;
            if self.fail_every != 0 && (*attempts).is_multiple_of(self.fail_every) {
                return Err(CrError::FtEventFailed {
                    subsystem: "crs/blcr_sim".into(),
                    state: FtEventState::Checkpoint,
                    detail: format!("injected failure (attempt {})", *attempts),
                });
            }
        }
        let image = if self.exclude.is_empty() {
            image.clone()
        } else {
            let mut pruned = ProcessImage::new();
            for name in image.names() {
                if !self.exclude.iter().any(|e| e == name) {
                    pruned.insert(
                        name,
                        image.section(name).expect("listed section").to_vec(),
                    );
                }
            }
            pruned
        };
        self.incr.write_image(&image, snapshot)?;
        snapshot.set_param("sections", &image.names().join(","))?;
        if !self.exclude.is_empty() {
            snapshot.set_param("excluded", &self.exclude.join(","))?;
        }
        Ok(())
    }

    fn restart(&self, snapshot: &LocalSnapshot) -> Result<ProcessImage, CrError> {
        crate::incr::read_full_image(snapshot)
    }
}

// ---------------------------------------------------------------------------
// self
// ---------------------------------------------------------------------------

/// The SELF component: application-level checkpointing callbacks around a
/// capture that otherwise matches `blcr_sim`'s on-disk format.
pub struct SelfCrs {
    callbacks: Arc<SelfCallbacks>,
    incr: IncrEngine,
}

impl SelfCrs {
    /// Build over a process's callback registry (incremental mode off).
    pub fn new(callbacks: Arc<SelfCallbacks>) -> Self {
        SelfCrs {
            callbacks,
            incr: IncrEngine::disabled(),
        }
    }

    /// Build with the incremental engine configured from MCA parameters.
    pub fn from_params(callbacks: Arc<SelfCallbacks>, params: &McaParams) -> Self {
        SelfCrs {
            callbacks,
            incr: IncrEngine::from_params(params),
        }
    }
}

impl CrsComponent for SelfCrs {
    fn name(&self) -> &'static str {
        "self"
    }

    fn checkpoint(
        &self,
        image: &ProcessImage,
        snapshot: &mut LocalSnapshot,
    ) -> Result<(), CrError> {
        SelfCallbacks::fire(&self.callbacks.on_checkpoint)?;
        self.incr.write_image(image, snapshot)?;
        snapshot.set_param("sections", &image.names().join(","))?;
        Ok(())
    }

    fn restart(&self, snapshot: &LocalSnapshot) -> Result<ProcessImage, CrError> {
        crate::incr::read_full_image(snapshot)
    }

    fn post_event(&self, state: FtEventState) -> Result<(), CrError> {
        match state {
            FtEventState::Continue => SelfCallbacks::fire(&self.callbacks.on_continue),
            FtEventState::Restart => SelfCallbacks::fire(&self.callbacks.on_restart),
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// none
// ---------------------------------------------------------------------------

/// No checkpointer available: the process is non-checkpointable.
pub struct NoneCrs;

impl CrsComponent for NoneCrs {
    fn name(&self) -> &'static str {
        "none"
    }

    fn can_checkpoint(&self) -> bool {
        false
    }

    fn checkpoint(
        &self,
        _image: &ProcessImage,
        _snapshot: &mut LocalSnapshot,
    ) -> Result<(), CrError> {
        Err(CrError::Unsupported {
            detail: "the none CRS component cannot take checkpoints".into(),
        })
    }

    fn restart(&self, _snapshot: &LocalSnapshot) -> Result<ProcessImage, CrError> {
        Err(CrError::Unsupported {
            detail: "the none CRS component cannot restart processes".into(),
        })
    }
}

/// Assemble the CRS framework for one process.
///
/// `blcr_sim` has the highest default priority (mirrors real deployments
/// where a system-level checkpointer is preferred when present), then
/// `self`, then `none`.
pub fn crs_framework(callbacks: Arc<SelfCallbacks>) -> Framework<dyn CrsComponent> {
    let mut fw: Framework<dyn CrsComponent> = Framework::new("crs");
    fw.register(
        "blcr_sim",
        20,
        "simulated system-level checkpointer (BLCR-like)",
        |params| Box::new(BlcrSim::from_params(params)),
    );
    let cbs = Arc::clone(&callbacks);
    fw.register(
        "self",
        10,
        "application-level checkpointing callbacks",
        move |params| Box::new(SelfCrs::from_params(Arc::clone(&cbs), params)),
    );
    fw.register("none", -1, "no checkpoint support", |_params| {
        Box::new(NoneCrs)
    });
    fw
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    use cr_core::Rank;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "opal_crs_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_image() -> ProcessImage {
        let mut img = ProcessImage::new();
        img.insert("app", vec![7u8; 256]);
        img.insert("pml", b"counters".to_vec());
        img
    }

    #[test]
    fn blcr_sim_checkpoint_restart_roundtrip() {
        let dir = tmpdir("blcr");
        let crs = BlcrSim::from_params(&McaParams::new());
        let mut snap = LocalSnapshot::create(&dir, Rank(0), crs.name(), 0, "node00").unwrap();
        let img = sample_image();
        crs.checkpoint(&img, &mut snap).unwrap();
        let restored = crs.restart(&snap).unwrap();
        assert_eq!(restored, img);
        assert_eq!(snap.param("sections"), Some("app,pml"));
    }

    #[test]
    fn blcr_sim_fault_injection_is_deterministic() {
        let dir = tmpdir("blcrfail");
        let params = McaParams::new();
        params.set("crs_blcr_sim_fail_every", "3");
        let crs = BlcrSim::from_params(&params);
        let mut snap = LocalSnapshot::create(&dir, Rank(0), crs.name(), 0, "node00").unwrap();
        let img = sample_image();
        assert!(crs.checkpoint(&img, &mut snap).is_ok()); // 1
        assert!(crs.checkpoint(&img, &mut snap).is_ok()); // 2
        assert!(crs.checkpoint(&img, &mut snap).is_err()); // 3 fails
        assert!(crs.checkpoint(&img, &mut snap).is_ok()); // 4
    }

    #[test]
    fn self_component_fires_callbacks_in_order() {
        let dir = tmpdir("selfcb");
        let callbacks = SelfCallbacks::new();
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));

        let o = Arc::clone(&order);
        *callbacks.on_checkpoint.lock() = Some(Box::new(move || {
            o.lock().push("checkpoint");
            Ok(())
        }));
        let o = Arc::clone(&order);
        *callbacks.on_continue.lock() = Some(Box::new(move || {
            o.lock().push("continue");
            Ok(())
        }));
        let o = Arc::clone(&order);
        *callbacks.on_restart.lock() = Some(Box::new(move || {
            o.lock().push("restart");
            Ok(())
        }));

        let crs = SelfCrs::new(Arc::clone(&callbacks));
        let mut snap = LocalSnapshot::create(&dir, Rank(1), crs.name(), 0, "node00").unwrap();
        crs.checkpoint(&sample_image(), &mut snap).unwrap();
        crs.post_event(FtEventState::Continue).unwrap();
        crs.post_event(FtEventState::Restart).unwrap();
        crs.post_event(FtEventState::Error).unwrap();
        assert_eq!(*order.lock(), vec!["checkpoint", "continue", "restart"]);
    }

    #[test]
    fn self_callback_failure_aborts_checkpoint() {
        let dir = tmpdir("selffail");
        let callbacks = SelfCallbacks::new();
        *callbacks.on_checkpoint.lock() = Some(Box::new(|| {
            Err(CrError::Unsupported {
                detail: "app refuses".into(),
            })
        }));
        let crs = SelfCrs::new(callbacks);
        let mut snap = LocalSnapshot::create(&dir, Rank(0), crs.name(), 0, "node00").unwrap();
        assert!(crs.checkpoint(&sample_image(), &mut snap).is_err());
        // No context file must have been written.
        assert!(!snap.context_path().exists());
    }

    #[test]
    fn none_component_refuses_everything() {
        let dir = tmpdir("none");
        let crs = NoneCrs;
        assert!(!crs.can_checkpoint());
        let mut snap = LocalSnapshot::create(&dir, Rank(0), crs.name(), 0, "node00").unwrap();
        assert!(crs.checkpoint(&sample_image(), &mut snap).is_err());
        assert!(crs.restart(&snap).is_err());
    }

    #[test]
    fn framework_selection_and_restart_by_name() {
        let fw = crs_framework(SelfCallbacks::new());
        let params = McaParams::new();
        // Default: highest priority wins.
        assert_eq!(fw.select(&params).unwrap().name(), "blcr_sim");
        params.set("crs", "self");
        assert_eq!(fw.select(&params).unwrap().name(), "self");
        // Restart path instantiates by metadata name regardless of params.
        assert_eq!(fw.instantiate("none", &params).unwrap().name(), "none");
        assert!(fw.instantiate("condor", &params).is_err());
    }

    #[test]
    fn components_restart_each_others_files() {
        // blcr_sim and self share the context format, so a snapshot taken by
        // one can be inspected by the other (heterogeneous support, §4).
        let dir = tmpdir("hetero");
        let blcr = BlcrSim::from_params(&McaParams::new());
        let selfcrs = SelfCrs::new(SelfCallbacks::new());
        let mut snap = LocalSnapshot::create(&dir, Rank(0), blcr.name(), 0, "node00").unwrap();
        let img = sample_image();
        blcr.checkpoint(&img, &mut snap).unwrap();
        assert_eq!(selfcrs.restart(&snap).unwrap(), img);
    }

    #[test]
    fn callbacks_can_mutate_app_state() {
        let callbacks = SelfCallbacks::new();
        let counter = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        *callbacks.on_continue.lock() = Some(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }));
        let crs = SelfCrs::new(callbacks);
        crs.post_event(FtEventState::Continue).unwrap();
        crs.post_event(FtEventState::Continue).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }
}

#[cfg(test)]
mod exclusion_tests {
    use super::*;
    use cr_core::Rank;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "opal_crs_excl_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn memory_exclusion_hints_shrink_the_image() {
        let dir = tmpdir("shrink");
        let mut image = ProcessImage::new();
        image.insert("app", vec![1u8; 64]);
        image.insert("scratch", vec![0u8; 1 << 16]); // recomputable buffer
        image.insert("pml", vec![2u8; 32]);

        let params = McaParams::new();
        let full = BlcrSim::from_params(&params);
        let mut full_snap = LocalSnapshot::create(&dir, Rank(0), "blcr_sim", 0, "n0").unwrap();
        full.checkpoint(&image, &mut full_snap).unwrap();

        params.set("crs_blcr_sim_exclude", "scratch");
        let pruned = BlcrSim::from_params(&params);
        let dir2 = tmpdir("shrink2");
        let mut small_snap = LocalSnapshot::create(&dir2, Rank(0), "blcr_sim", 0, "n0").unwrap();
        pruned.checkpoint(&image, &mut small_snap).unwrap();

        let full_size = full_snap.size_bytes().unwrap();
        let small_size = small_snap.size_bytes().unwrap();
        assert!(
            small_size + (1 << 15) < full_size,
            "exclusion must drop the scratch section ({small_size} vs {full_size})"
        );
        assert_eq!(small_snap.param("excluded"), Some("scratch"));

        // Restart sees the kept sections only.
        let restored = pruned.restart(&small_snap).unwrap();
        assert!(restored.section("app").is_some());
        assert!(restored.section("pml").is_some());
        assert!(restored.section("scratch").is_none());
    }

    #[test]
    fn empty_and_unknown_exclusions_are_harmless() {
        let params = McaParams::new();
        params.set("crs_blcr_sim_exclude", " , nonexistent ,");
        let crs = BlcrSim::from_params(&params);
        let mut image = ProcessImage::new();
        image.insert("app", vec![5u8; 16]);
        let dir = tmpdir("harmless");
        let mut snap = LocalSnapshot::create(&dir, Rank(0), "blcr_sim", 0, "n0").unwrap();
        crs.checkpoint(&image, &mut snap).unwrap();
        let restored = crs.restart(&snap).unwrap();
        assert_eq!(restored.section("app"), Some(&[5u8; 16][..]));
    }
}
