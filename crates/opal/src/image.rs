//! The captured state of one process.
//!
//! BLCR dumps a process's address space wholesale. Our simulated processes
//! instead *register sections*: each subsystem that owns restart-relevant
//! state (the application's state object, the point-to-point layer's
//! queues and counters, the collective module, ...) contributes one named
//! byte section. The union of sections is the process image that a CRS
//! component persists into the local snapshot's context file.

use serde::{Deserialize, Serialize};

use cr_core::CrError;

/// One named section of a process image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Section {
    /// Section name (e.g. `"app"`, `"pml"`).
    pub name: String,
    /// Serialized subsystem state.
    pub bytes: Vec<u8>,
}

/// A complete captured process state: ordered named sections.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProcessImage {
    sections: Vec<Section>,
}

impl ProcessImage {
    /// Empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add or replace a section.
    pub fn insert(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        let name = name.into();
        if let Some(existing) = self.sections.iter_mut().find(|s| s.name == name) {
            existing.bytes = bytes;
        } else {
            self.sections.push(Section { name, bytes });
        }
    }

    /// Bytes of `name`'s section, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.bytes.as_slice())
    }

    /// Bytes of `name`'s section, or a structured error naming what exists.
    pub fn require_section(&self, name: &str) -> Result<&[u8], CrError> {
        self.section(name).ok_or_else(|| CrError::BadSnapshot {
            detail: format!(
                "process image has no {name:?} section (has: {})",
                self.names().join(", ")
            ),
        })
    }

    /// Decode `name`'s section as a typed value.
    pub fn decode_section<T: serde::de::DeserializeOwned>(&self, name: &str) -> Result<T, CrError> {
        Ok(codec::from_bytes(self.require_section(name)?)?)
    }

    /// Encode `value` and store it as section `name`.
    pub fn encode_section<T: Serialize>(&mut self, name: &str, value: &T) -> Result<(), CrError> {
        self.insert(name, codec::to_bytes(value)?);
        Ok(())
    }

    /// Section names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// Iterate `(name, bytes)` pairs in image order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.sections
            .iter()
            .map(|s| (s.name.as_str(), s.bytes.as_slice()))
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no sections have been captured.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Total payload bytes across sections.
    pub fn total_bytes(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }

    /// Serialize the whole image to context-file payload bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, CrError> {
        Ok(codec::to_bytes(self)?)
    }

    /// Parse an image from context-file payload bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CrError> {
        Ok(codec::from_bytes(bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace() {
        let mut img = ProcessImage::new();
        assert!(img.is_empty());
        img.insert("app", vec![1, 2, 3]);
        img.insert("pml", vec![4]);
        img.insert("app", vec![9]);
        assert_eq!(img.len(), 2);
        assert_eq!(img.section("app"), Some(&[9u8][..]));
        assert_eq!(img.section("pml"), Some(&[4u8][..]));
        assert_eq!(img.section("missing"), None);
        assert_eq!(img.names(), vec!["app", "pml"]);
        assert_eq!(img.total_bytes(), 2);
    }

    #[test]
    fn require_section_error_lists_names() {
        let mut img = ProcessImage::new();
        img.insert("app", vec![]);
        let err = img.require_section("pml").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("pml"));
        assert!(msg.contains("app"));
    }

    #[test]
    fn image_roundtrip() {
        let mut img = ProcessImage::new();
        img.insert("app", vec![0u8; 1024]);
        img.insert("pml", b"queue state".to_vec());
        let bytes = img.to_bytes().unwrap();
        let back = ProcessImage::from_bytes(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn typed_sections() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct AppState {
            iteration: u64,
            sum: f64,
        }
        let mut img = ProcessImage::new();
        img.encode_section("app", &AppState { iteration: 7, sum: 1.5 })
            .unwrap();
        let back: AppState = img.decode_section("app").unwrap();
        assert_eq!(back, AppState { iteration: 7, sum: 1.5 });
        assert!(img.decode_section::<AppState>("nope").is_err());
    }

    #[test]
    fn corrupt_image_bytes_error() {
        assert!(ProcessImage::from_bytes(&[0xFF, 0x00, 0x13]).is_err());
    }
}
