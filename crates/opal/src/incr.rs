//! Incremental checkpoint engine: ship only dirty chunks per interval.
//!
//! Full checkpoints scale with total state size even when the application
//! mutates a tiny working set between intervals. This module gives every
//! CRS component a chunk-level incremental mode: each [`ProcessImage`]
//! section is cut into fixed-size chunks ([`codec::chunk`]), digested, and
//! compared against the manifest of the previous interval (cached in the
//! engine, which lives in the per-rank CRS instance inside the daemon's
//! process container). Only chunks whose digest changed are written, as a
//! *delta context* that records its base and predecessor intervals; the
//! snapshot metadata carries the kind, the chain links, and the full
//! manifest of the image the delta reconstructs to.
//!
//! A full image is forced whenever no usable base exists (first interval,
//! fresh restart, or a retried interval number) and every
//! `crs_incr_full_every` intervals, bounding chain length. Restart replays
//! the chain oldest-first ([`reassemble`]) and verifies the reassembled
//! bytes against the newest manifest's chunk digests before handing the
//! image to the component's `restart` — a truncated or corrupted delta
//! fails loudly instead of resuming a silently wrong process.

use codec::chunk::ChunkManifest;
use mca::McaParams;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use cr_core::snapshot::LocalSnapshot;
use cr_core::CrError;

use crate::image::ProcessImage;
use crate::pool::BufferPool;

/// Snapshot metadata key: `"full"`, `"delta"`, or `"dedup"`.
pub const PARAM_KIND: &str = "ckpt_kind";
/// Snapshot metadata key: interval of the chain's full base image.
pub const PARAM_BASE: &str = "base_interval";
/// Snapshot metadata key: interval this delta applies on top of.
pub const PARAM_PREV: &str = "prev_interval";
/// Snapshot metadata key: rendered [`ChunkManifest`] of the image this
/// snapshot reconstructs to (only written when incremental mode is on).
pub const PARAM_MANIFEST: &str = "manifest";

/// What a checkpoint wrote: a complete image or only dirty chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptKind {
    /// Complete image; restores on its own.
    Full,
    /// Dirty chunks only; restores by replaying base + delta chain.
    Delta,
    /// Complete image whose manifest keys into the content-addressed
    /// chunk store ([`crate::store`]); restores by direct manifest→chunk
    /// fetch, never by chain replay.
    Dedup,
}

impl CkptKind {
    /// Metadata string form.
    pub fn as_str(self) -> &'static str {
        match self {
            CkptKind::Full => "full",
            CkptKind::Delta => "delta",
            CkptKind::Dedup => "dedup",
        }
    }
}

/// Dirty chunks of one section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaSection {
    /// Section name.
    pub name: String,
    /// Section length this interval (the reassembled buffer is resized to
    /// this before chunks are applied, handling growth and shrinkage).
    pub total_len: u64,
    /// `(chunk id, bytes)` of every chunk that changed since the previous
    /// interval, id-ascending.
    pub chunks: Vec<(u32, Vec<u8>)>,
}

/// The payload of a delta context file.
///
/// Sections list *every* current image section (possibly with zero dirty
/// chunks); a section present at the previous interval but absent here was
/// dropped from the image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaContext {
    /// Chunk size the ids refer to.
    pub chunk_bytes: u32,
    /// Interval of the chain's full base image.
    pub base_interval: u64,
    /// Interval this delta applies on top of.
    pub prev_interval: u64,
    /// Per-section dirty chunks, in image order.
    pub sections: Vec<DeltaSection>,
}

/// Incremental-checkpoint knobs (see `mca::registry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrConfig {
    /// Master switch (`crs_incr_enabled`, default off).
    pub enabled: bool,
    /// Chunk size in bytes (`crs_incr_chunk_kb` × 1024).
    pub chunk_bytes: usize,
    /// Force a full image every N intervals (`crs_incr_full_every`),
    /// bounding delta-chain length. Values ≤ 1 disable deltas entirely.
    pub full_every: u64,
    /// Content-addressed dedup mode (`filem_dedup_enabled`, default off):
    /// every checkpoint is a self-contained full image tagged
    /// [`CkptKind::Dedup`] whose chunk manifest is always written, so the
    /// commit path can key the bytes into the chunk store.  Takes
    /// precedence over delta mode — dedup intervals never chain.
    pub dedup: bool,
}

impl IncrConfig {
    /// Read the knobs from MCA parameters (defaults mirror the registry).
    pub fn from_params(params: &McaParams) -> Self {
        IncrConfig {
            enabled: params.get_bool_or("crs_incr_enabled", false).unwrap_or(false),
            chunk_bytes: params
                .get_parsed_or("crs_incr_chunk_kb", 4u64)
                .unwrap_or(4)
                .max(1) as usize
                * 1024,
            full_every: params
                .get_parsed_or("crs_incr_full_every", 16u64)
                .unwrap_or(16),
            dedup: params
                .get_bool_or("filem_dedup_enabled", false)
                .unwrap_or(false),
        }
    }

    /// Incremental mode off (the default-constructed engine).
    pub fn disabled() -> Self {
        IncrConfig {
            enabled: false,
            chunk_bytes: 4 * 1024,
            full_every: 16,
            dedup: false,
        }
    }
}

/// Previous interval's manifest, cached per rank inside the CRS instance.
struct IncrCache {
    /// Interval of the newest snapshot this rank wrote.
    interval: u64,
    /// Interval of the chain's full base.
    base_interval: u64,
    /// Deltas written since that base (bounds chain length).
    deltas_since_full: u64,
    /// Manifest of the image at `interval`.
    manifest: ChunkManifest,
}

/// The per-rank incremental checkpoint writer CRS components delegate
/// their context encoding to.
pub struct IncrEngine {
    config: IncrConfig,
    cache: Mutex<Option<IncrCache>>,
    /// Hash lanes for manifest builds (`opal_hash_workers`).
    workers: usize,
    /// Reusable chunk buffers for delta builds (`opal_buffer_pool_cap`).
    pool: BufferPool,
}

impl IncrEngine {
    /// Engine configured from MCA parameters.
    pub fn from_params(params: &McaParams) -> Self {
        IncrEngine {
            config: IncrConfig::from_params(params),
            cache: Mutex::new(None),
            workers: crate::pool::hash_workers(params),
            pool: BufferPool::new(crate::pool::buffer_pool_cap(params)),
        }
    }

    /// Engine with incremental mode off: every checkpoint is a full image,
    /// byte-identical to the pre-incremental format.
    pub fn disabled() -> Self {
        IncrEngine {
            config: IncrConfig::disabled(),
            cache: Mutex::new(None),
            workers: 1,
            pool: BufferPool::new(8),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> IncrConfig {
        self.config
    }

    /// The engine's reusable chunk-buffer pool (hit/miss counters feed
    /// the `ckpt_datapath` allocation-flat ratchet).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Write `image` into `snapshot` as either a full context or a delta
    /// against the cached previous interval, and record kind/chain/manifest
    /// metadata. Returns what was written.
    ///
    /// A full image is forced when incremental mode is off, no cache
    /// exists (first interval of this process incarnation), the chain
    /// would exceed `full_every`, or the cached interval is not strictly
    /// older than `snapshot`'s — the latter covers a failed-and-retried
    /// interval number, where a delta against state the coordinator never
    /// committed would corrupt the chain.
    pub fn write_image(
        &self,
        image: &ProcessImage,
        snapshot: &mut LocalSnapshot,
    ) -> Result<CkptKind, CrError> {
        let interval = snapshot.interval();
        let sections: Vec<(&str, &[u8])> = image.iter().collect();
        let manifest =
            crate::pool::manifest_parallel(&sections, self.config.chunk_bytes, self.workers);
        let mut cache = self.cache.lock();
        let base = cache.as_ref().filter(|c| {
            self.config.enabled
                && !self.config.dedup
                && self.config.full_every > 1
                && c.interval < interval
                && c.deltas_since_full + 1 < self.config.full_every
        });
        let kind = match base {
            Some(prev) => {
                let ctx = build_delta_pooled(
                    image,
                    &manifest,
                    &prev.manifest,
                    self.config.chunk_bytes,
                    &self.pool,
                )
                .with_chain(prev.base_interval, prev.interval);
                snapshot.write_context(&codec::to_bytes(&ctx)?)?;
                snapshot.set_param(PARAM_BASE, &ctx.base_interval.to_string())?;
                snapshot.set_param(PARAM_PREV, &ctx.prev_interval.to_string())?;
                // The serialized context is on disk; the chunk buffers go
                // back to the pool for the next interval's delta.
                recycle_delta(ctx, &self.pool);
                CkptKind::Delta
            }
            None => {
                snapshot.write_context(&image.to_bytes()?)?;
                snapshot.set_param(PARAM_BASE, &interval.to_string())?;
                snapshot.set_param(PARAM_PREV, &interval.to_string())?;
                if self.config.dedup {
                    CkptKind::Dedup
                } else {
                    CkptKind::Full
                }
            }
        };
        snapshot.set_param(PARAM_KIND, kind.as_str())?;
        if self.config.enabled || self.config.dedup {
            snapshot.set_param(PARAM_MANIFEST, &manifest.render())?;
        }
        let (base_interval, deltas_since_full) = match (kind, cache.as_ref()) {
            (CkptKind::Delta, Some(prev)) => (prev.base_interval, prev.deltas_since_full + 1),
            _ => (interval, 0),
        };
        *cache = Some(IncrCache {
            interval,
            base_interval,
            deltas_since_full,
            manifest,
        });
        Ok(kind)
    }
}

/// Compute the delta of `image` against the previous interval's manifest,
/// allocating a fresh `Vec` per dirty chunk (the legacy path, kept as the
/// reference the pooled builder is property-tested against).
pub fn build_delta(
    image: &ProcessImage,
    manifest: &ChunkManifest,
    prev: &ChunkManifest,
    chunk_bytes: usize,
) -> DeltaContext {
    let sections = image
        .iter()
        .map(|(name, bytes)| {
            let dirty = match manifest.section(name) {
                Some(cur) => codec::changed_chunks(prev.section(name), cur),
                None => Vec::new(), // unreachable: manifest was built from image
            };
            DeltaSection {
                name: name.to_string(),
                total_len: bytes.len() as u64,
                chunks: dirty
                    .into_iter()
                    .map(|id| {
                        let start = id as usize * chunk_bytes;
                        let end = (start + chunk_bytes).min(bytes.len());
                        (id, bytes.get(start..end).unwrap_or(&[]).to_vec())
                    })
                    .collect(),
            }
        })
        .collect();
    DeltaContext {
        chunk_bytes: chunk_bytes as u32,
        base_interval: 0,
        prev_interval: 0,
        sections,
    }
}

/// [`build_delta`] with chunk buffers drawn from `pool` instead of fresh
/// allocations. Byte-identical output (a pooled buffer's spare capacity
/// never reaches the serializer); pair with [`recycle_delta`] once the
/// context is serialized so steady-state delta builds allocate O(pool)
/// buffers, not O(dirty chunks).
pub fn build_delta_pooled(
    image: &ProcessImage,
    manifest: &ChunkManifest,
    prev: &ChunkManifest,
    chunk_bytes: usize,
    pool: &BufferPool,
) -> DeltaContext {
    let sections = image
        .iter()
        .map(|(name, bytes)| {
            let dirty = match manifest.section(name) {
                Some(cur) => codec::changed_chunks(prev.section(name), cur),
                None => Vec::new(), // unreachable: manifest was built from image
            };
            DeltaSection {
                name: name.to_string(),
                total_len: bytes.len() as u64,
                chunks: dirty
                    .into_iter()
                    .map(|id| {
                        let start = id as usize * chunk_bytes;
                        let end = (start + chunk_bytes).min(bytes.len());
                        let chunk = bytes.get(start..end).unwrap_or(&[]);
                        let mut buf = pool.take(chunk.len());
                        buf.extend_from_slice(chunk);
                        (id, buf)
                    })
                    .collect(),
            }
        })
        .collect();
    DeltaContext {
        chunk_bytes: chunk_bytes as u32,
        base_interval: 0,
        prev_interval: 0,
        sections,
    }
}

/// Return a serialized delta's chunk buffers to `pool` for reuse.
pub fn recycle_delta(ctx: DeltaContext, pool: &BufferPool) {
    for section in ctx.sections {
        for (_, buf) in section.chunks {
            pool.put(buf);
        }
    }
}

impl DeltaContext {
    fn with_chain(mut self, base: u64, prev: u64) -> Self {
        self.base_interval = base;
        self.prev_interval = prev;
        self
    }

    /// Payload bytes of the dirty chunks (the delta's data volume).
    pub fn dirty_bytes(&self) -> u64 {
        self.sections
            .iter()
            .flat_map(|s| s.chunks.iter())
            .map(|(_, b)| b.len() as u64)
            .sum()
    }
}

/// Decode a *full* snapshot's context, refusing delta contexts with a
/// clear error instead of a deserialization failure.
pub fn read_full_image(snapshot: &LocalSnapshot) -> Result<ProcessImage, CrError> {
    if snapshot.param(PARAM_KIND) == Some(CkptKind::Delta.as_str()) {
        return Err(CrError::BadSnapshot {
            detail: format!(
                "rank {} interval {} holds a delta context; restart must replay \
                 its base + delta chain (restart_from does this automatically)",
                snapshot.rank(),
                snapshot.interval()
            ),
        });
    }
    ProcessImage::from_bytes(&snapshot.read_context()?)
}

/// Apply one delta on top of `prev`, producing the next interval's image.
///
/// The reassembled image takes the delta's section list and order; chunk
/// offsets past the resized section are a corrupt chain and error out.
pub fn apply_delta(prev: &ProcessImage, delta: &DeltaContext) -> Result<ProcessImage, CrError> {
    let chunk_bytes = delta.chunk_bytes.max(1) as usize;
    let mut next = ProcessImage::new();
    for section in &delta.sections {
        let mut buf = prev
            .section(&section.name)
            .map(<[u8]>::to_vec)
            .unwrap_or_default();
        buf.resize(section.total_len as usize, 0);
        for (id, bytes) in &section.chunks {
            let start = *id as usize * chunk_bytes;
            let end = start + bytes.len();
            let slot = buf.get_mut(start..end).ok_or_else(|| CrError::BadSnapshot {
                detail: format!(
                    "delta chunk {id} of section {:?} spans {start}..{end} but the \
                     section is only {} bytes — corrupt or truncated delta",
                    section.name, section.total_len
                ),
            })?;
            slot.copy_from_slice(bytes);
        }
        next.insert(section.name.clone(), buf);
    }
    Ok(next)
}

/// Replay a rank's snapshot chain — full base first, then each delta in
/// interval order — and verify the reassembled image against the newest
/// snapshot's chunk manifest before returning it.
pub fn reassemble(chain: &[LocalSnapshot]) -> Result<ProcessImage, CrError> {
    let (base, deltas) = chain.split_first().ok_or_else(|| CrError::BadSnapshot {
        detail: "empty snapshot chain".into(),
    })?;
    let mut image = read_full_image(base)?;
    for snapshot in deltas {
        if snapshot.param(PARAM_KIND) != Some(CkptKind::Delta.as_str()) {
            return Err(CrError::BadSnapshot {
                detail: format!(
                    "interval {} appears mid-chain but is not a delta",
                    snapshot.interval()
                ),
            });
        }
        let delta: DeltaContext = codec::from_bytes(&snapshot.read_context()?)?;
        image = apply_delta(&image, &delta)?;
    }
    if let Some(newest) = chain.last() {
        verify_manifest(newest, &image)?;
    }
    Ok(image)
}

/// Check `image` against the manifest recorded in `snapshot`'s metadata;
/// snapshots without one (incremental mode off) pass vacuously.
pub fn verify_manifest(snapshot: &LocalSnapshot, image: &ProcessImage) -> Result<(), CrError> {
    let Some(rendered) = snapshot.param(PARAM_MANIFEST) else {
        return Ok(());
    };
    let manifest = ChunkManifest::parse(rendered)?;
    if let Some(detail) = manifest.mismatch(image.iter()) {
        return Err(CrError::BadSnapshot {
            detail: format!(
                "rank {} interval {} failed manifest verification after chain \
                 replay: {detail}",
                snapshot.rank(),
                snapshot.interval()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::Rank;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "opal_incr_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn incr_params(chunk_kb: u64, full_every: u64) -> McaParams {
        let params = McaParams::new();
        params.set("crs_incr_enabled", "true");
        params.set("crs_incr_chunk_kb", &chunk_kb.to_string());
        params.set("crs_incr_full_every", &full_every.to_string());
        params
    }

    fn image_of(sections: &[(&str, Vec<u8>)]) -> ProcessImage {
        let mut img = ProcessImage::new();
        for (name, bytes) in sections {
            img.insert(*name, bytes.clone());
        }
        img
    }

    fn snap(dir: &std::path::Path, interval: u64) -> LocalSnapshot {
        LocalSnapshot::create(dir, Rank(0), "blcr_sim", interval, "node00").unwrap()
    }

    #[test]
    fn config_defaults_match_registry() {
        let cfg = IncrConfig::from_params(&McaParams::new());
        assert!(!cfg.enabled);
        assert_eq!(cfg.chunk_bytes, 4096);
        assert_eq!(cfg.full_every, 16);
    }

    #[test]
    fn first_interval_is_full_then_deltas_shrink() {
        let dir = tmpdir("shrink");
        let engine = IncrEngine::from_params(&incr_params(1, 16));
        let mut state = vec![0u8; 64 * 1024];
        let img = image_of(&[("app", state.clone())]);
        let mut s0 = snap(&dir.join("i0"), 0);
        assert_eq!(engine.write_image(&img, &mut s0).unwrap(), CkptKind::Full);
        assert_eq!(s0.param(PARAM_KIND), Some("full"));

        // Dirty one chunk: the delta must be tiny relative to the image.
        state[10_000] ^= 0xFF;
        let img = image_of(&[("app", state.clone())]);
        let mut s1 = snap(&dir.join("i1"), 1);
        assert_eq!(engine.write_image(&img, &mut s1).unwrap(), CkptKind::Delta);
        assert_eq!(s1.param(PARAM_KIND), Some("delta"));
        assert_eq!(s1.param(PARAM_BASE), Some("0"));
        assert_eq!(s1.param(PARAM_PREV), Some("0"));
        let delta: DeltaContext = codec::from_bytes(&s1.read_context().unwrap()).unwrap();
        assert_eq!(delta.dirty_bytes(), 1024);
        assert!(s1.size_bytes().unwrap() < s0.size_bytes().unwrap() / 4);

        // Replaying the chain reproduces the current image exactly.
        let rebuilt = reassemble(&[
            LocalSnapshot::open(s0.dir()).unwrap(),
            LocalSnapshot::open(s1.dir()).unwrap(),
        ])
        .unwrap();
        assert_eq!(rebuilt, img);
    }

    #[test]
    fn full_every_bounds_the_chain() {
        let dir = tmpdir("fullevery");
        let engine = IncrEngine::from_params(&incr_params(1, 3));
        let img = image_of(&[("app", vec![9u8; 4096])]);
        let mut kinds = Vec::new();
        for interval in 0..7 {
            let mut s = snap(&dir.join(format!("i{interval}")), interval);
            kinds.push(engine.write_image(&img, &mut s).unwrap());
        }
        // full, delta, delta, full, delta, delta, full
        assert_eq!(
            kinds,
            vec![
                CkptKind::Full,
                CkptKind::Delta,
                CkptKind::Delta,
                CkptKind::Full,
                CkptKind::Delta,
                CkptKind::Delta,
                CkptKind::Full,
            ]
        );
    }

    #[test]
    fn retried_interval_number_forces_full() {
        // If interval N failed at another rank and is retried as N again,
        // a delta against the aborted attempt would corrupt the chain.
        let dir = tmpdir("retry");
        let engine = IncrEngine::from_params(&incr_params(1, 16));
        let img = image_of(&[("app", vec![1u8; 2048])]);
        let mut s = snap(&dir.join("a"), 5);
        assert_eq!(engine.write_image(&img, &mut s).unwrap(), CkptKind::Full);
        let mut s = snap(&dir.join("b"), 5);
        assert_eq!(engine.write_image(&img, &mut s).unwrap(), CkptKind::Full);
        let mut s = snap(&dir.join("c"), 6);
        assert_eq!(engine.write_image(&img, &mut s).unwrap(), CkptKind::Delta);
    }

    #[test]
    fn disabled_engine_always_writes_plain_full_images() {
        let dir = tmpdir("disabled");
        let engine = IncrEngine::disabled();
        let img = image_of(&[("app", vec![3u8; 1024])]);
        for interval in 0..3 {
            let mut s = snap(&dir.join(format!("i{interval}")), interval);
            assert_eq!(engine.write_image(&img, &mut s).unwrap(), CkptKind::Full);
            assert!(s.param(PARAM_MANIFEST).is_none());
            // The context is a plain image, readable by the legacy path.
            assert_eq!(
                ProcessImage::from_bytes(&s.read_context().unwrap()).unwrap(),
                img
            );
        }
    }

    #[test]
    fn dedup_mode_writes_self_contained_manifested_images() {
        let dir = tmpdir("dedup");
        let params = incr_params(1, 16); // delta mode on — dedup must win
        params.set("filem_dedup_enabled", "true");
        let engine = IncrEngine::from_params(&params);
        let img = image_of(&[("app", vec![7u8; 4096])]);
        for interval in 0..3 {
            let mut s = snap(&dir.join(format!("i{interval}")), interval);
            assert_eq!(engine.write_image(&img, &mut s).unwrap(), CkptKind::Dedup);
            assert_eq!(s.param(PARAM_KIND), Some("dedup"));
            assert!(s.param(PARAM_MANIFEST).is_some(), "manifest always written");
            // Self-contained: the legacy full-image reader accepts it, so
            // restart never needs chain replay for a dedup interval.
            assert_eq!(read_full_image(&s).unwrap(), img);
        }
    }

    #[test]
    fn sections_can_appear_grow_shrink_and_vanish() {
        let dir = tmpdir("reshape");
        let engine = IncrEngine::from_params(&incr_params(1, 16));
        let mut s0 = snap(&dir.join("i0"), 0);
        engine
            .write_image(&image_of(&[("app", vec![1u8; 3000]), ("pml", vec![2u8; 500])]), &mut s0)
            .unwrap();
        // pml vanishes, app shrinks, coll appears.
        let img1 = image_of(&[("app", vec![1u8; 1200]), ("coll", vec![4u8; 64])]);
        let mut s1 = snap(&dir.join("i1"), 1);
        assert_eq!(engine.write_image(&img1, &mut s1).unwrap(), CkptKind::Delta);
        // app grows again.
        let img2 = image_of(&[("app", vec![5u8; 4096]), ("coll", vec![4u8; 64])]);
        let mut s2 = snap(&dir.join("i2"), 2);
        assert_eq!(engine.write_image(&img2, &mut s2).unwrap(), CkptKind::Delta);

        let chain: Vec<LocalSnapshot> = [&s0, &s1, &s2]
            .iter()
            .map(|s| LocalSnapshot::open(s.dir()).unwrap())
            .collect();
        assert_eq!(reassemble(&chain).unwrap(), img2);
        assert_eq!(reassemble(&chain[..2]).unwrap(), img1);
    }

    #[test]
    fn read_full_image_refuses_delta_contexts() {
        let dir = tmpdir("refuse");
        let engine = IncrEngine::from_params(&incr_params(1, 16));
        let img = image_of(&[("app", vec![1u8; 2048])]);
        let mut s0 = snap(&dir.join("i0"), 0);
        engine.write_image(&img, &mut s0).unwrap();
        let mut s1 = snap(&dir.join("i1"), 1);
        engine.write_image(&img, &mut s1).unwrap();
        let err = read_full_image(&s1).unwrap_err();
        assert!(err.to_string().contains("delta"), "got: {err}");
        assert!(read_full_image(&s0).is_ok());
    }

    #[test]
    fn truncated_delta_chunk_fails_reassembly_loudly() {
        let dir = tmpdir("truncate");
        let engine = IncrEngine::from_params(&incr_params(1, 16));
        let mut state = vec![0u8; 8192];
        let mut s0 = snap(&dir.join("i0"), 0);
        engine
            .write_image(&image_of(&[("app", state.clone())]), &mut s0)
            .unwrap();
        state[5000] = 7;
        let mut s1 = snap(&dir.join("i1"), 1);
        engine
            .write_image(&image_of(&[("app", state.clone())]), &mut s1)
            .unwrap();

        // Corrupt the delta: drop half of its dirty chunk's bytes and
        // rewrite the context (valid frame, wrong content).
        let mut delta: DeltaContext = codec::from_bytes(&s1.read_context().unwrap()).unwrap();
        let kept = delta.sections[0].chunks[0].1[..512].to_vec();
        delta.sections[0].chunks[0].1 = kept;
        s1.write_context(&codec::to_bytes(&delta).unwrap()).unwrap();

        let chain = vec![
            LocalSnapshot::open(s0.dir()).unwrap(),
            LocalSnapshot::open(s1.dir()).unwrap(),
        ];
        let err = reassemble(&chain).unwrap_err();
        assert!(
            err.to_string().contains("manifest verification"),
            "truncation must be caught by the digest check, got: {err}"
        );
    }

    #[test]
    fn mid_chain_full_snapshot_is_rejected() {
        let dir = tmpdir("midchain");
        let engine = IncrEngine::from_params(&incr_params(1, 16));
        let img = image_of(&[("app", vec![1u8; 512])]);
        let mut s0 = snap(&dir.join("i0"), 0);
        engine.write_image(&img, &mut s0).unwrap();
        let other = IncrEngine::from_params(&incr_params(1, 16));
        let mut s1 = snap(&dir.join("i1"), 1);
        other.write_image(&img, &mut s1).unwrap(); // fresh engine → full
        let err = reassemble(&[
            LocalSnapshot::open(s0.dir()).unwrap(),
            LocalSnapshot::open(s1.dir()).unwrap(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("not a delta"), "got: {err}");
    }
}
