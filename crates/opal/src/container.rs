//! Per-process control plane: checkpoint window, capture registry, INC
//! entry point, and the checkpoint notification thread.
//!
//! Every simulated application process owns one [`ProcessContainer`]. The
//! container reproduces the OPAL-side plumbing of paper §6.4–6.5:
//!
//! * the **checkpoint window**: requests are refused before `MPI_Init`
//!   completes and after `MPI_Finalize` begins;
//! * the **non-checkpointable declaration**: a process may opt out, which
//!   must fail whole-job requests without affecting any process;
//! * the **capture registry**: subsystems register named closures that
//!   serialize their state into [`ProcessImage`] sections at checkpoint
//!   time;
//! * the **notification thread**: waits for checkpoint requests from the
//!   local daemon, pauses the application thread at a safe point, drives
//!   the INC chain (whose bottom runs the CRS), and replies with the local
//!   snapshot reference.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use cr_core::inc::{IncCallback, IncRegistry, LayerInc};
use cr_core::request::CheckpointOptions;
use cr_core::snapshot::LocalSnapshot;
use cr_core::{CrError, FtEventState, ProcessName, Tracer};

use crate::crs::CrsComponent;
use crate::gate::SafePointGate;
use crate::image::ProcessImage;

/// Closure that serializes one subsystem's state for the process image.
pub type CaptureFn = Arc<dyn Fn() -> Result<Vec<u8>, CrError> + Send + Sync>;

/// Closure that renders one subsystem's live diagnostic value (a probe):
/// cheap, side-effect free, readable from outside the process thread.
pub type ProbeFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Control messages delivered to a process's notification thread.
pub enum OpalCtrl {
    /// Take a local checkpoint into `snapshot_parent` (the interval
    /// directory prepared by the local coordinator).
    Checkpoint {
        /// Directory the local snapshot directory will be created in.
        snapshot_parent: PathBuf,
        /// Checkpoint interval number.
        interval: u64,
        /// Request options (origin, terminate).
        options: CheckpointOptions,
        /// Where to deliver the result.
        reply: Sender<Result<CkptReply, CrError>>,
    },
    /// Stop the notification thread.
    Shutdown,
}

/// Successful local checkpoint description returned to the coordinator.
#[derive(Debug, Clone)]
pub struct CkptReply {
    /// The local snapshot reference that was produced.
    pub snapshot_dir: PathBuf,
    /// Bytes on disk.
    pub size_bytes: u64,
    /// Context kind the CRS emitted: `"full"` or `"delta"` (incremental).
    pub ckpt_kind: String,
    /// Interval holding the full image this context chains back to
    /// (equals the request interval for full checkpoints).
    pub base_interval: u64,
    /// Immediately preceding interval in the chain (equals the request
    /// interval for full checkpoints).
    pub prev_interval: u64,
}

#[derive(Debug, Clone)]
enum Window {
    Enabled,
    Disabled(String),
}

struct Pending {
    snapshot_parent: PathBuf,
    interval: u64,
    result: Option<LocalSnapshot>,
}

/// The per-process OPAL control plane.
pub struct ProcessContainer {
    name: ProcessName,
    hostname: String,
    gate: Arc<SafePointGate>,
    inc: IncRegistry,
    window: Mutex<Window>,
    checkpointable: AtomicBool,
    captures: Mutex<Vec<(String, CaptureFn)>>,
    probes: Mutex<Vec<(String, ProbeFn)>>,
    crs: Mutex<Option<Arc<dyn CrsComponent>>>,
    pending: Mutex<Option<Pending>>,
    park_timeout: Mutex<Duration>,
    tracer: Tracer,
}

impl ProcessContainer {
    /// New container for process `name` on `hostname`.
    pub fn new(name: ProcessName, hostname: impl Into<String>, tracer: Tracer) -> Arc<Self> {
        Arc::new(ProcessContainer {
            name,
            hostname: hostname.into(),
            gate: Arc::new(SafePointGate::new()),
            inc: IncRegistry::new(),
            window: Mutex::new(Window::Disabled("MPI not yet initialized".into())),
            checkpointable: AtomicBool::new(true),
            captures: Mutex::new(Vec::new()),
            probes: Mutex::new(Vec::new()),
            crs: Mutex::new(None),
            pending: Mutex::new(None),
            park_timeout: Mutex::new(Duration::from_secs(30)),
            tracer,
        })
    }

    /// Process name.
    pub fn name(&self) -> ProcessName {
        self.name
    }

    /// Hostname this process runs on.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// The safe-point gate shared with the application thread.
    pub fn gate(&self) -> &Arc<SafePointGate> {
        &self.gate
    }

    /// The INC registry for this process.
    pub fn inc(&self) -> &IncRegistry {
        &self.inc
    }

    /// The event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// How long the notification thread waits for the application to reach
    /// a safe point before failing the checkpoint.
    pub fn set_park_timeout(&self, timeout: Duration) {
        *self.park_timeout.lock() = timeout;
    }

    // -- configuration ----------------------------------------------------

    /// Install the selected CRS component.
    pub fn set_crs(&self, crs: Arc<dyn CrsComponent>) {
        *self.crs.lock() = Some(crs);
    }

    /// The installed CRS component.
    pub fn crs(&self) -> Option<Arc<dyn CrsComponent>> {
        self.crs.lock().clone()
    }

    /// Register a capture section. Sections are captured in registration
    /// order at checkpoint time, with the application thread parked.
    pub fn register_capture(&self, section: impl Into<String>, f: CaptureFn) {
        self.captures.lock().push((section.into(), f));
    }

    /// Register (or replace) a named diagnostic probe. Layers above OPAL
    /// expose live counters this way — e.g. the PML's sender-side
    /// message-log size — without the coordinator having to know their
    /// types: it reads the rendered string through [`Self::probe`].
    pub fn set_probe(&self, key: impl Into<String>, f: ProbeFn) {
        let key = key.into();
        let mut probes = self.probes.lock();
        if let Some(slot) = probes.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = f;
        } else {
            probes.push((key, f));
        }
    }

    /// Read a named diagnostic probe, if registered.
    pub fn probe(&self, key: &str) -> Option<String> {
        let f = self
            .probes
            .lock()
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, f)| Arc::clone(f))?;
        Some(f())
    }

    /// Interval of the in-flight checkpoint request, if one is being
    /// handled. INC subsystems that tag per-interval state (the CRCP's
    /// message-log quiesce marks) read SNAPC's numbering through this
    /// mid-chain.
    pub fn pending_interval(&self) -> Option<u64> {
        self.pending.lock().as_ref().map(|p| p.interval)
    }

    /// Declare whether this process can be checkpointed at all
    /// (paper §5.1: processes may opt out, e.g. when using unsupported
    /// operations).
    pub fn set_checkpointable(&self, value: bool) {
        self.checkpointable.store(value, Ordering::SeqCst);
    }

    /// Whether this process accepts checkpoints.
    pub fn is_checkpointable(&self) -> bool {
        self.checkpointable.load(Ordering::SeqCst)
            && self.crs().map(|c| c.can_checkpoint()).unwrap_or(false)
    }

    // -- checkpoint window --------------------------------------------------

    /// Open the checkpoint window (end of `MPI_Init`).
    pub fn enable_checkpointing(&self) {
        *self.window.lock() = Window::Enabled;
    }

    /// Close the checkpoint window (entry of `MPI_Finalize`, or around a
    /// critical section).
    pub fn disable_checkpointing(&self, reason: impl Into<String>) {
        *self.window.lock() = Window::Disabled(reason.into());
    }

    /// True while checkpoint requests are accepted.
    pub fn checkpointing_enabled(&self) -> bool {
        matches!(*self.window.lock(), Window::Enabled)
    }

    // -- INC installation --------------------------------------------------

    /// Install the OPAL layer INC as the bottom of the stack. Its bottom
    /// action runs the CRS against the pending request. Must be called
    /// before any higher layer registers.
    pub fn install_opal_inc(self: &Arc<Self>, layer: LayerInc) {
        let weak = Arc::downgrade(self);
        let bottom: IncCallback = Arc::new(move |state| {
            let this = weak.upgrade().ok_or_else(|| {
                CrError::protocol("process container dropped during checkpoint")
            })?;
            match state {
                FtEventState::Checkpoint => this.run_local_checkpoint(),
                other => Ok(other),
            }
        });
        self.inc.register(move |prev| {
            assert!(prev.is_none(), "OPAL INC must be the bottom of the stack");
            layer.build(None, Some(bottom))
        });
    }

    /// Capture all registered sections into a fresh image (public for
    /// tests and for the restart path's symmetry checks).
    pub fn capture_image(&self) -> Result<ProcessImage, CrError> {
        let mut image = ProcessImage::new();
        let captures = self.captures.lock();
        for (section, f) in captures.iter() {
            image.insert(section.clone(), f()?);
        }
        Ok(image)
    }

    /// The INC bottom action: capture sections and run the CRS.
    fn run_local_checkpoint(&self) -> Result<FtEventState, CrError> {
        let (snapshot_parent, interval) = {
            let pending = self.pending.lock();
            let p = pending
                .as_ref()
                .ok_or_else(|| CrError::protocol("CRS reached with no pending request"))?;
            (p.snapshot_parent.clone(), p.interval)
        };
        let crs = self
            .crs()
            .ok_or_else(|| CrError::protocol("no CRS component installed"))?;
        self.tracer
            .record("opal.crs.checkpoint", &format!("{}", self.name));
        let image = self.capture_image()?;
        let mut snapshot = LocalSnapshot::create(
            &snapshot_parent,
            self.name.rank,
            crs.name(),
            interval,
            &self.hostname,
        )?;
        crs.checkpoint(&image, &mut snapshot)?;
        // The capture is durable on node-local disk from here on: this is
        // the local-commit point SNAPC's early release pivots on.
        self.tracer.record(
            "opal.crs.local_commit",
            &format!("{} ({} bytes)", self.name, snapshot.size_bytes().unwrap_or(0)),
        );
        self.pending
            .lock()
            .as_mut()
            .expect("pending still present")
            .result = Some(snapshot);
        Ok(FtEventState::Continue)
    }

    // -- request handling -----------------------------------------------------

    /// Handle one checkpoint request end to end: pause, INC chain, CRS,
    /// resume. Runs on the notification thread (or directly in tests).
    pub fn handle_checkpoint_request(
        &self,
        snapshot_parent: PathBuf,
        interval: u64,
        _options: &CheckpointOptions,
    ) -> Result<CkptReply, CrError> {
        if !self.is_checkpointable() {
            return Err(CrError::NotCheckpointable {
                ranks: vec![self.name.rank],
            });
        }
        if let Window::Disabled(reason) = &*self.window.lock() {
            return Err(CrError::CheckpointDisabled {
                reason: reason.clone(),
            });
        }

        self.tracer
            .record("opal.notify.request", &format!("{}", self.name));
        self.gate.request_pause()?;
        let timeout = *self.park_timeout.lock();
        self.gate.wait_until_parked(timeout)?;
        self.tracer
            .record("opal.notify.parked", &format!("{}", self.name));

        *self.pending.lock() = Some(Pending {
            snapshot_parent,
            interval,
            result: None,
        });

        let delivered = self.inc.deliver(FtEventState::Checkpoint);

        // Post-event (SELF callbacks) fires before the app resumes so the
        // callbacks observe the quiesced state.
        if let Some(crs) = self.crs() {
            let post_state = match &delivered {
                Ok(s) => *s,
                Err(_) => FtEventState::Error,
            };
            if let Err(e) = crs.post_event(post_state) {
                self.tracer.record("opal.crs.post_event_error", &e.to_string());
            }
        }

        let pending = self.pending.lock().take();
        self.gate.resume();

        let state = delivered?;
        if state != FtEventState::Continue {
            return Err(CrError::protocol(format!(
                "checkpoint chain resolved to unexpected state {state}"
            )));
        }
        let snapshot = pending
            .and_then(|p| p.result)
            .ok_or_else(|| CrError::protocol("checkpoint chain completed without a snapshot"))?;
        let size_bytes = snapshot.size_bytes()?;
        let ckpt_kind = snapshot
            .param(crate::incr::PARAM_KIND)
            .unwrap_or("full")
            .to_string();
        let base_interval = snapshot
            .param(crate::incr::PARAM_BASE)
            .and_then(|v| v.parse().ok())
            .unwrap_or(interval);
        let prev_interval = snapshot
            .param(crate::incr::PARAM_PREV)
            .and_then(|v| v.parse().ok())
            .unwrap_or(interval);
        self.tracer
            .record("opal.notify.complete", &format!("{}", self.name));
        Ok(CkptReply {
            snapshot_dir: snapshot.dir().to_path_buf(),
            size_bytes,
            ckpt_kind,
            base_interval,
            prev_interval,
        })
    }

    /// Spawn the checkpoint notification thread (paper §6.5: "each process
    /// in the parallel job has a thread running in it waiting for the
    /// checkpoint request").
    pub fn spawn_notification_thread(
        self: &Arc<Self>,
        rx: Receiver<OpalCtrl>,
    ) -> JoinHandle<()> {
        let this = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("cr-notify-{}", this.name))
            .spawn(move || loop {
                match rx.recv() {
                    Ok(OpalCtrl::Checkpoint {
                        snapshot_parent,
                        interval,
                        options,
                        reply,
                    }) => {
                        let result =
                            this.handle_checkpoint_request(snapshot_parent, interval, &options);
                        let _ = reply.send(result);
                    }
                    Ok(OpalCtrl::Shutdown) | Err(_) => return,
                }
            })
            .expect("spawn notification thread")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crs::{crs_framework, SelfCallbacks};
    use cr_core::{JobId, Rank};
    use mca::McaParams;
    use serde::{Deserialize, Serialize};
    use std::sync::atomic::AtomicU64;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct FakeAppState {
        iteration: u64,
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "opal_container_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Container wired with blcr_sim, an app capture section, and a bare
    /// OPAL INC; plus a fake app thread that parks at safe points.
    fn ready_container(tag: &str) -> (Arc<ProcessContainer>, Arc<Mutex<FakeAppState>>, PathBuf) {
        let tracer = Tracer::new();
        let container = ProcessContainer::new(
            ProcessName::new(JobId(1), Rank(0)),
            "node00",
            tracer.clone(),
        );
        let fw = crs_framework(SelfCallbacks::new());
        let crs: Arc<dyn CrsComponent> = Arc::from(fw.select(&McaParams::new()).unwrap());
        container.set_crs(crs);

        let state = Arc::new(Mutex::new(FakeAppState { iteration: 0 }));
        let cap_state = Arc::clone(&state);
        container.register_capture(
            "app",
            Arc::new(move || Ok(codec::to_bytes(&*cap_state.lock())?)),
        );
        container.install_opal_inc(LayerInc::new("opal", tracer));
        container.enable_checkpointing();
        (container, state, tmpdir(tag))
    }

    fn run_fake_app(
        container: &Arc<ProcessContainer>,
        state: &Arc<Mutex<FakeAppState>>,
        iterations: u64,
    ) -> JoinHandle<()> {
        let gate = Arc::clone(container.gate());
        let state = Arc::clone(state);
        std::thread::spawn(move || {
            for _ in 0..iterations {
                state.lock().iteration += 1;
                gate.checkpoint_point();
                std::thread::yield_now();
            }
            gate.retire();
        })
    }

    #[test]
    fn end_to_end_local_checkpoint() {
        let (container, state, dir) = ready_container("e2e");
        let app = run_fake_app(&container, &state, 2_000_000);

        let reply = container
            .handle_checkpoint_request(dir.clone(), 0, &CheckpointOptions::tool())
            .unwrap();
        assert!(reply.snapshot_dir.exists());
        assert!(reply.size_bytes > 0);

        // Restore the image and check the captured state is coherent.
        let snap = LocalSnapshot::open(&reply.snapshot_dir).unwrap();
        assert_eq!(snap.crs_component(), "blcr_sim");
        let crs = container.crs().unwrap();
        let image = crs.restart(&snap).unwrap();
        let captured: FakeAppState = image.decode_section("app").unwrap();
        assert!(captured.iteration > 0);

        // The app keeps running afterwards.
        app.join().unwrap();
        assert_eq!(state.lock().iteration, 2_000_000);
    }

    #[test]
    fn probes_register_replace_and_read() {
        let (container, _state, _dir) = ready_container("probes");
        assert_eq!(container.probe("crcp.msglog"), None);
        let n = Arc::new(AtomicU64::new(7));
        let n2 = Arc::clone(&n);
        container.set_probe("crcp.msglog", Arc::new(move || n2.load(Ordering::SeqCst).to_string()));
        assert_eq!(container.probe("crcp.msglog").as_deref(), Some("7"));
        n.store(9, Ordering::SeqCst);
        assert_eq!(container.probe("crcp.msglog").as_deref(), Some("9"));
        container.set_probe("crcp.msglog", Arc::new(|| "0".to_string()));
        assert_eq!(container.probe("crcp.msglog").as_deref(), Some("0"));
    }

    #[test]
    fn window_closed_refuses() {
        let (container, _state, dir) = ready_container("window");
        container.disable_checkpointing("inside finalize");
        let err = container
            .handle_checkpoint_request(dir, 0, &CheckpointOptions::tool())
            .unwrap_err();
        assert!(matches!(err, CrError::CheckpointDisabled { .. }));
        assert!(err.to_string().contains("finalize"));
    }

    #[test]
    fn non_checkpointable_process_refuses_without_side_effects() {
        let (container, state, dir) = ready_container("optout");
        container.set_checkpointable(false);
        let app = run_fake_app(&container, &state, 1000);
        let err = container
            .handle_checkpoint_request(dir.clone(), 0, &CheckpointOptions::tool())
            .unwrap_err();
        assert!(matches!(err, CrError::NotCheckpointable { .. }));
        // No snapshot directory was created.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        app.join().unwrap();
    }

    #[test]
    fn none_crs_makes_process_non_checkpointable() {
        let (container, _state, _dir) = ready_container("nonecrs");
        let fw = crs_framework(SelfCallbacks::new());
        let params = McaParams::new();
        params.set("crs", "none");
        container.set_crs(Arc::from(fw.select(&params).unwrap()));
        assert!(!container.is_checkpointable());
    }

    #[test]
    fn notification_thread_serves_requests() {
        let (container, state, dir) = ready_container("notif");
        let app = run_fake_app(&container, &state, 5_000_000);
        let (tx, rx) = crossbeam::channel::unbounded();
        let notify = container.spawn_notification_thread(rx);

        for interval in 0..3u64 {
            let idir = dir.join(interval.to_string());
            std::fs::create_dir_all(&idir).unwrap();
            let (rtx, rrx) = crossbeam::channel::bounded(1);
            tx.send(OpalCtrl::Checkpoint {
                snapshot_parent: idir,
                interval,
                options: CheckpointOptions::tool(),
                reply: rtx,
            })
            .unwrap();
            let reply = rrx.recv().unwrap().unwrap();
            assert!(reply.snapshot_dir.exists());
        }
        tx.send(OpalCtrl::Shutdown).unwrap();
        notify.join().unwrap();
        assert_eq!(container.gate().generations(), 3);
        app.join().unwrap();
    }

    #[test]
    fn capture_failure_fails_checkpoint_and_resumes_app() {
        let (container, state, dir) = ready_container("capfail");
        container.register_capture(
            "bad",
            Arc::new(|| {
                Err(CrError::Unsupported {
                    detail: "cannot serialize".into(),
                })
            }),
        );
        let app = run_fake_app(&container, &state, 100_000);
        let err = container
            .handle_checkpoint_request(dir, 0, &CheckpointOptions::tool())
            .unwrap_err();
        assert!(err.to_string().contains("cannot serialize"));
        // App resumed and finishes.
        app.join().unwrap();
        assert_eq!(state.lock().iteration, 100_000);
    }

    #[test]
    fn crs_failure_resumes_app() {
        let (container, state, dir) = ready_container("crsfail");
        let params = McaParams::new();
        params.set("crs_blcr_sim_fail_every", "1");
        let fw = crs_framework(SelfCallbacks::new());
        container.set_crs(Arc::from(fw.select(&params).unwrap()));
        let app = run_fake_app(&container, &state, 100_000);
        let err = container
            .handle_checkpoint_request(dir, 0, &CheckpointOptions::tool())
            .unwrap_err();
        assert!(err.to_string().contains("injected failure"));
        app.join().unwrap();
    }

    #[test]
    fn finalized_app_fails_pending_checkpoint() {
        let (container, state, dir) = ready_container("finalized");
        container.set_park_timeout(Duration::from_secs(5));
        // App retires immediately.
        let app = run_fake_app(&container, &state, 0);
        app.join().unwrap();
        let err = container
            .handle_checkpoint_request(dir, 0, &CheckpointOptions::tool())
            .unwrap_err();
        assert!(matches!(
            err,
            CrError::CheckpointDisabled { .. } | CrError::Protocol { .. }
        ));
    }

    #[test]
    fn self_crs_callbacks_fire_during_container_checkpoint() {
        let tracer = Tracer::new();
        let container = ProcessContainer::new(
            ProcessName::new(JobId(1), Rank(0)),
            "node00",
            tracer.clone(),
        );
        let callbacks = SelfCallbacks::new();
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        *callbacks.on_checkpoint.lock() = Some(Box::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }));
        let f = Arc::clone(&fired);
        *callbacks.on_continue.lock() = Some(Box::new(move || {
            f.fetch_add(100, Ordering::SeqCst);
            Ok(())
        }));
        let fw = crs_framework(Arc::clone(&callbacks));
        let params = McaParams::new();
        params.set("crs", "self");
        container.set_crs(Arc::from(fw.select(&params).unwrap()));
        container.register_capture("app", Arc::new(|| Ok(vec![1, 2, 3])));
        container.install_opal_inc(LayerInc::new("opal", tracer));
        container.enable_checkpointing();

        let state = Arc::new(Mutex::new(FakeAppState { iteration: 0 }));
        let app = run_fake_app(&container, &state, 1_000_000);
        container
            .handle_checkpoint_request(tmpdir("selfcb"), 0, &CheckpointOptions::tool())
            .unwrap();
        app.join().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 101, "checkpoint + continue");
    }
}
