//! Content-addressed chunk store: digest-keyed blobs with refcount GC.
//!
//! The incremental engine ([`crate::incr`]) already digests every chunk of
//! every capture section; this module promotes that digest to the *storage
//! key*.  A [`ChunkId`] names a chunk by `(digest, len)`; a [`ChunkStore`]
//! holds one frame-wrapped blob per distinct id plus a persisted refcount
//! table.  Identical chunks — across ranks of an SPMD job, or across
//! checkpoint intervals — are stored once and shared by every manifest that
//! references them.
//!
//! # Refcount lifecycle
//!
//! * **Commit:** blobs are [`insert`](ChunkStore::insert)ed and
//!   [`incref`](ChunkStore::incref_all)ed *before* the interval's manifest
//!   is recorded in the global snapshot metadata, so a manifest never
//!   references a chunk the store could sweep.
//! * **Retire:** the snapshot authority first drops the interval's manifest
//!   record, then [`decref`](ChunkStore::decref_all)s its chunks, then
//!   [`sweep`](ChunkStore::sweep)s count-zero blobs.  A crash between any
//!   two steps leaks at worst (a later sweep reclaims); it never dangles.
//!
//! That ordering is model-checked by the `gc` model in `cr-model`
//! (invariant: no chunk referenced by a live manifest is ever missing from
//! the store) and exercised randomly by the dedup proptests.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use cr_core::CrError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// File holding the persisted refcount table inside a store directory.
const REFCOUNT_FILE: &str = "refcounts.meta";
/// Metadata section name inside [`REFCOUNT_FILE`].
const REFCOUNT_SECTION: &str = "refcounts";
/// Extension of blob files (one per distinct chunk id).
const BLOB_EXT: &str = "blob";

/// Content address of one chunk: its 64-bit digest plus its length.
///
/// The digest is [`codec::chunk_digest`] — the same fast change-detector the
/// incremental manifests use — with the length as a collision backstop and
/// so callers can size fetches without reading blobs.  Rendered as
/// `{digest:016x}-{len}`, which is also the blob file stem.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ChunkId {
    /// Content digest of the chunk bytes ([`codec::chunk_digest`]).
    pub digest: u64,
    /// Chunk length in bytes.
    pub len: u32,
}

impl ChunkId {
    /// The content address of `bytes`.
    pub fn of(bytes: &[u8]) -> ChunkId {
        ChunkId {
            digest: codec::chunk_digest(bytes),
            len: bytes.len() as u32,
        }
    }

    /// Canonical text form: `{digest:016x}-{len}` (also the blob file stem).
    pub fn render(&self) -> String {
        format!("{:016x}-{}", self.digest, self.len)
    }

    /// Parse the [`render`](ChunkId::render) form back.
    pub fn parse(text: &str) -> Option<ChunkId> {
        let (digest, len) = text.split_once('-')?;
        Some(ChunkId {
            digest: u64::from_str_radix(digest, 16).ok()?,
            len: len.parse().ok()?,
        })
    }
}

impl std::fmt::Display for ChunkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// A directory of content-addressed, frame-wrapped chunk blobs with a
/// persisted refcount table.  This is the *stable* tier; the replica
/// (peer-memory) tier lives in `orte::replica::ReplicaStore`.
pub struct ChunkStore {
    dir: PathBuf,
    refs: Mutex<BTreeMap<ChunkId, u64>>,
}

impl ChunkStore {
    /// Open (creating if needed) the store rooted at `dir` and load its
    /// refcount table.
    pub fn open(dir: &Path) -> Result<ChunkStore, CrError> {
        std::fs::create_dir_all(dir).map_err(|e| CrError::io(dir.display().to_string(), &e))?;
        let mut refs = BTreeMap::new();
        let ref_path = dir.join(REFCOUNT_FILE);
        if ref_path.exists() {
            let text = std::fs::read_to_string(&ref_path)
                .map_err(|e| CrError::io(ref_path.display().to_string(), &e))?;
            let doc = codec::MetaDoc::parse(&text).map_err(CrError::Codec)?;
            for (key, value) in doc.section_map(REFCOUNT_SECTION) {
                let id = ChunkId::parse(&key).ok_or_else(|| CrError::BadSnapshot {
                    detail: format!("chunk store: bad refcount key {key:?}"),
                })?;
                let count: u64 = value.parse().map_err(|_| CrError::BadSnapshot {
                    detail: format!("chunk store: bad refcount value {value:?} for {key}"),
                })?;
                refs.insert(id, count);
            }
        }
        Ok(ChunkStore {
            dir: dir.to_path_buf(),
            refs: Mutex::new(refs),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn blob_path(&self, id: &ChunkId) -> PathBuf {
        self.dir.join(format!("{}.{BLOB_EXT}", id.render()))
    }

    fn save_refs(&self, refs: &BTreeMap<ChunkId, u64>) -> Result<(), CrError> {
        let mut doc = codec::MetaDoc::new();
        for (id, count) in refs {
            doc.set(REFCOUNT_SECTION, &id.render(), &count.to_string());
        }
        let path = self.dir.join(REFCOUNT_FILE);
        std::fs::write(&path, doc.render())
            .map_err(|e| CrError::io(path.display().to_string(), &e))
    }

    /// Store `bytes` under their content address.  Returns the id and
    /// whether a new blob was written (`false` = dedup hit, the blob was
    /// already present).  Does **not** take a reference — pair with
    /// [`incref_all`](ChunkStore::incref_all) before recording a manifest.
    pub fn insert(&self, bytes: &[u8]) -> Result<(ChunkId, bool), CrError> {
        let id = ChunkId::of(bytes);
        let mut scratch = Vec::new();
        let fresh = self.insert_precomputed(&id, bytes, &mut scratch)?;
        Ok((id, fresh))
    }

    /// Store `bytes` under the *caller-computed* address `id`, framing
    /// through `scratch` so hot paths reuse one buffer across inserts
    /// (see [`crate::pool::BufferPool`]). Returns whether a new blob was
    /// written. The caller vouches that `id == ChunkId::of(bytes)` — the
    /// dedup commit path verifies digests over the parallel hash pool
    /// before fanning inserts out, so re-digesting here would double the
    /// hash cost of every fresh chunk.
    pub fn insert_precomputed(
        &self,
        id: &ChunkId,
        bytes: &[u8],
        scratch: &mut Vec<u8>,
    ) -> Result<bool, CrError> {
        let path = self.blob_path(id);
        if path.exists() {
            return Ok(false);
        }
        codec::write_frame_into(scratch, bytes);
        std::fs::write(&path, &scratch)
            .map_err(|e| CrError::io(path.display().to_string(), &e))?;
        Ok(true)
    }

    /// True when a blob for `id` is present.
    pub fn contains(&self, id: &ChunkId) -> bool {
        self.blob_path(id).exists()
    }

    /// The subset of `ids` that have no blob in this store yet.
    pub fn missing(&self, ids: &[ChunkId]) -> Vec<ChunkId> {
        ids.iter().filter(|id| !self.contains(id)).copied().collect()
    }

    /// Read and digest-verify the blob for `id`.
    pub fn get(&self, id: &ChunkId) -> Result<Vec<u8>, CrError> {
        let path = self.blob_path(id);
        let framed = std::fs::read(&path)
            .map_err(|e| CrError::io(path.display().to_string(), &e))?;
        let bytes = codec::read_frame(&framed).map_err(CrError::Codec)?.to_vec();
        let actual = ChunkId::of(&bytes);
        if actual != *id {
            return Err(CrError::BadSnapshot {
                detail: format!(
                    "chunk {} failed digest verification (stored bytes hash to {})",
                    id, actual
                ),
            });
        }
        Ok(bytes)
    }

    /// Take one reference on each of `ids` and persist the table.  Ids may
    /// repeat (one reference per occurrence, so a manifest using the same
    /// chunk twice holds it twice).
    pub fn incref_all(&self, ids: &[ChunkId]) -> Result<(), CrError> {
        let mut refs = self.refs.lock();
        for id in ids {
            *refs.entry(*id).or_insert(0) += 1;
        }
        self.save_refs(&refs)
    }

    /// Drop one reference on each of `ids` (saturating at zero) and persist
    /// the table.  Blobs are not deleted here — that is
    /// [`sweep`](ChunkStore::sweep)'s job, so a crash between decrement and
    /// sweep leaks at worst.
    pub fn decref_all(&self, ids: &[ChunkId]) -> Result<(), CrError> {
        let mut refs = self.refs.lock();
        for id in ids {
            if let Some(count) = refs.get_mut(id) {
                *count = count.saturating_sub(1);
            }
        }
        self.save_refs(&refs)
    }

    /// Current reference count of `id` (zero when unknown).
    pub fn refcount(&self, id: &ChunkId) -> u64 {
        self.refs.lock().get(id).copied().unwrap_or(0)
    }

    /// Delete up to `batch` count-zero blobs and drop their table entries.
    /// Returns the ids removed.  Blobs on disk with no table entry count as
    /// zero (a crash between insert and incref leaves exactly that state).
    pub fn sweep(&self, batch: usize) -> Result<Vec<ChunkId>, CrError> {
        let mut refs = self.refs.lock();
        let mut removed = Vec::new();
        for id in self.disk_ids()? {
            if removed.len() >= batch {
                break;
            }
            if refs.get(&id).copied().unwrap_or(0) == 0 {
                let path = self.blob_path(&id);
                std::fs::remove_file(&path)
                    .map_err(|e| CrError::io(path.display().to_string(), &e))?;
                refs.remove(&id);
                removed.push(id);
            }
        }
        if !removed.is_empty() {
            self.save_refs(&refs)?;
        }
        Ok(removed)
    }

    /// Ids of every blob currently on disk, in id order.
    pub fn disk_ids(&self) -> Result<Vec<ChunkId>, CrError> {
        let mut ids = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| CrError::io(self.dir.display().to_string(), &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| CrError::io(self.dir.display().to_string(), &e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(&format!(".{BLOB_EXT}")) {
                if let Some(id) = ChunkId::parse(stem) {
                    ids.push(id);
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Number of distinct blobs on disk.
    pub fn chunk_count(&self) -> Result<usize, CrError> {
        Ok(self.disk_ids()?.len())
    }

    /// Total payload bytes of all blobs on disk (sum of chunk lengths, not
    /// file sizes, so frame overhead is excluded).
    pub fn total_bytes(&self) -> Result<u64, CrError> {
        Ok(self.disk_ids()?.iter().map(|id| u64::from(id.len)).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("opal_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn chunk_id_render_parse_roundtrip() {
        let id = ChunkId::of(b"hello world");
        let back = ChunkId::parse(&id.render()).unwrap();
        assert_eq!(back, id);
        assert_eq!(id.len, 11);
        assert!(ChunkId::parse("nope").is_none());
        assert!(ChunkId::parse("zz-4").is_none());
        assert!(ChunkId::parse("00ff-x").is_none());
    }

    #[test]
    fn insert_dedups_identical_bytes() {
        let store = ChunkStore::open(&tmp("dedup")).unwrap();
        let (a, fresh_a) = store.insert(b"same bytes").unwrap();
        let (b, fresh_b) = store.insert(b"same bytes").unwrap();
        assert_eq!(a, b);
        assert!(fresh_a);
        assert!(!fresh_b, "second insert of identical bytes must be a hit");
        assert_eq!(store.chunk_count().unwrap(), 1);
        assert_eq!(store.get(&a).unwrap(), b"same bytes");
    }

    #[test]
    fn get_detects_corruption() {
        let store = ChunkStore::open(&tmp("corrupt")).unwrap();
        let (id, _) = store.insert(b"precious").unwrap();
        // Re-frame different bytes under the same file name: the frame CRC
        // passes but the content digest no longer matches the id.
        std::fs::write(store.blob_path(&id), codec::write_frame(b"impostor")).unwrap();
        let err = store.get(&id).unwrap_err();
        assert!(err.to_string().contains("digest"), "{err}");
    }

    #[test]
    fn refcounts_persist_across_reopen() {
        let dir = tmp("persist");
        let id;
        {
            let store = ChunkStore::open(&dir).unwrap();
            let (i, _) = store.insert(b"counted").unwrap();
            id = i;
            store.incref_all(&[id, id]).unwrap();
        }
        let store = ChunkStore::open(&dir).unwrap();
        assert_eq!(store.refcount(&id), 2);
        store.decref_all(&[id]).unwrap();
        assert_eq!(store.refcount(&id), 1);
    }

    #[test]
    fn sweep_removes_only_count_zero_blobs() {
        let store = ChunkStore::open(&tmp("sweep")).unwrap();
        let (live, _) = store.insert(b"live chunk").unwrap();
        let (dead, _) = store.insert(b"dead chunk").unwrap();
        store.incref_all(&[live, dead]).unwrap();
        store.decref_all(&[dead]).unwrap();
        let removed = store.sweep(64).unwrap();
        assert_eq!(removed, vec![dead]);
        assert!(store.contains(&live));
        assert!(!store.contains(&dead));
        assert_eq!(store.refcount(&live), 1);
        // A second sweep finds nothing.
        assert!(store.sweep(64).unwrap().is_empty());
    }

    #[test]
    fn sweep_respects_batch_and_reclaims_orphans() {
        let store = ChunkStore::open(&tmp("batch")).unwrap();
        // Orphans: inserted, never incref'd (crash between insert and
        // incref leaves exactly this state).
        for i in 0..5u8 {
            store.insert(&[i; 32]).unwrap();
        }
        assert_eq!(store.sweep(2).unwrap().len(), 2);
        assert_eq!(store.sweep(64).unwrap().len(), 3);
        assert_eq!(store.chunk_count().unwrap(), 0);
    }

    #[test]
    fn missing_and_totals() {
        let store = ChunkStore::open(&tmp("missing")).unwrap();
        let (have, _) = store.insert(&[1u8; 100]).unwrap();
        let want = ChunkId::of(&[2u8; 200]);
        assert_eq!(store.missing(&[have, want]), vec![want]);
        assert_eq!(store.total_bytes().unwrap(), 100);
    }
}
