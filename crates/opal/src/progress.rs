//! The OPAL progress engine: a real subsystem that must pause around
//! checkpoints.
//!
//! Open MPI's OPAL layer runs a libevent-based event loop that drives
//! asynchronous progress (timers, socket readiness). An event loop captured
//! mid-dispatch cannot be restored, so OPAL's INC quiesces it before the
//! CRS runs and resumes it afterwards. This module provides the simulated
//! equivalent: a ticker thread dispatching registered periodic callbacks,
//! with `ft_event` pausing and resuming dispatch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use cr_core::{CrError, FtEvent, FtEventState};

type TickCallback = Box<dyn FnMut() + Send>;

struct Shared {
    paused: AtomicBool,
    shutdown: AtomicBool,
    ticks: AtomicU64,
    callbacks: Mutex<Vec<TickCallback>>,
}

/// A ticker thread dispatching registered callbacks every `period`, unless
/// paused by a checkpoint.
pub struct ProgressEngine {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl ProgressEngine {
    /// Start the engine with the given tick period.
    pub fn start(period: Duration) -> Self {
        let shared = Arc::new(Shared {
            paused: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
            callbacks: Mutex::new(Vec::new()),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("opal-progress".into())
            .spawn(move || loop {
                if thread_shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if !thread_shared.paused.load(Ordering::Acquire) {
                    thread_shared.ticks.fetch_add(1, Ordering::Relaxed);
                    let mut cbs = thread_shared.callbacks.lock();
                    for cb in cbs.iter_mut() {
                        cb();
                    }
                }
                std::thread::sleep(period);
            })
            .expect("spawn progress engine");
        ProgressEngine {
            shared,
            handle: Some(handle),
        }
    }

    /// Register a callback dispatched on every tick.
    pub fn register(&self, cb: impl FnMut() + Send + 'static) {
        self.shared.callbacks.lock().push(Box::new(cb));
    }

    /// Ticks dispatched so far.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// True while dispatch is paused (quiesced for a checkpoint).
    pub fn is_paused(&self) -> bool {
        self.shared.paused.load(Ordering::Acquire)
    }

    /// Stop the ticker thread and wait for it.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl FtEvent for ProgressEngine {
    fn ft_event(&mut self, state: FtEventState) -> Result<(), CrError> {
        match state {
            FtEventState::Checkpoint => {
                self.shared.paused.store(true, Ordering::Release);
            }
            FtEventState::Continue | FtEventState::Restart | FtEventState::Error => {
                self.shared.paused.store(false, Ordering::Release);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn ticks_advance_and_callbacks_fire() {
        let engine = ProgressEngine::start(Duration::from_millis(1));
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        engine.register(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        wait_for(|| count.load(Ordering::Relaxed) >= 3, "callbacks");
        assert!(engine.ticks() >= 3);
    }

    #[test]
    fn checkpoint_pauses_continue_resumes() {
        let mut engine = ProgressEngine::start(Duration::from_millis(1));
        wait_for(|| engine.ticks() > 0, "first tick");
        engine.ft_event(FtEventState::Checkpoint).unwrap();
        assert!(engine.is_paused());
        // Allow the tick thread to observe the pause, then assert quiet.
        std::thread::sleep(Duration::from_millis(10));
        let frozen = engine.ticks();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(engine.ticks(), frozen, "no ticks while paused");
        engine.ft_event(FtEventState::Continue).unwrap();
        wait_for(|| engine.ticks() > frozen, "resume");
    }

    #[test]
    fn restart_and_error_also_resume() {
        let mut engine = ProgressEngine::start(Duration::from_millis(1));
        engine.ft_event(FtEventState::Checkpoint).unwrap();
        engine.ft_event(FtEventState::Restart).unwrap();
        assert!(!engine.is_paused());
        engine.ft_event(FtEventState::Checkpoint).unwrap();
        engine.ft_event(FtEventState::Error).unwrap();
        assert!(!engine.is_paused());
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut engine = ProgressEngine::start(Duration::from_millis(1));
        engine.shutdown();
        engine.shutdown();
    }
}
