//! The shared parallel hash/copy pool of the checkpoint data path.
//!
//! Every byte a checkpoint moves is digested at least once — chunk
//! manifests at capture ([`crate::incr`]), digest verification at dedup
//! commit, and blob framing in the chunk store ([`crate::store`]). This
//! module makes that work scale with cores instead of running on one
//! thread, and bounds its allocations:
//!
//! * [`manifest_parallel`] / [`digest_all_parallel`] — bounded worker
//!   pools (`opal_hash_workers`, `thread::scope` + atomic work-claiming,
//!   the same lane discipline as `orte::filem::copy_all_parallel`) that
//!   chunk and digest a rank's sections concurrently. Output is
//!   byte-identical to the sequential path — asserted by tests here and
//!   ratcheted by the `ckpt_datapath` bench.
//! * [`BufferPool`] — a bounded free list of reusable byte buffers
//!   replacing the per-chunk `Vec` allocations of the delta builder and
//!   the per-insert frame buffers of the chunk store, so steady-state
//!   checkpointing allocates O(workers + pool cap) buffers, not
//!   O(chunks). [`PoolStats`] exposes the hit/miss counters the bench's
//!   allocation-flat gate reads.
//! * [`insert_all_parallel`] — fan a batch of content-addressed chunks
//!   into a [`crate::store::ChunkStore`] over the worker pool, each lane
//!   framing through a pooled scratch buffer.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use codec::chunk::{ChunkManifest, ChunkRecord, SectionManifest};
use mca::McaParams;
use parking_lot::Mutex;

use cr_core::CrError;

use crate::store::{ChunkId, ChunkStore};

/// Worker count of the parallel hash pool (`opal_hash_workers`).
pub fn hash_workers(params: &McaParams) -> usize {
    params
        .get_parsed_or("opal_hash_workers", 4usize)
        .unwrap_or(4)
        .max(1)
}

/// Capacity of the reusable buffer pool (`opal_buffer_pool_cap`).
pub fn buffer_pool_cap(params: &McaParams) -> usize {
    params
        .get_parsed_or("opal_buffer_pool_cap", 8usize)
        .unwrap_or(8)
        .max(1)
}

/// Hit/miss counters of a [`BufferPool`], read by the allocation-flat
/// ratchet in the `ckpt_datapath` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served from the free list (no allocation).
    pub hits: u64,
    /// `take` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers currently parked on the free list.
    pub pooled: usize,
}

/// A bounded free list of reusable byte buffers.
///
/// `take` hands out a cleared buffer (reusing a parked one when
/// available); `put` parks it again, dropping it instead when the pool is
/// at capacity so the steady-state footprint is bounded by `cap`.
pub struct BufferPool {
    cap: usize,
    bufs: Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// An empty pool that parks at most `cap` buffers.
    pub fn new(cap: usize) -> Self {
        BufferPool {
            cap: cap.max(1),
            bufs: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cleared buffer with at least `min_capacity` bytes reserved,
    /// reused from the free list when one is parked there.
    pub fn take(&self, min_capacity: usize) -> Vec<u8> {
        let reused = self.bufs.lock().pop();
        let mut buf = match reused {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        buf.clear();
        buf.reserve(min_capacity);
        buf
    }

    /// Park `buf` for reuse; dropped instead when the pool is full.
    pub fn put(&self, buf: Vec<u8>) {
        let mut bufs = self.bufs.lock();
        if bufs.len() < self.cap {
            bufs.push(buf);
        }
    }

    /// Current hit/miss/parked counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            pooled: self.bufs.lock().len(),
        }
    }
}

/// Digest every slice of `chunks` over `workers` lanes, preserving order.
///
/// Results are exactly `chunks.iter().map(|c| codec::chunk_digest(c))`;
/// with one worker (or one chunk) the sequential path runs inline.
pub fn digest_all_parallel(chunks: &[&[u8]], workers: usize) -> Vec<u64> {
    if workers <= 1 || chunks.len() <= 1 {
        return chunks.iter().map(|c| codec::chunk_digest(c)).collect();
    }
    let lanes = workers.min(chunks.len());
    let slots: Vec<AtomicU64> = chunks.iter().map(|_| AtomicU64::new(0)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..lanes {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(chunk) = chunks.get(i) else { return };
                if let Some(slot) = slots.get(i) {
                    slot.store(codec::chunk_digest(chunk), Ordering::Relaxed);
                }
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner()).collect()
}

/// Build the chunk manifest of `sections` over `workers` hash lanes.
///
/// Byte-identical to `ChunkManifest::of_sections(sections, chunk_bytes)`:
/// the flattened `(section, chunk)` units are claimed atomically by the
/// lanes and digested concurrently, then reassembled in section/id order.
pub fn manifest_parallel(
    sections: &[(&str, &[u8])],
    chunk_bytes: usize,
    workers: usize,
) -> ChunkManifest {
    let step = chunk_bytes.max(1);
    let total_chunks: usize = sections.iter().map(|(_, b)| b.len().div_ceil(step)).sum();
    if workers <= 1 || total_chunks <= 1 {
        return ChunkManifest::of_sections(sections.iter().copied(), chunk_bytes);
    }
    // Flatten to one global unit index: unit u lives in the section whose
    // prefix range contains u, at chunk id (u - prefix start).
    let mut starts = Vec::with_capacity(sections.len());
    let mut acc = 0usize;
    for (_, bytes) in sections {
        starts.push(acc);
        acc += bytes.len().div_ceil(step);
    }
    let slots: Vec<AtomicU64> = (0..total_chunks).map(|_| AtomicU64::new(0)).collect();
    let next = AtomicUsize::new(0);
    let lanes = workers.min(total_chunks);
    std::thread::scope(|scope| {
        for _ in 0..lanes {
            scope.spawn(|| loop {
                let u = next.fetch_add(1, Ordering::Relaxed);
                if u >= total_chunks {
                    return;
                }
                let sec = starts.partition_point(|&s| s <= u) - 1;
                let Some((_, bytes)) = sections.get(sec) else { return };
                let Some(&start) = starts.get(sec) else { return };
                let lo = (u - start) * step;
                let hi = (lo + step).min(bytes.len());
                let chunk = bytes.get(lo..hi).unwrap_or(&[]);
                if let Some(slot) = slots.get(u) {
                    slot.store(codec::chunk_digest(chunk), Ordering::Relaxed);
                }
            });
        }
    });
    let mut out_sections = Vec::with_capacity(sections.len());
    for (sec, (name, bytes)) in sections.iter().enumerate() {
        let start = starts.get(sec).copied().unwrap_or(0);
        let count = bytes.len().div_ceil(step);
        let chunks = (0..count)
            .map(|i| {
                let lo = i * step;
                let hi = (lo + step).min(bytes.len());
                ChunkRecord {
                    id: i as u32,
                    digest: slots
                        .get(start + i)
                        .map_or(0, |s| s.load(Ordering::Relaxed)),
                    len: (hi - lo) as u32,
                }
            })
            .collect();
        out_sections.push(SectionManifest {
            name: (*name).to_string(),
            total_len: bytes.len() as u64,
            chunks,
        });
    }
    ChunkManifest {
        chunk_bytes: chunk_bytes.max(1) as u32,
        sections: out_sections,
    }
}

/// Insert a batch of *distinct* content-addressed chunks into `store`
/// over `workers` lanes, each lane framing through a pooled scratch
/// buffer. Returns, per chunk, whether a new blob was written (`false` =
/// already present). The caller vouches that each `ChunkId` is the
/// digest of its bytes and that ids do not repeat within the batch (two
/// lanes writing one blob concurrently would race on the file).
pub fn insert_all_parallel(
    store: &ChunkStore,
    chunks: &[(ChunkId, &[u8])],
    workers: usize,
    pool: &BufferPool,
) -> Result<Vec<bool>, CrError> {
    if workers <= 1 || chunks.len() <= 1 {
        let mut scratch = pool.take(0);
        let mut fresh = Vec::with_capacity(chunks.len());
        for (id, bytes) in chunks {
            fresh.push(store.insert_precomputed(id, bytes, &mut scratch)?);
        }
        pool.put(scratch);
        return Ok(fresh);
    }
    let lanes = workers.min(chunks.len());
    let fresh: Vec<AtomicBool> = chunks.iter().map(|_| AtomicBool::new(false)).collect();
    let next = AtomicUsize::new(0);
    let lane_results: Vec<Result<(), CrError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..lanes)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = pool.take(0);
                    let result = loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((id, bytes)) = chunks.get(i) else {
                            break Ok(());
                        };
                        match store.insert_precomputed(id, bytes, &mut scratch) {
                            Ok(wrote) => {
                                if let Some(slot) = fresh.get(i) {
                                    slot.store(wrote, Ordering::Relaxed);
                                }
                            }
                            Err(e) => break Err(e),
                        }
                    };
                    pool.put(scratch);
                    result
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(CrError::protocol("hash pool worker panicked")))
            })
            .collect()
    });
    for lane in lane_results {
        lane?;
    }
    Ok(fresh.into_iter().map(|f| f.into_inner()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("opal_pool_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn arb_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(0x5851_F42D_4C95_7F2D)
                    .wrapping_add(0x1405_7B7E_F767_814F);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn knob_defaults_match_registry() {
        let params = McaParams::new();
        assert_eq!(hash_workers(&params), 4);
        assert_eq!(buffer_pool_cap(&params), 8);
        params.set("opal_hash_workers", "0");
        assert_eq!(hash_workers(&params), 1, "clamped to one lane");
    }

    #[test]
    fn parallel_manifest_matches_sequential_exactly() {
        let a = arb_bytes(100_000, 1);
        let b = arb_bytes(777, 2);
        let c = Vec::new();
        let d = arb_bytes(4096, 3);
        let sections: Vec<(&str, &[u8])> =
            vec![("app", &a), ("pml", &b), ("empty", &c), ("coll", &d)];
        for chunk_bytes in [1usize, 100, 4096, 1 << 20] {
            let seq = ChunkManifest::of_sections(sections.iter().copied(), chunk_bytes);
            for workers in [1usize, 2, 4, 7] {
                let par = manifest_parallel(&sections, chunk_bytes, workers);
                assert_eq!(par, seq, "chunk_bytes={chunk_bytes} workers={workers}");
                assert_eq!(par.render(), seq.render());
            }
        }
    }

    #[test]
    fn digest_all_matches_sequential() {
        let blobs: Vec<Vec<u8>> = (0..37).map(|i| arb_bytes(10 + i * 53, i as u64)).collect();
        let slices: Vec<&[u8]> = blobs.iter().map(Vec::as_slice).collect();
        let seq: Vec<u64> = slices.iter().map(|c| codec::chunk_digest(c)).collect();
        for workers in [1, 3, 8] {
            assert_eq!(digest_all_parallel(&slices, workers), seq, "workers={workers}");
        }
    }

    #[test]
    fn buffer_pool_reuses_and_bounds() {
        let pool = BufferPool::new(2);
        let a = pool.take(64);
        let b = pool.take(64);
        let c = pool.take(64);
        assert_eq!(pool.stats().misses, 3, "cold pool allocates");
        pool.put(a);
        pool.put(b);
        pool.put(c); // over cap: dropped
        assert_eq!(pool.stats().pooled, 2);
        let d = pool.take(16);
        assert!(d.is_empty(), "reused buffers come back cleared");
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 3));
    }

    #[test]
    fn insert_all_parallel_matches_store_contents() {
        let store = ChunkStore::open(&tmp("insert")).unwrap();
        let blobs: Vec<Vec<u8>> = (0..24).map(|i| arb_bytes(200 + i, 40 + i as u64)).collect();
        let units: Vec<(ChunkId, &[u8])> = blobs
            .iter()
            .map(|b| (ChunkId::of(b), b.as_slice()))
            .collect();
        let pool = BufferPool::new(4);
        let fresh = insert_all_parallel(&store, &units, 4, &pool).unwrap();
        assert!(fresh.iter().all(|&f| f), "empty store: every insert writes");
        // Every blob is present, frame-valid, and digest-verified by get.
        for (id, bytes) in &units {
            assert_eq!(&store.get(id).unwrap(), bytes);
        }
        // Re-insert: all hits, nothing rewritten.
        let again = insert_all_parallel(&store, &units, 4, &pool).unwrap();
        assert!(again.iter().all(|&f| !f));
        assert_eq!(store.chunk_count().unwrap(), blobs.len());
        // Steady state allocated O(workers) scratch buffers, not O(chunks).
        assert!(
            pool.stats().misses <= 8,
            "scratch allocations must be bounded by lanes, got {:?}",
            pool.stats()
        );
    }
}
