//! The safe-point gate: cooperative stop/resume for checkpointing.
//!
//! BLCR interrupts threads with signals and captures their full register
//! state. Safe Rust cannot, so the closest behaviour-preserving substitute
//! is cooperative: application threads call
//! [`SafePointGate::checkpoint_point`] at *safe points* — between
//! application steps, and inside every blocking-communication wait loop —
//! and park there whenever the notification thread has requested a pause.
//! The notification thread requests a pause, waits for the application
//! thread to park, runs the whole checkpoint (INC chain, coordination
//! protocol, CRS), and resumes it.
//!
//! This reproduces the paper's visible semantics: "A thread in the process
//! is only stopped when it tries to access a part of the Open MPI library
//! that has been notified" (§6.5) — between the pause *request* and the
//! actual park, the application may still complete in-flight operations.

use std::time::{Duration, Instant};

use cr_core::CrError;
use parking_lot::{Condvar, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Normal execution.
    Running,
    /// Notification thread asked the app thread to park.
    PauseRequested,
    /// App thread is parked at a safe point.
    Parked,
    /// The app thread left the checkpoint window for good (finalize).
    Retired,
}

#[derive(Debug)]
struct Inner {
    phase: Phase,
    /// Counts completed pause/resume cycles (diagnostics and tests).
    generations: u64,
}

/// Cooperative pause gate shared between the application thread and the
/// checkpoint notification thread.
#[derive(Debug)]
pub struct SafePointGate {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Default for SafePointGate {
    fn default() -> Self {
        Self::new()
    }
}

impl SafePointGate {
    /// New gate in the running phase.
    pub fn new() -> Self {
        SafePointGate {
            inner: Mutex::new(Inner {
                phase: Phase::Running,
                generations: 0,
            }),
            cv: Condvar::new(),
        }
    }

    // -- application-thread side --------------------------------------------

    /// Declare a safe point. If a pause has been requested, park here until
    /// the checkpoint completes. Returns `true` if this call parked.
    ///
    /// Called between application steps and inside blocking wait loops; it
    /// must be called with **no library locks held** (the checkpoint runs
    /// on another thread and needs them).
    pub fn checkpoint_point(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.phase != Phase::PauseRequested {
            return false;
        }
        inner.phase = Phase::Parked;
        self.cv.notify_all();
        while inner.phase == Phase::Parked {
            self.cv.wait(&mut inner);
        }
        true
    }

    /// The application thread is leaving the checkpoint window permanently
    /// (entering finalize / exiting). Any waiting notification thread is
    /// woken with a failure.
    pub fn retire(&self) {
        let mut inner = self.inner.lock();
        inner.phase = Phase::Retired;
        self.cv.notify_all();
    }

    // -- notification-thread side ---------------------------------------------

    /// Ask the application thread to park at its next safe point.
    ///
    /// Returns `Err` if the thread has already retired.
    pub fn request_pause(&self) -> Result<(), CrError> {
        let mut inner = self.inner.lock();
        match inner.phase {
            Phase::Running => {
                inner.phase = Phase::PauseRequested;
                Ok(())
            }
            Phase::Retired => Err(CrError::CheckpointDisabled {
                reason: "process is finalizing".into(),
            }),
            Phase::PauseRequested | Phase::Parked => Err(CrError::protocol(
                "overlapping pause requests on one process",
            )),
        }
    }

    /// Block until the application thread parks (or `timeout` expires, or
    /// the thread retires).
    pub fn wait_until_parked(&self, timeout: Duration) -> Result<(), CrError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            match inner.phase {
                Phase::Parked => return Ok(()),
                Phase::Retired => {
                    return Err(CrError::CheckpointDisabled {
                        reason: "process finalized while a pause was pending".into(),
                    })
                }
                _ => {}
            }
            if self.cv.wait_until(&mut inner, deadline).timed_out() {
                // Give up the request so the process is not left frozen.
                if inner.phase == Phase::PauseRequested {
                    inner.phase = Phase::Running;
                }
                return Err(CrError::protocol(
                    "application thread did not reach a safe point in time",
                ));
            }
        }
    }

    /// Release a parked application thread.
    pub fn resume(&self) {
        let mut inner = self.inner.lock();
        if inner.phase == Phase::Parked {
            inner.phase = Phase::Running;
            inner.generations += 1;
            self.cv.notify_all();
        } else if inner.phase == Phase::PauseRequested {
            // Pause was requested but never reached: cancel it.
            inner.phase = Phase::Running;
            self.cv.notify_all();
        }
    }

    // -- queries ---------------------------------------------------------------

    /// True while a pause request is outstanding (not yet parked).
    pub fn pause_requested(&self) -> bool {
        self.inner.lock().phase == Phase::PauseRequested
    }

    /// True while the application thread is parked.
    pub fn is_parked(&self) -> bool {
        self.inner.lock().phase == Phase::Parked
    }

    /// Completed pause/resume cycles.
    pub fn generations(&self) -> u64 {
        self.inner.lock().generations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn no_pause_means_no_park() {
        let gate = SafePointGate::new();
        assert!(!gate.checkpoint_point());
        assert!(!gate.is_parked());
        assert_eq!(gate.generations(), 0);
    }

    #[test]
    fn pause_park_resume_cycle() {
        let gate = Arc::new(SafePointGate::new());
        let app_gate = Arc::clone(&gate);
        let parked_count = Arc::new(AtomicU64::new(0));
        let pc = Arc::clone(&parked_count);
        let app = std::thread::spawn(move || {
            for _ in 0..1000 {
                if app_gate.checkpoint_point() {
                    pc.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::yield_now();
            }
            app_gate.retire();
        });

        gate.request_pause().unwrap();
        gate.wait_until_parked(Duration::from_secs(5)).unwrap();
        assert!(gate.is_parked());
        // The checkpoint would run here, app fully stopped.
        gate.resume();
        app.join().unwrap();
        assert_eq!(parked_count.load(Ordering::SeqCst), 1);
        assert_eq!(gate.generations(), 1);
    }

    #[test]
    fn retired_gate_rejects_pause() {
        let gate = SafePointGate::new();
        gate.retire();
        assert!(matches!(
            gate.request_pause(),
            Err(CrError::CheckpointDisabled { .. })
        ));
    }

    #[test]
    fn retire_wakes_waiting_coordinator() {
        let gate = Arc::new(SafePointGate::new());
        gate.request_pause().unwrap();
        let waiter_gate = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            waiter_gate.wait_until_parked(Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(20));
        gate.retire();
        let result = waiter.join().unwrap();
        assert!(matches!(result, Err(CrError::CheckpointDisabled { .. })));
    }

    #[test]
    fn timeout_cancels_the_request() {
        let gate = SafePointGate::new();
        gate.request_pause().unwrap();
        let err = gate
            .wait_until_parked(Duration::from_millis(30))
            .unwrap_err();
        assert!(err.to_string().contains("safe point"));
        // The request was cancelled: the app never blocks afterwards.
        assert!(!gate.pause_requested());
        assert!(!gate.checkpoint_point());
    }

    #[test]
    fn overlapping_pause_rejected() {
        let gate = SafePointGate::new();
        gate.request_pause().unwrap();
        assert!(gate.request_pause().is_err());
    }

    #[test]
    fn resume_cancels_unreached_pause() {
        let gate = SafePointGate::new();
        gate.request_pause().unwrap();
        assert!(gate.pause_requested());
        gate.resume();
        assert!(!gate.pause_requested());
        assert!(!gate.checkpoint_point());
    }

    #[test]
    fn repeated_cycles() {
        let gate = Arc::new(SafePointGate::new());
        let app_gate = Arc::clone(&gate);
        let stop = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let app = std::thread::spawn(move || {
            while stop2.load(Ordering::SeqCst) == 0 {
                app_gate.checkpoint_point();
                std::thread::yield_now();
            }
            app_gate.retire();
        });
        for _ in 0..5 {
            gate.request_pause().unwrap();
            gate.wait_until_parked(Duration::from_secs(5)).unwrap();
            gate.resume();
        }
        stop.store(1, Ordering::SeqCst);
        app.join().unwrap();
        assert_eq!(gate.generations(), 5);
    }
}
