//! Property test: pooled-buffer delta builds are byte-identical to the
//! legacy per-chunk-allocation path across random mutation schedules.
//!
//! The buffer pool hands out recycled `Vec`s with arbitrary spare
//! capacity; if any of that state ever leaked into the serialized delta
//! context, a restart replaying the chain would reassemble a corrupt
//! image. So the gate is at the byte level: for every schedule of image
//! mutations (overwrites, growth, shrinkage, across sections), both
//! builders must serialize to identical context payloads, interval after
//! interval, while the pooled path recycles its buffers.

use codec::chunk::ChunkManifest;
use opal::image::ProcessImage;
use opal::incr::{build_delta, build_delta_pooled, recycle_delta};
use opal::BufferPool;
use proptest::collection::vec;
use proptest::prelude::*;

/// One step of a mutation schedule.
#[derive(Debug, Clone)]
enum Mutation {
    /// Overwrite one byte of section `sec` at a position index.
    Poke { sec: prop::sample::Index, at: prop::sample::Index, val: u8 },
    /// Resize section `sec` to a new length in `0..4096`, filling with `val`.
    Resize { sec: prop::sample::Index, len: u16, val: u8 },
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (any::<prop::sample::Index>(), any::<prop::sample::Index>(), any::<u8>())
            .prop_map(|(sec, at, val)| Mutation::Poke { sec, at, val }),
        (any::<prop::sample::Index>(), 0..4096u16, any::<u8>())
            .prop_map(|(sec, len, val)| Mutation::Resize { sec, len, val }),
    ]
}

fn image_of(sections: &[Vec<u8>]) -> ProcessImage {
    let mut img = ProcessImage::new();
    for (i, bytes) in sections.iter().enumerate() {
        img.insert(format!("sec{i}"), bytes.clone());
    }
    img
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pooled_delta_builds_are_byte_identical(
        mut sections in vec(vec(any::<u8>(), 0..3000), 1..4),
        schedule in vec(vec(arb_mutation(), 0..6), 1..5),
        chunk_bytes in 1..512usize,
        pool_cap in 1..6usize,
    ) {
        let pool = BufferPool::new(pool_cap);
        let mut prev_manifest = {
            let img = image_of(&sections);
            let secs: Vec<(&str, &[u8])> = img.iter().collect();
            ChunkManifest::of_sections(secs.into_iter(), chunk_bytes)
        };
        // Each schedule entry is one checkpoint interval's worth of
        // mutations; deltas are built against the previous interval.
        for step in &schedule {
            for m in step {
                match m {
                    Mutation::Poke { sec, at, val } => {
                        let s = sec.index(sections.len());
                        if let Some(bytes) = sections.get_mut(s) {
                            if !bytes.is_empty() {
                                let i = at.index(bytes.len());
                                bytes[i] = *val;
                            }
                        }
                    }
                    Mutation::Resize { sec, len, val } => {
                        let s = sec.index(sections.len());
                        if let Some(bytes) = sections.get_mut(s) {
                            bytes.resize(*len as usize, *val);
                        }
                    }
                }
            }
            let img = image_of(&sections);
            let secs: Vec<(&str, &[u8])> = img.iter().collect();
            let manifest = ChunkManifest::of_sections(secs.iter().copied(), chunk_bytes);
            let legacy = build_delta(&img, &manifest, &prev_manifest, chunk_bytes);
            let pooled = build_delta_pooled(&img, &manifest, &prev_manifest, chunk_bytes, &pool);
            let legacy_bytes = codec::to_bytes(&legacy).unwrap();
            let pooled_bytes = codec::to_bytes(&pooled).unwrap();
            prop_assert_eq!(legacy_bytes, pooled_bytes, "chunk_bytes={}", chunk_bytes);
            recycle_delta(pooled, &pool);
            prev_manifest = manifest;
        }
        // The pool never parks more than its cap.
        prop_assert!(pool.stats().pooled <= pool_cap);
    }
}
