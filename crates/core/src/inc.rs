//! Interlayer Notification Callbacks (INC).
//!
//! A checkpoint request enters a process through a single entry point and
//! must notify every software layer — application (optional), OMPI, ORTE,
//! OPAL — in *stack order*: the topmost layer prepares first and resumes
//! last, so an application INC gets "the opportunity to use the full suite
//! of MPI functionality before allowing the library to prepare for a
//! checkpoint" (paper §6.5).
//!
//! The registration contract reproduces the paper exactly: registering an
//! INC returns the previously registered callback, and **the new INC is
//! responsible for calling the previous one from within itself**. That
//! gives each INC a point *before* and a point *after* the lower layers
//! run — the palindrome ordering asserted by experiment E4.
//!
//! An INC receives the entering protocol state (always
//! [`FtEventState::Checkpoint`] on the way down) and returns the resulting
//! state produced by the bottom of the stack — [`FtEventState::Continue`]
//! in the original process, [`FtEventState::Restart`] in a restarted image,
//! or [`FtEventState::Error`] if the local checkpoint failed.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::CrError;
use crate::state::{FtEvent, FtEventState};
use crate::trace::Tracer;

/// An interlayer notification callback.
///
/// Input: the state entering this layer (top-down). Output: the state that
/// resulted from the layers below (bottom-up).
pub type IncCallback = Arc<dyn Fn(FtEventState) -> Result<FtEventState, CrError> + Send + Sync>;

/// Per-process registry holding the top of the INC stack.
///
/// # Examples
///
/// The registration-returns-previous contract: each new INC closes over
/// the previous one and must call it, giving stack-ordered notification.
///
/// ```
/// use std::sync::Arc;
/// use cr_core::{FtEventState, IncRegistry};
///
/// let registry = IncRegistry::new();
/// // Bottom layer (OPAL): turns the request into a resulting state.
/// registry.register(|prev| {
///     assert!(prev.is_none());
///     Arc::new(|_state| Ok(FtEventState::Continue))
/// });
/// // Upper layer: wraps the lower one.
/// registry.register(|prev| {
///     let prev = prev.expect("lower layer registered first");
///     Arc::new(move |state| {
///         // ... prepare this layer ...
///         let out = prev(state)?;
///         // ... resume this layer ...
///         Ok(out)
///     })
/// });
/// let out = registry.deliver(FtEventState::Checkpoint).unwrap();
/// assert_eq!(out, FtEventState::Continue);
/// ```
#[derive(Default)]
pub struct IncRegistry {
    top: Mutex<Option<IncCallback>>,
}

impl IncRegistry {
    /// New, empty registry (no layer registered yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new topmost INC.
    ///
    /// `make` receives the previously registered callback (the next layer
    /// down); the INC it builds must invoke that callback from within
    /// itself to preserve stack ordering.
    pub fn register(&self, make: impl FnOnce(Option<IncCallback>) -> IncCallback) {
        let mut top = self.top.lock();
        let prev = top.take();
        *top = Some(make(prev));
    }

    /// True once at least one INC is registered.
    pub fn is_armed(&self) -> bool {
        self.top.lock().is_some()
    }

    /// Entry point: deliver `state` to the topmost INC and run the whole
    /// chain. Called by the checkpoint notification thread (paper Fig. 2's
    /// `entry_point()`).
    pub fn deliver(&self, state: FtEventState) -> Result<FtEventState, CrError> {
        let top = self.top.lock().clone();
        match top {
            Some(cb) => cb(state),
            None => Err(CrError::protocol(
                "checkpoint delivered before any INC was registered",
            )),
        }
    }
}

/// Builds the standard layer INC used by OPAL/ORTE/OMPI.
///
/// On the way **down** (entering state), it delivers `ft_event(state)` to
/// its subsystems in registration order, then invokes the previous
/// (lower-layer) INC. On the way **up** it delivers the *resulting* state
/// to its subsystems in reverse order and passes the result upward.
///
/// If a subsystem fails while preparing, the already-prepared subsystems
/// receive [`FtEventState::Error`] (in reverse order) so they can undo, and
/// the error propagates without the lower layers ever being entered.
pub struct LayerInc {
    name: &'static str,
    subsystems: Vec<(String, Arc<Mutex<dyn FtEvent + Send>>)>,
    tracer: Tracer,
}

impl LayerInc {
    /// Start building a layer INC named `name` (e.g. `"ompi"`).
    pub fn new(name: &'static str, tracer: Tracer) -> Self {
        LayerInc {
            name,
            subsystems: Vec::new(),
            tracer,
        }
    }

    /// Attach a subsystem. Order matters: coordination services (CRCP) must
    /// be attached before the subsystems they coordinate (paper §5.3).
    pub fn subsystem(
        mut self,
        name: impl Into<String>,
        subsystem: Arc<Mutex<dyn FtEvent + Send>>,
    ) -> Self {
        self.subsystems.push((name.into(), subsystem));
        self
    }

    /// Finish: produce the callback, closing over the previous INC.
    ///
    /// When `prev` is `None` this layer is the bottom of the stack, and
    /// `bottom` is invoked between the down and up phases — OPAL passes the
    /// closure that runs the actual CRS checkpoint here.
    pub fn build(
        self,
        prev: Option<IncCallback>,
        bottom: Option<IncCallback>,
    ) -> IncCallback {
        let LayerInc {
            name,
            subsystems,
            tracer,
        } = self;
        Arc::new(move |state_in: FtEventState| {
            tracer.record(&format!("{name}.inc.enter"), &state_in.to_string());

            // Down phase: notify our subsystems of the entering state.
            let mut prepared: Vec<usize> = Vec::with_capacity(subsystems.len());
            for (idx, (sub_name, sub)) in subsystems.iter().enumerate() {
                tracer.record(
                    &format!("{name}.{sub_name}.ft_event"),
                    &state_in.to_string(),
                );
                if let Err(e) = sub.lock().ft_event(state_in) {
                    // Undo the ones that already prepared, newest first.
                    for &done in prepared.iter().rev() {
                        let (undo_name, undo) = &subsystems[done];
                        tracer.record(&format!("{name}.{undo_name}.ft_event"), "error");
                        // Best effort: an undo failure must not mask the
                        // original failure.
                        let _ = undo.lock().ft_event(FtEventState::Error);
                    }
                    tracer.record(&format!("{name}.inc.abort"), &e.to_string());
                    return Err(e);
                }
                prepared.push(idx);
            }

            // Descend (or run the bottom action when we are the lowest
            // layer).
            let result = match (&prev, &bottom) {
                (Some(lower), _) => lower(state_in),
                (None, Some(action)) => action(state_in),
                (None, None) => Ok(state_in),
            };

            let state_out = match result {
                Ok(s) => s,
                Err(e) => {
                    for (sub_name, sub) in subsystems.iter().rev() {
                        tracer.record(&format!("{name}.{sub_name}.ft_event"), "error");
                        let _ = sub.lock().ft_event(FtEventState::Error);
                    }
                    tracer.record(&format!("{name}.inc.abort"), &e.to_string());
                    return Err(e);
                }
            };

            // Up phase: resulting state, reverse order.
            for (sub_name, sub) in subsystems.iter().rev() {
                tracer.record(
                    &format!("{name}.{sub_name}.ft_event"),
                    &state_out.to_string(),
                );
                sub.lock().ft_event(state_out)?;
            }
            tracer.record(&format!("{name}.inc.exit"), &state_out.to_string());
            Ok(state_out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        name: &'static str,
        log: Arc<Mutex<Vec<String>>>,
        fail_on: Option<FtEventState>,
    }

    impl FtEvent for Recorder {
        fn ft_event(&mut self, state: FtEventState) -> Result<(), CrError> {
            self.log.lock().push(format!("{}:{}", self.name, state));
            if self.fail_on == Some(state) {
                return Err(CrError::FtEventFailed {
                    subsystem: self.name.into(),
                    state,
                    detail: "injected".into(),
                });
            }
            Ok(())
        }
    }

    fn recorder(
        name: &'static str,
        log: &Arc<Mutex<Vec<String>>>,
        fail_on: Option<FtEventState>,
    ) -> Arc<Mutex<dyn FtEvent + Send>> {
        Arc::new(Mutex::new(Recorder {
            name,
            log: Arc::clone(log),
            fail_on,
        }))
    }

    /// Build a three-layer stack (opal bottom, orte, ompi top) the way the
    /// runtime does, with one subsystem per layer.
    fn build_stack(
        log: &Arc<Mutex<Vec<String>>>,
        registry: &IncRegistry,
        bottom_state: FtEventState,
    ) {
        let tracer = Tracer::new();
        let log2 = Arc::clone(log);
        let bottom: IncCallback = Arc::new(move |_state| {
            log2.lock().push("crs:checkpoint-taken".into());
            Ok(bottom_state)
        });
        let opal = LayerInc::new("opal", tracer.clone())
            .subsystem("event", recorder("opal.event", log, None));
        registry.register(move |prev| {
            assert!(prev.is_none(), "opal registers first");
            opal.build(None, Some(bottom))
        });
        let orte = LayerInc::new("orte", tracer.clone())
            .subsystem("oob", recorder("orte.oob", log, None));
        registry.register(move |prev| orte.build(prev, None));
        let ompi = LayerInc::new("ompi", tracer.clone())
            .subsystem("crcp", recorder("ompi.crcp", log, None))
            .subsystem("pml", recorder("ompi.pml", log, None));
        registry.register(move |prev| orte_top(ompi, prev));
        fn orte_top(layer: LayerInc, prev: Option<IncCallback>) -> IncCallback {
            layer.build(prev, None)
        }
    }

    #[test]
    fn stack_order_is_a_palindrome_around_the_crs() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let registry = IncRegistry::new();
        build_stack(&log, &registry, FtEventState::Continue);

        let out = registry.deliver(FtEventState::Checkpoint).unwrap();
        assert_eq!(out, FtEventState::Continue);
        let events = log.lock().clone();
        assert_eq!(
            events,
            vec![
                "ompi.crcp:checkpoint",
                "ompi.pml:checkpoint",
                "orte.oob:checkpoint",
                "opal.event:checkpoint",
                "crs:checkpoint-taken",
                "opal.event:continue",
                "orte.oob:continue",
                "ompi.pml:continue",
                "ompi.crcp:continue",
            ]
        );
    }

    #[test]
    fn restart_state_flows_up_the_same_chain() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let registry = IncRegistry::new();
        build_stack(&log, &registry, FtEventState::Restart);
        let out = registry.deliver(FtEventState::Restart).unwrap();
        assert_eq!(out, FtEventState::Restart);
        let events = log.lock().clone();
        assert_eq!(events.first().unwrap(), "ompi.crcp:restart");
        assert_eq!(events.last().unwrap(), "ompi.crcp:restart");
        assert_eq!(events.len(), 9);
    }

    #[test]
    fn app_inc_wraps_the_library() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let registry = IncRegistry::new();
        build_stack(&log, &registry, FtEventState::Continue);
        // Application registers last, so it runs first and resumes last —
        // and must call the previous INC itself (the paper's contract).
        let app_log = Arc::clone(&log);
        registry.register(move |prev| {
            let prev = prev.expect("library INCs already registered");
            Arc::new(move |state| {
                app_log.lock().push("app:before".into());
                let out = prev(state)?;
                app_log.lock().push("app:after".into());
                Ok(out)
            })
        });
        registry.deliver(FtEventState::Checkpoint).unwrap();
        let events = log.lock().clone();
        assert_eq!(events.first().unwrap(), "app:before");
        assert_eq!(events.last().unwrap(), "app:after");
    }

    #[test]
    fn prepare_failure_unwinds_with_error_state() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let tracer = Tracer::new();
        let registry = IncRegistry::new();
        let layer = LayerInc::new("ompi", tracer)
            .subsystem("a", recorder("a", &log, None))
            .subsystem("b", recorder("b", &log, Some(FtEventState::Checkpoint)))
            .subsystem("c", recorder("c", &log, None));
        registry.register(move |prev| layer.build(prev, None));
        let err = registry.deliver(FtEventState::Checkpoint).unwrap_err();
        assert!(matches!(err, CrError::FtEventFailed { .. }));
        let events = log.lock().clone();
        // a prepared, b failed, a undone with error; c never touched.
        assert_eq!(
            events,
            vec!["a:checkpoint", "b:checkpoint", "a:error"]
        );
    }

    #[test]
    fn lower_layer_failure_sends_error_up() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let tracer = Tracer::new();
        let registry = IncRegistry::new();
        let failing_bottom: IncCallback =
            Arc::new(|_| Err(CrError::protocol("disk full")));
        let layer = LayerInc::new("opal", tracer)
            .subsystem("event", recorder("event", &log, None));
        registry.register(move |prev| {
            assert!(prev.is_none());
            layer.build(None, Some(failing_bottom))
        });
        let err = registry.deliver(FtEventState::Checkpoint).unwrap_err();
        assert!(err.to_string().contains("disk full"));
        let events = log.lock().clone();
        assert_eq!(events, vec!["event:checkpoint", "event:error"]);
    }

    #[test]
    fn delivery_without_registration_is_a_protocol_error() {
        let registry = IncRegistry::new();
        assert!(!registry.is_armed());
        assert!(registry.deliver(FtEventState::Checkpoint).is_err());
    }

    #[test]
    fn empty_layer_passes_state_through() {
        let registry = IncRegistry::new();
        let tracer = Tracer::new();
        let layer = LayerInc::new("opal", tracer);
        registry.register(move |prev| layer.build(prev, None));
        assert!(registry.is_armed());
        let out = registry.deliver(FtEventState::Checkpoint).unwrap();
        // No bottom action: the entering state is returned unchanged.
        assert_eq!(out, FtEventState::Checkpoint);
    }
}
