//! Checkpoint/restart core: the paper's cross-cutting contribution.
//!
//! This crate holds everything the three Open MPI layers (OPAL, ORTE, OMPI)
//! and the command line tools share:
//!
//! * [`state::FtEventState`] and the [`state::FtEvent`] trait — the
//!   `int ft_event(int state)` extension every framework component
//!   implements so subsystem-specific fault-tolerance logic stays isolated
//!   (paper §5.5/§6.5).
//! * [`inc`] — Interlayer Notification Callbacks: stack-ordered callbacks,
//!   one per software layer plus an optional application callback, with the
//!   registration-returns-previous contract from the paper (§5.5).
//! * [`snapshot`] — the *local* and *global snapshot references*: named,
//!   self-describing on-disk directories that free users from tracking raw
//!   checkpointer files or remembering original `mpirun` arguments (§4).
//! * [`ids`] — job / process naming shared across layers.
//! * [`trace`] — an event tracer used by tests and benchmarks to assert the
//!   coordination orderings shown in the paper's Figures 1 and 2.
//! * [`events`] — the trace-event registry: every phase string recorded in
//!   production code, enforced by the `cr-lint` `trace-keys` rule the same
//!   way `mca::registry::KNOWN_PARAMS` backs the `mca-keys` rule.
//! * [`error`] — the common error type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod events;
pub mod ids;
pub mod inc;
pub mod request;
pub mod snapshot;
pub mod state;
pub mod trace;

pub use error::CrError;
pub use events::{is_known_event, TraceEventDef, KNOWN_TRACE_EVENTS};
pub use ids::{JobId, ProcessName, Rank};
pub use inc::IncRegistry;
pub use request::{CheckpointOptions, CheckpointOutcome, CkptStats};
pub use snapshot::{CommitState, GlobalSnapshot, LocalSnapshot};
pub use state::{FtEvent, FtEventState};
pub use trace::Tracer;
