//! Local and global snapshot references (paper §4).
//!
//! A *snapshot reference* is a single named directory that stands for a
//! checkpoint. Users preserve the directory; everything else — which
//! checkpointer produced which files, what the original launch parameters
//! were, which rank ran where — lives in metadata files inside it. This is
//! the paper's answer to earlier systems that made users track raw
//! checkpointer files and re-type the original `mpirun` arguments at
//! restart time.
//!
//! On-disk layout:
//!
//! ```text
//! <stable-storage>/ompi_global_snapshot_<jobid>.ckpt/       # global reference
//!   global_snapshot_meta.data
//!   <interval>/                                             # one per checkpoint
//!     opal_snapshot_<rank>.ckpt/                            # local reference
//!       snapshot_meta.data
//!       <context file named by the CRS component>
//! ```
//!
//! Interval numbers are monotone per global reference; a restarted job
//! continues numbering past the interval it was restored from (invariant 5
//! in DESIGN.md).

use std::fs;
use std::path::{Path, PathBuf};

use codec::MetaDoc;

use crate::error::CrError;
use crate::ids::{JobId, Rank};

/// Name of the metadata file inside a local snapshot directory.
pub const LOCAL_META_FILE: &str = "snapshot_meta.data";
/// Name of the metadata file inside a global snapshot directory.
pub const GLOBAL_META_FILE: &str = "global_snapshot_meta.data";
/// Default context file name used by CRS components.
pub const DEFAULT_CONTEXT_FILE: &str = "ompi_context.bin";

/// Directory name of a global snapshot reference for `job`.
pub fn global_dir_name(job: JobId) -> String {
    format!("ompi_global_snapshot_{}.ckpt", job.0)
}

/// Directory name of a local snapshot reference for `rank`.
pub fn local_dir_name(rank: Rank) -> String {
    format!("opal_snapshot_{}.ckpt", rank.0)
}

fn read_meta(path: &Path) -> Result<MetaDoc, CrError> {
    let text = fs::read_to_string(path).map_err(|e| CrError::io(path.display().to_string(), &e))?;
    MetaDoc::parse(&text).map_err(CrError::from)
}

fn write_meta(path: &Path, meta: &MetaDoc) -> Result<(), CrError> {
    fs::write(path, meta.render()).map_err(|e| CrError::io(path.display().to_string(), &e))
}

// ---------------------------------------------------------------------------
// Local snapshot reference
// ---------------------------------------------------------------------------

/// A single-process snapshot: directory + metadata + one context file.
#[derive(Debug, Clone)]
pub struct LocalSnapshot {
    dir: PathBuf,
    meta: MetaDoc,
}

impl LocalSnapshot {
    /// Create a fresh local snapshot directory under `parent`.
    ///
    /// `crs_component` is recorded so restart can instantiate the same
    /// checkpointer, whatever the restart-time selection parameters say.
    pub fn create(
        parent: &Path,
        rank: Rank,
        crs_component: &str,
        interval: u64,
        hostname: &str,
    ) -> Result<Self, CrError> {
        let dir = parent.join(local_dir_name(rank));
        fs::create_dir_all(&dir).map_err(|e| CrError::io(dir.display().to_string(), &e))?;
        let mut meta = MetaDoc::new();
        meta.set("snapshot", "crs", crs_component);
        meta.set("snapshot", "interval", interval.to_string());
        meta.set("snapshot", "context_file", DEFAULT_CONTEXT_FILE);
        meta.set("process", "rank", rank.0.to_string());
        meta.set("process", "hostname", hostname);
        let snap = LocalSnapshot { dir, meta };
        snap.save_meta()?;
        Ok(snap)
    }

    /// Open an existing local snapshot directory.
    pub fn open(dir: &Path) -> Result<Self, CrError> {
        let meta_path = dir.join(LOCAL_META_FILE);
        if !meta_path.is_file() {
            return Err(CrError::BadSnapshot {
                detail: format!(
                    "{} is not a local snapshot reference (missing {LOCAL_META_FILE})",
                    dir.display()
                ),
            });
        }
        let meta = read_meta(&meta_path)?;
        let snap = LocalSnapshot {
            dir: dir.to_path_buf(),
            meta,
        };
        // Validate the required keys up front so later accessors are
        // infallible.
        snap.meta.require("snapshot", "crs")?;
        snap.meta.require("process", "rank")?;
        Ok(snap)
    }

    /// Directory of this reference.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Which CRS component produced this snapshot.
    pub fn crs_component(&self) -> &str {
        self.meta.get("snapshot", "crs").expect("validated on open")
    }

    /// Rank this snapshot images.
    pub fn rank(&self) -> Rank {
        Rank(self
            .meta
            .get_parsed("process", "rank")
            .expect("validated on open"))
    }

    /// Checkpoint interval this snapshot belongs to.
    pub fn interval(&self) -> u64 {
        self.meta.get_parsed("snapshot", "interval").unwrap_or(0)
    }

    /// Hostname the process ran on when checkpointed.
    pub fn hostname(&self) -> Option<&str> {
        self.meta.get("process", "hostname")
    }

    /// Path of the binary context file.
    pub fn context_path(&self) -> PathBuf {
        let name = self
            .meta
            .get("snapshot", "context_file")
            .unwrap_or(DEFAULT_CONTEXT_FILE);
        self.dir.join(name)
    }

    /// Write the process image, wrapped in a checksummed frame.
    pub fn write_context(&self, payload: &[u8]) -> Result<(), CrError> {
        let path = self.context_path();
        fs::write(&path, codec::write_frame(payload))
            .map_err(|e| CrError::io(path.display().to_string(), &e))
    }

    /// Read and validate the process image.
    pub fn read_context(&self) -> Result<Vec<u8>, CrError> {
        let path = self.context_path();
        let raw = fs::read(&path).map_err(|e| CrError::io(path.display().to_string(), &e))?;
        Ok(codec::read_frame(&raw)?.to_vec())
    }

    /// Record an application/checkpointer-specific parameter.
    pub fn set_param(&mut self, key: &str, value: &str) -> Result<(), CrError> {
        self.meta.set("params", key, value);
        self.save_meta()
    }

    /// Read back a parameter set with [`LocalSnapshot::set_param`].
    pub fn param(&self, key: &str) -> Option<&str> {
        self.meta.get("params", key)
    }

    /// Total size of the snapshot on disk (context + metadata), in bytes.
    pub fn size_bytes(&self) -> Result<u64, CrError> {
        let mut total = 0;
        let entries =
            fs::read_dir(&self.dir).map_err(|e| CrError::io(self.dir.display().to_string(), &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| CrError::io(self.dir.display().to_string(), &e))?;
            let md = entry
                .metadata()
                .map_err(|e| CrError::io(self.dir.display().to_string(), &e))?;
            if md.is_file() {
                total += md.len();
            }
        }
        Ok(total)
    }

    fn save_meta(&self) -> Result<(), CrError> {
        write_meta(&self.dir.join(LOCAL_META_FILE), &self.meta)
    }
}

// ---------------------------------------------------------------------------
// Global snapshot reference
// ---------------------------------------------------------------------------

/// Commit progress of one checkpoint interval — a small lattice, ordered
/// `Uncommitted < LocalCommitted < GlobalCommitted`.
///
/// With pipelined commit, SNAPC first records that every rank's capture
/// landed on node-local disk (*local commit*: the application may resume,
/// but node failure can still lose the interval) and only after the FILEM
/// gather reaches stable storage promotes the interval to *global commit*
/// (restorable after any failure). Restart-facing accessors
/// ([`GlobalSnapshot::intervals`], [`GlobalSnapshot::latest_interval`],
/// [`GlobalSnapshot::local_snapshots`]) see only globally committed
/// intervals, so a restart can never read a partially gathered one.
///
/// This module is the lattice's single authority: components change a
/// commit state only through [`GlobalSnapshot::commit_interval`],
/// [`GlobalSnapshot::local_commit_interval`], and
/// [`GlobalSnapshot::promote_interval`], and read it back with
/// [`GlobalSnapshot::commit_state`] — the `commit-state` cr-lint rule
/// rejects `CommitState` values minted anywhere else, and the `cr-model`
/// `commit` model verifies the protocol's promotion monotonicity under
/// every interleaving (DESIGN.md §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommitState {
    /// Begun but not yet recorded anywhere durable.
    Uncommitted,
    /// Every rank's capture is on node-local disk; the gather to stable
    /// storage is still in flight.
    LocalCommitted,
    /// Fully gathered to stable storage (or equivalently durable peer
    /// memory); restorable.
    GlobalCommitted,
}

impl std::fmt::Display for CommitState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CommitState::Uncommitted => "uncommitted",
            CommitState::LocalCommitted => "local-committed",
            CommitState::GlobalCommitted => "global-committed",
        };
        write!(f, "{s}")
    }
}

/// A job-wide snapshot: a directory aggregating one local snapshot per rank
/// for each checkpoint interval, plus job-level metadata.
#[derive(Debug, Clone)]
pub struct GlobalSnapshot {
    dir: PathBuf,
    meta: MetaDoc,
}

impl GlobalSnapshot {
    /// Create a fresh global snapshot reference for `job` under `base`.
    pub fn create(base: &Path, job: JobId, nprocs: u32) -> Result<Self, CrError> {
        let dir = base.join(global_dir_name(job));
        fs::create_dir_all(&dir).map_err(|e| CrError::io(dir.display().to_string(), &e))?;
        let mut meta = MetaDoc::new();
        meta.set("global", "jobid", job.0.to_string());
        meta.set("global", "nprocs", nprocs.to_string());
        let snap = GlobalSnapshot { dir, meta };
        snap.save_meta()?;
        Ok(snap)
    }

    /// Open an existing global snapshot reference.
    pub fn open(dir: &Path) -> Result<Self, CrError> {
        let meta_path = dir.join(GLOBAL_META_FILE);
        if !meta_path.is_file() {
            return Err(CrError::BadSnapshot {
                detail: format!(
                    "{} is not a global snapshot reference (missing {GLOBAL_META_FILE})",
                    dir.display()
                ),
            });
        }
        let meta = read_meta(&meta_path)?;
        let snap = GlobalSnapshot {
            dir: dir.to_path_buf(),
            meta,
        };
        snap.meta.require("global", "jobid")?;
        snap.meta.require("global", "nprocs")?;
        Ok(snap)
    }

    /// Directory of this reference.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The job this snapshot belongs to.
    pub fn job(&self) -> JobId {
        JobId(self
            .meta
            .get_parsed("global", "jobid")
            .expect("validated on open"))
    }

    /// Number of ranks in the job.
    pub fn nprocs(&self) -> u32 {
        self.meta
            .get_parsed("global", "nprocs")
            .expect("validated on open")
    }

    /// Committed intervals, ascending.
    pub fn intervals(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .meta
            .get_all("global", "interval")
            .into_iter()
            .filter_map(|s| s.parse().ok())
            .collect();
        v.sort_unstable();
        v
    }

    /// Most recent committed interval.
    pub fn latest_interval(&self) -> Option<u64> {
        self.intervals().into_iter().max()
    }

    /// Directory of one interval's local snapshots.
    pub fn interval_dir(&self, interval: u64) -> PathBuf {
        self.dir.join(interval.to_string())
    }

    /// Start a new interval: allocates the next number (monotone past both
    /// committed intervals and any the job was restored from) and creates
    /// its directory. The interval is invisible to readers until
    /// [`GlobalSnapshot::commit_interval`] runs — a crash mid-checkpoint
    /// must never leave a half-written interval looking restorable.
    pub fn begin_interval(&mut self) -> Result<(u64, PathBuf), CrError> {
        // Number past locally committed intervals too: with early release a
        // new interval can begin while the previous one's gather is still
        // in flight, and the two must never collide.
        let next = self
            .intervals()
            .into_iter()
            .chain(self.local_committed_intervals())
            .max()
            .map(|n| n + 1)
            .unwrap_or_else(|| self.resume_floor());
        let dir = self.interval_dir(next);
        fs::create_dir_all(&dir).map_err(|e| CrError::io(dir.display().to_string(), &e))?;
        Ok((next, dir))
    }

    /// Record that a restarted job resumed from interval `n` of another
    /// snapshot: future intervals number from `n + 1`.
    pub fn set_resume_floor(&mut self, resumed_from: u64) -> Result<(), CrError> {
        self.meta
            .set("global", "resume_floor", (resumed_from + 1).to_string());
        self.save_meta()
    }

    fn resume_floor(&self) -> u64 {
        self.meta.get_parsed("global", "resume_floor").unwrap_or(0)
    }

    /// Commit an interval: record each rank's local reference and hostname
    /// in the metadata and persist it. Only committed intervals are
    /// restorable.
    pub fn commit_interval(
        &mut self,
        interval: u64,
        ranks: &[(Rank, String)],
    ) -> Result<(), CrError> {
        let section = format!("interval_{interval}");
        for (rank, hostname) in ranks {
            self.meta
                .append(&section, &format!("rank_{}_ref", rank.0), local_dir_name(*rank));
            self.meta
                .append(&section, &format!("rank_{}_host", rank.0), hostname.clone());
        }
        self.meta.append("global", "interval", interval.to_string());
        self.save_meta()
    }

    /// Locally commit an interval: record each rank's local reference and
    /// hostname exactly as [`GlobalSnapshot::commit_interval`] would, but
    /// list the interval as *locally* committed only. It stays invisible
    /// to restart-facing accessors until
    /// [`GlobalSnapshot::promote_interval`] marks the gather complete; a
    /// failure mid-gather therefore falls back to the newest globally
    /// committed interval.
    pub fn local_commit_interval(
        &mut self,
        interval: u64,
        ranks: &[(Rank, String)],
    ) -> Result<(), CrError> {
        let section = format!("interval_{interval}");
        for (rank, hostname) in ranks {
            self.meta
                .append(&section, &format!("rank_{}_ref", rank.0), local_dir_name(*rank));
            self.meta
                .append(&section, &format!("rank_{}_host", rank.0), hostname.clone());
        }
        self.meta
            .append("global", "local_interval", interval.to_string());
        self.save_meta()
    }

    /// Promote a locally committed interval to globally committed, once
    /// its gather has fully landed on stable storage.
    pub fn promote_interval(&mut self, interval: u64) -> Result<(), CrError> {
        if !self.local_committed_intervals().contains(&interval) {
            return Err(CrError::BadSnapshot {
                detail: format!(
                    "cannot promote interval {interval}: it was never locally committed"
                ),
            });
        }
        self.meta
            .remove_value("global", "local_interval", &interval.to_string());
        self.meta.append("global", "interval", interval.to_string());
        self.save_meta()
    }

    /// Intervals recorded as locally committed but not yet promoted,
    /// ascending.
    pub fn local_committed_intervals(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .meta
            .get_all("global", "local_interval")
            .into_iter()
            .filter_map(|s| s.parse().ok())
            .collect();
        v.sort_unstable();
        v
    }

    /// Commit progress of `interval` (see [`CommitState`]).
    pub fn commit_state(&self, interval: u64) -> CommitState {
        if self.intervals().contains(&interval) {
            CommitState::GlobalCommitted
        } else if self.local_committed_intervals().contains(&interval) {
            CommitState::LocalCommitted
        } else {
            CommitState::Uncommitted
        }
    }

    /// Record which nodes hold in-memory replicas of each rank's image for
    /// `interval` (the FILEM `replica` component's location metadata).
    ///
    /// `holders` maps each rank to the node ids whose daemons accepted a
    /// copy, primary first. Restart consults this section to try
    /// peer-memory recovery before falling back to stable storage;
    /// snapshots written without the replica component simply lack the
    /// section and restart goes straight to disk.
    pub fn record_replica_holders(
        &mut self,
        interval: u64,
        holders: &[(Rank, Vec<u32>)],
    ) -> Result<(), CrError> {
        let section = format!("replica_{interval}");
        for (rank, nodes) in holders {
            let list = nodes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",");
            self.meta
                .set(&section, &format!("rank_{}_nodes", rank.0), list);
        }
        self.save_meta()
    }

    /// Nodes recorded as holding in-memory replicas of `rank`'s image for
    /// `interval`, primary first. Empty when the snapshot was gathered
    /// without the replica component.
    pub fn replica_holders(&self, interval: u64, rank: Rank) -> Vec<u32> {
        self.meta
            .get(&format!("replica_{interval}"), &format!("rank_{}_nodes", rank.0))
            .map(|list| list.split(',').filter_map(|n| n.parse().ok()).collect())
            .unwrap_or_default()
    }

    /// Record each rank's rendered chunk manifest for a dedup interval
    /// (the `filem_dedup_enabled` commit path).  The manifest maps the
    /// rank's image sections to content-addressed chunk ids in the global
    /// reference's chunk store; restart fetches those chunks directly
    /// instead of walking a base→delta chain.
    ///
    /// This record is the store's *liveness root*: the commit path takes
    /// chunk references before recording it, and
    /// [`GlobalSnapshot::retire_interval`] drops it before the references
    /// are released, so the refcount GC can never sweep a chunk a live
    /// manifest still names.
    pub fn record_chunk_manifests(
        &mut self,
        interval: u64,
        manifests: &[(Rank, String)],
    ) -> Result<(), CrError> {
        let section = format!("manifest_{interval}");
        for (rank, manifest) in manifests {
            self.meta
                .set(&section, &format!("rank_{}", rank.0), manifest.clone());
        }
        self.save_meta()
    }

    /// Rendered chunk manifest of `rank` at `interval`, when the interval
    /// was committed through the dedup chunk store. `None` for classic
    /// (full/delta-chain) intervals — restart uses this to pick its path.
    pub fn chunk_manifest(&self, interval: u64, rank: Rank) -> Option<&str> {
        self.meta
            .get(&format!("manifest_{interval}"), &format!("rank_{}", rank.0))
    }

    /// Every rank's chunk manifest at `interval`, rank-ascending. Empty
    /// for non-dedup intervals.
    pub fn chunk_manifests(&self, interval: u64) -> Vec<(Rank, &str)> {
        (0..self.nprocs())
            .filter_map(|r| self.chunk_manifest(interval, Rank(r)).map(|m| (Rank(r), m)))
            .collect()
    }

    /// Record the runtime's spare-node pool (`orte_spare_nodes`): the node
    /// ids held out of placement for partial restart. Job-level, not
    /// per-interval — the pool is fixed at launch. Snapshots taken with no
    /// spares simply lack the key.
    pub fn record_spare_pool(&mut self, nodes: &[u32]) -> Result<(), CrError> {
        let list = nodes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.meta.set("global", "spare_nodes", list);
        self.save_meta()
    }

    /// Spare-node pool recorded at checkpoint time, ascending. Empty when
    /// the job ran without `orte_spare_nodes`.
    pub fn spare_pool(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .meta
            .get("global", "spare_nodes")
            .map(|list| list.split(',').filter_map(|n| n.parse().ok()).collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Record each rank's partial-restart message-log footprint at
    /// `interval` (entries retained by the `crcp_msg_log_enabled` sender
    /// log, in bytes), read from the containers after the gather commits.
    /// Ranks with an empty log are recorded too — the zero distinguishes
    /// "log enabled, nothing pending" from "log disabled" (absent
    /// section).
    pub fn record_msg_log_bytes(
        &mut self,
        interval: u64,
        per_rank: &[(Rank, u64)],
    ) -> Result<(), CrError> {
        let section = format!("msglog_{interval}");
        for (rank, bytes) in per_rank {
            self.meta
                .set(&section, &format!("rank_{}", rank.0), bytes.to_string());
        }
        self.save_meta()
    }

    /// Per-rank message-log bytes recorded for `interval`, rank-ascending.
    /// Empty when the interval was taken without the message log.
    pub fn msg_log_bytes(&self, interval: u64) -> Vec<(Rank, u64)> {
        let section = format!("msglog_{interval}");
        (0..self.nprocs())
            .filter_map(|r| {
                self.meta
                    .get(&section, &format!("rank_{r}"))
                    .and_then(|s| s.parse().ok())
                    .map(|b| (Rank(r), b))
            })
            .collect()
    }

    /// Record the rendered gather-schedule stats line for `interval`
    /// (policy, wave count, peak link concurrency, wall clock, per-link
    /// bytes — see `orte::sched::GatherSchedStats::render`), so
    /// `ompi-snapshot-info` can show how the gather was scheduled.
    pub fn record_gather_stats(&mut self, interval: u64, rendered: &str) -> Result<(), CrError> {
        self.meta
            .set(&format!("gather_{interval}"), "stats", rendered.to_string());
        self.save_meta()
    }

    /// The gather-schedule stats line recorded for `interval`, if the
    /// interval was committed through the scheduled gather path.
    pub fn gather_stats(&self, interval: u64) -> Option<&str> {
        self.meta.get(&format!("gather_{interval}"), "stats")
    }

    /// Record each rank's incremental-chain links for `interval`: what
    /// kind of context it wrote (`full`/`delta`) and, for deltas, the
    /// interval of the chain's full base and of the immediate predecessor.
    ///
    /// Ranks that wrote full images are not recorded — an absent entry
    /// means full, which keeps snapshots taken with incremental mode off
    /// byte-identical to the pre-incremental format.
    pub fn record_ckpt_chain(
        &mut self,
        interval: u64,
        entries: &[(Rank, &str, u64, u64)],
    ) -> Result<(), CrError> {
        let section = format!("incr_{interval}");
        let mut dirty = false;
        for (rank, kind, base, prev) in entries {
            if *kind == "full" {
                continue;
            }
            self.meta
                .set(&section, &format!("rank_{}_kind", rank.0), kind.to_string());
            self.meta
                .set(&section, &format!("rank_{}_base", rank.0), base.to_string());
            self.meta
                .set(&section, &format!("rank_{}_prev", rank.0), prev.to_string());
            dirty = true;
        }
        if dirty {
            self.save_meta()
        } else {
            Ok(())
        }
    }

    /// Context kind rank `rank` wrote at `interval`: `"delta"` when the
    /// chain metadata says so, `"full"` otherwise (including snapshots
    /// that predate incremental checkpointing).
    pub fn ckpt_kind(&self, interval: u64, rank: Rank) -> &str {
        self.meta
            .get(&format!("incr_{interval}"), &format!("rank_{}_kind", rank.0))
            .unwrap_or("full")
    }

    /// Intervals needed to restore `rank` at `interval`, oldest (the full
    /// base) first and `interval` itself last. A rank that wrote a full
    /// image has the single-element chain `[interval]`. Errors on a
    /// corrupt chain (missing or non-decreasing predecessor links).
    pub fn ckpt_chain(&self, interval: u64, rank: Rank) -> Result<Vec<u64>, CrError> {
        let mut chain = vec![interval];
        let mut cur = interval;
        while self.ckpt_kind(cur, rank) == "delta" {
            let prev = self
                .meta
                .get(&format!("incr_{cur}"), &format!("rank_{}_prev", rank.0))
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| CrError::BadSnapshot {
                    detail: format!(
                        "interval {cur} rank {rank} is a delta with no predecessor link"
                    ),
                })?;
            if prev >= cur {
                return Err(CrError::BadSnapshot {
                    detail: format!(
                        "corrupt delta chain at rank {rank}: interval {cur} links to \
                         {prev}, which is not older"
                    ),
                });
            }
            chain.push(prev);
            cur = prev;
        }
        chain.reverse();
        Ok(chain)
    }

    /// Retire a committed interval: delete its on-disk directory and drop
    /// its metadata (interval listing, per-rank references, replica
    /// locations, chain links). Used to expire superseded checkpoints.
    ///
    /// Refused when a newer committed interval's delta chain still passes
    /// through `interval` — retiring the base (or any mid-chain link)
    /// would leave those deltas unrestorable. Retire the dependents first,
    /// newest-to-oldest, or wait for the next full interval.
    pub fn retire_interval(&mut self, interval: u64) -> Result<(), CrError> {
        for other in self.intervals() {
            if other <= interval {
                continue; // chains only reference older intervals
            }
            for r in 0..self.nprocs() {
                if self.ckpt_chain(other, Rank(r))?.contains(&interval) {
                    return Err(CrError::BadSnapshot {
                        detail: format!(
                            "cannot retire interval {interval}: rank {r}'s delta chain \
                             for interval {other} still depends on it"
                        ),
                    });
                }
            }
        }
        let dir = self.interval_dir(interval);
        if dir.exists() {
            fs::remove_dir_all(&dir).map_err(|e| CrError::io(dir.display().to_string(), &e))?;
        }
        self.meta
            .remove_value("global", "interval", &interval.to_string());
        self.meta
            .remove_value("global", "local_interval", &interval.to_string());
        self.meta.remove_section(&format!("interval_{interval}"));
        self.meta.remove_section(&format!("replica_{interval}"));
        self.meta.remove_section(&format!("incr_{interval}"));
        self.meta.remove_section(&format!("gather_{interval}"));
        self.meta.remove_section(&format!("msglog_{interval}"));
        // Dedup GC ordering: this persists the manifest removal *before*
        // the caller decrefs and sweeps the interval's chunks (see the
        // `gc` model) — a crash here leaks references, never dangles them.
        self.meta.remove_section(&format!("manifest_{interval}"));
        self.save_meta()
    }

    /// Store the original launch parameters (MCA dump) so restart needs no
    /// user-supplied configuration.
    pub fn record_launch_params<'a>(
        &mut self,
        params: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<(), CrError> {
        for (k, v) in params {
            self.meta.set("launch", k, v);
        }
        self.save_meta()
    }

    /// Launch parameters recorded at checkpoint time.
    pub fn launch_params(&self) -> Vec<(String, String)> {
        self.meta
            .sections()
            .iter()
            .filter(|s| s.name() == "launch")
            .flat_map(|s| s.entries().iter().cloned())
            .collect()
    }

    /// Hostname rank `rank` ran on in `interval` (its "last known" home).
    pub fn rank_hostname(&self, interval: u64, rank: Rank) -> Option<&str> {
        self.meta
            .get(&format!("interval_{interval}"), &format!("rank_{}_host", rank.0))
    }

    /// Open one rank's local snapshot within `interval`.
    pub fn local_snapshot(&self, interval: u64, rank: Rank) -> Result<LocalSnapshot, CrError> {
        let section = format!("interval_{interval}");
        let key = format!("rank_{}_ref", rank.0);
        let rel = self.meta.get(&section, &key).ok_or(CrError::BadSnapshot {
            detail: format!("interval {interval} has no local reference for rank {rank}"),
        })?;
        LocalSnapshot::open(&self.interval_dir(interval).join(rel))
    }

    /// Open every rank's local snapshot within `interval`, rank order.
    pub fn local_snapshots(&self, interval: u64) -> Result<Vec<LocalSnapshot>, CrError> {
        if !self.intervals().contains(&interval) {
            return Err(CrError::BadSnapshot {
                detail: format!("interval {interval} was never committed"),
            });
        }
        (0..self.nprocs())
            .map(|r| self.local_snapshot(interval, Rank(r)))
            .collect()
    }

    /// Total on-disk footprint of one interval, in bytes.
    pub fn interval_size_bytes(&self, interval: u64) -> Result<u64, CrError> {
        self.local_snapshots(interval)?
            .iter()
            .map(|l| l.size_bytes())
            .sum()
    }

    fn save_meta(&self) -> Result<(), CrError> {
        write_meta(&self.dir.join(GLOBAL_META_FILE), &self.meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cr_core_snap_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn local_snapshot_lifecycle() {
        let base = tmpdir("local");
        let mut snap =
            LocalSnapshot::create(&base, Rank(3), "blcr_sim", 2, "node01").unwrap();
        snap.write_context(b"image bytes").unwrap();
        snap.set_param("app_phase", "42").unwrap();

        let reopened = LocalSnapshot::open(snap.dir()).unwrap();
        assert_eq!(reopened.rank(), Rank(3));
        assert_eq!(reopened.crs_component(), "blcr_sim");
        assert_eq!(reopened.interval(), 2);
        assert_eq!(reopened.hostname(), Some("node01"));
        assert_eq!(reopened.param("app_phase"), Some("42"));
        assert_eq!(reopened.read_context().unwrap(), b"image bytes");
        assert!(reopened.size_bytes().unwrap() > 0);
    }

    #[test]
    fn local_open_rejects_non_snapshot_dir() {
        let base = tmpdir("notasnap");
        let err = LocalSnapshot::open(&base).unwrap_err();
        assert!(err.to_string().contains("snapshot_meta.data"));
    }

    #[test]
    fn corrupted_context_detected() {
        let base = tmpdir("corrupt");
        let snap = LocalSnapshot::create(&base, Rank(0), "self", 0, "node00").unwrap();
        snap.write_context(b"pristine state").unwrap();
        // Flip a byte in the stored context file.
        let path = snap.context_path();
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        fs::write(&path, raw).unwrap();
        assert!(matches!(
            snap.read_context(),
            Err(CrError::Codec(codec::Error::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn global_snapshot_lifecycle() {
        let base = tmpdir("global");
        let mut global = GlobalSnapshot::create(&base, JobId(9), 2).unwrap();
        global
            .record_launch_params([("crs", "blcr_sim"), ("np", "2")])
            .unwrap();

        let (interval, dir) = global.begin_interval().unwrap();
        assert_eq!(interval, 0);
        for r in 0..2 {
            let local =
                LocalSnapshot::create(&dir, Rank(r), "blcr_sim", interval, "node00").unwrap();
            local.write_context(format!("rank {r}").as_bytes()).unwrap();
        }
        global
            .commit_interval(interval, &[(Rank(0), "node00".into()), (Rank(1), "node00".into())])
            .unwrap();

        let reopened = GlobalSnapshot::open(global.dir()).unwrap();
        assert_eq!(reopened.job(), JobId(9));
        assert_eq!(reopened.nprocs(), 2);
        assert_eq!(reopened.intervals(), vec![0]);
        assert_eq!(reopened.latest_interval(), Some(0));
        let locals = reopened.local_snapshots(0).unwrap();
        assert_eq!(locals.len(), 2);
        assert_eq!(locals[1].read_context().unwrap(), b"rank 1");
        assert_eq!(reopened.rank_hostname(0, Rank(1)), Some("node00"));
        let params = reopened.launch_params();
        assert!(params.contains(&("crs".to_string(), "blcr_sim".to_string())));
        assert!(reopened.interval_size_bytes(0).unwrap() > 0);
    }

    #[test]
    fn intervals_are_monotone() {
        let base = tmpdir("intervals");
        let mut global = GlobalSnapshot::create(&base, JobId(1), 1).unwrap();
        for expected in 0..3 {
            let (interval, dir) = global.begin_interval().unwrap();
            assert_eq!(interval, expected);
            LocalSnapshot::create(&dir, Rank(0), "self", interval, "node00").unwrap();
            global
                .commit_interval(interval, &[(Rank(0), "node00".into())])
                .unwrap();
        }
        assert_eq!(global.intervals(), vec![0, 1, 2]);
    }

    #[test]
    fn uncommitted_interval_is_invisible() {
        let base = tmpdir("uncommitted");
        let mut global = GlobalSnapshot::create(&base, JobId(1), 1).unwrap();
        let (interval, _dir) = global.begin_interval().unwrap();
        // Crash before commit: reopening must not list the interval.
        let reopened = GlobalSnapshot::open(global.dir()).unwrap();
        assert!(reopened.intervals().is_empty());
        assert!(reopened.local_snapshots(interval).is_err());
    }

    #[test]
    fn resume_floor_continues_numbering() {
        let base = tmpdir("resume");
        let mut global = GlobalSnapshot::create(&base, JobId(2), 1).unwrap();
        global.set_resume_floor(4).unwrap();
        let (interval, _) = global.begin_interval().unwrap();
        assert_eq!(interval, 5, "restart resumes numbering past interval 4");
    }

    #[test]
    fn missing_rank_reference_reported() {
        let base = tmpdir("missingrank");
        let mut global = GlobalSnapshot::create(&base, JobId(3), 2).unwrap();
        let (interval, dir) = global.begin_interval().unwrap();
        // Only rank 0 written and committed; rank 1 forgotten.
        LocalSnapshot::create(&dir, Rank(0), "self", interval, "node00").unwrap();
        global
            .commit_interval(interval, &[(Rank(0), "node00".into())])
            .unwrap();
        let err = global.local_snapshots(interval).unwrap_err();
        assert!(err.to_string().contains("rank 1"));
    }

    #[test]
    fn replica_holders_roundtrip_and_retire() {
        let base = tmpdir("replicas");
        let mut global = GlobalSnapshot::create(&base, JobId(5), 2).unwrap();
        for _ in 0..2 {
            let (interval, dir) = global.begin_interval().unwrap();
            for r in 0..2 {
                LocalSnapshot::create(&dir, Rank(r), "self", interval, "node00").unwrap();
            }
            global
                .commit_interval(
                    interval,
                    &[(Rank(0), "node00".into()), (Rank(1), "node01".into())],
                )
                .unwrap();
            global
                .record_replica_holders(
                    interval,
                    &[(Rank(0), vec![0, 1]), (Rank(1), vec![1, 0])],
                )
                .unwrap();
        }
        let reopened = GlobalSnapshot::open(global.dir()).unwrap();
        assert_eq!(reopened.replica_holders(0, Rank(0)), vec![0, 1]);
        assert_eq!(reopened.replica_holders(1, Rank(1)), vec![1, 0]);
        // Unknown interval or pre-replica snapshot: empty, not an error.
        assert!(reopened.replica_holders(7, Rank(0)).is_empty());

        let mut global = reopened;
        global.retire_interval(0).unwrap();
        assert_eq!(global.intervals(), vec![1]);
        assert!(!global.interval_dir(0).exists());
        assert!(global.replica_holders(0, Rank(0)).is_empty());
        assert!(global.local_snapshots(0).is_err());
        // Interval 1 untouched.
        assert_eq!(global.local_snapshots(1).unwrap().len(), 2);
        assert_eq!(global.replica_holders(1, Rank(0)), vec![0, 1]);
    }

    /// Commit `intervals` empty committed intervals on a fresh global.
    fn committed_global(tag: &str, nprocs: u32, intervals: u64) -> GlobalSnapshot {
        let base = tmpdir(tag);
        let mut global = GlobalSnapshot::create(&base, JobId(11), nprocs).unwrap();
        for _ in 0..intervals {
            let (interval, dir) = global.begin_interval().unwrap();
            for r in 0..nprocs {
                LocalSnapshot::create(&dir, Rank(r), "self", interval, "node00").unwrap();
            }
            let info: Vec<(Rank, String)> =
                (0..nprocs).map(|r| (Rank(r), "node00".into())).collect();
            global.commit_interval(interval, &info).unwrap();
        }
        global
    }

    #[test]
    fn ckpt_chain_defaults_to_full_and_walks_deltas() {
        let mut global = committed_global("chain", 2, 4);
        // Rank 0: full at 0, deltas at 1..=3. Rank 1: all full (no entry).
        global
            .record_ckpt_chain(1, &[(Rank(0), "delta", 0, 0), (Rank(1), "full", 1, 1)])
            .unwrap();
        global.record_ckpt_chain(2, &[(Rank(0), "delta", 0, 1)]).unwrap();
        global.record_ckpt_chain(3, &[(Rank(0), "delta", 0, 2)]).unwrap();

        let reopened = GlobalSnapshot::open(global.dir()).unwrap();
        assert_eq!(reopened.ckpt_kind(3, Rank(0)), "delta");
        assert_eq!(reopened.ckpt_kind(3, Rank(1)), "full");
        assert_eq!(reopened.ckpt_chain(3, Rank(0)).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(reopened.ckpt_chain(2, Rank(0)).unwrap(), vec![0, 1, 2]);
        assert_eq!(reopened.ckpt_chain(3, Rank(1)).unwrap(), vec![3]);
        assert_eq!(reopened.ckpt_chain(0, Rank(0)).unwrap(), vec![0]);
    }

    #[test]
    fn retire_refuses_base_of_live_delta_chain() {
        let mut global = committed_global("retirechain", 1, 3);
        global.record_ckpt_chain(1, &[(Rank(0), "delta", 0, 0)]).unwrap();
        global.record_ckpt_chain(2, &[(Rank(0), "delta", 0, 1)]).unwrap();

        // Both the base and the mid-chain link are pinned.
        let err = global.retire_interval(0).unwrap_err();
        assert!(err.to_string().contains("delta chain"), "got: {err}");
        let err = global.retire_interval(1).unwrap_err();
        assert!(err.to_string().contains("depends on it"), "got: {err}");
        assert_eq!(global.intervals(), vec![0, 1, 2]);

        // Newest-first retirement unwinds cleanly and drops chain metadata.
        global.retire_interval(2).unwrap();
        global.retire_interval(1).unwrap();
        global.retire_interval(0).unwrap();
        assert!(global.intervals().is_empty());
        assert_eq!(global.ckpt_kind(2, Rank(0)), "full");
    }

    #[test]
    fn corrupt_chain_links_error_out() {
        let mut global = committed_global("corruptchain", 1, 2);
        // Delta pointing forward (not older) is corrupt.
        global.record_ckpt_chain(1, &[(Rank(0), "delta", 1, 1)]).unwrap();
        let err = global.ckpt_chain(1, Rank(0)).unwrap_err();
        assert!(err.to_string().contains("not older"), "got: {err}");
    }

    #[test]
    fn all_full_chain_recording_is_a_metadata_noop() {
        let mut global = committed_global("noopchain", 2, 1);
        let before = fs::read_to_string(global.dir().join(GLOBAL_META_FILE)).unwrap();
        global
            .record_ckpt_chain(0, &[(Rank(0), "full", 0, 0), (Rank(1), "full", 0, 0)])
            .unwrap();
        let after = fs::read_to_string(global.dir().join(GLOBAL_META_FILE)).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn chunk_manifests_roundtrip_and_die_with_retire() {
        let mut global = committed_global("manifests", 2, 2);
        global
            .record_chunk_manifests(
                1,
                &[(Rank(0), "v1 c4096|app=8:0.ab.8".into()), (Rank(1), "v1 c4096|app=8:0.ab.8".into())],
            )
            .unwrap();
        let reopened = GlobalSnapshot::open(global.dir()).unwrap();
        assert_eq!(reopened.chunk_manifest(1, Rank(0)), Some("v1 c4096|app=8:0.ab.8"));
        assert_eq!(reopened.chunk_manifests(1).len(), 2);
        // Classic intervals have no manifests.
        assert_eq!(reopened.chunk_manifest(0, Rank(0)), None);
        assert!(reopened.chunk_manifests(0).is_empty());

        let mut global = reopened;
        global.retire_interval(1).unwrap();
        assert_eq!(global.chunk_manifest(1, Rank(0)), None);
        let reopened = GlobalSnapshot::open(global.dir()).unwrap();
        assert!(reopened.chunk_manifests(1).is_empty());
    }

    #[test]
    fn spare_pool_and_msg_log_roundtrip_and_retire() {
        let mut global = committed_global("partialmeta", 2, 2);
        global.record_spare_pool(&[4, 3]).unwrap();
        global
            .record_msg_log_bytes(1, &[(Rank(0), 1024), (Rank(1), 0)])
            .unwrap();
        let reopened = GlobalSnapshot::open(global.dir()).unwrap();
        assert_eq!(reopened.spare_pool(), vec![3, 4]);
        assert_eq!(reopened.msg_log_bytes(1), vec![(Rank(0), 1024), (Rank(1), 0)]);
        // Pre-message-log intervals and pre-spare snapshots: empty.
        assert!(reopened.msg_log_bytes(0).is_empty());
        // The per-interval log record dies with its interval; the pool is
        // job-level and survives.
        let mut global = reopened;
        global.retire_interval(1).unwrap();
        assert!(global.msg_log_bytes(1).is_empty());
        assert_eq!(global.spare_pool(), vec![3, 4]);
    }

    #[test]
    fn commit_state_lattice_orders() {
        assert!(CommitState::Uncommitted < CommitState::LocalCommitted);
        assert!(CommitState::LocalCommitted < CommitState::GlobalCommitted);
        assert_eq!(CommitState::LocalCommitted.to_string(), "local-committed");
    }

    #[test]
    fn local_commit_is_invisible_until_promoted() {
        let base = tmpdir("localcommit");
        let mut global = GlobalSnapshot::create(&base, JobId(6), 1).unwrap();
        let (interval, dir) = global.begin_interval().unwrap();
        assert_eq!(global.commit_state(interval), CommitState::Uncommitted);
        LocalSnapshot::create(&dir, Rank(0), "self", interval, "node00").unwrap();
        global
            .local_commit_interval(interval, &[(Rank(0), "node00".into())])
            .unwrap();

        // Locally committed: recorded, but no restart-facing accessor
        // may surface it.
        let reopened = GlobalSnapshot::open(global.dir()).unwrap();
        assert_eq!(reopened.commit_state(interval), CommitState::LocalCommitted);
        assert_eq!(reopened.local_committed_intervals(), vec![interval]);
        assert!(reopened.intervals().is_empty());
        assert_eq!(reopened.latest_interval(), None);
        assert!(reopened.local_snapshots(interval).is_err());

        let mut global = reopened;
        global.promote_interval(interval).unwrap();
        assert_eq!(global.commit_state(interval), CommitState::GlobalCommitted);
        assert!(global.local_committed_intervals().is_empty());
        assert_eq!(global.intervals(), vec![interval]);
        assert_eq!(global.local_snapshots(interval).unwrap().len(), 1);
        // Per-rank metadata is identical to a direct commit's.
        assert_eq!(global.rank_hostname(interval, Rank(0)), Some("node00"));
    }

    #[test]
    fn promote_requires_prior_local_commit() {
        let base = tmpdir("promotebad");
        let mut global = GlobalSnapshot::create(&base, JobId(6), 1).unwrap();
        let (interval, _dir) = global.begin_interval().unwrap();
        let err = global.promote_interval(interval).unwrap_err();
        assert!(err.to_string().contains("never locally committed"));
    }

    #[test]
    fn begin_interval_numbers_past_local_commits() {
        let base = tmpdir("numbering");
        let mut global = GlobalSnapshot::create(&base, JobId(6), 1).unwrap();
        let (i0, d0) = global.begin_interval().unwrap();
        LocalSnapshot::create(&d0, Rank(0), "self", i0, "node00").unwrap();
        global
            .local_commit_interval(i0, &[(Rank(0), "node00".into())])
            .unwrap();
        // Gather for i0 still in flight; a new interval must not collide.
        let (i1, _d1) = global.begin_interval().unwrap();
        assert_eq!(i1, i0 + 1);
    }

    #[test]
    fn retire_drops_local_commit_record() {
        let base = tmpdir("retirelocal");
        let mut global = GlobalSnapshot::create(&base, JobId(6), 1).unwrap();
        let (interval, dir) = global.begin_interval().unwrap();
        LocalSnapshot::create(&dir, Rank(0), "self", interval, "node00").unwrap();
        global
            .local_commit_interval(interval, &[(Rank(0), "node00".into())])
            .unwrap();
        global.retire_interval(interval).unwrap();
        assert_eq!(global.commit_state(interval), CommitState::Uncommitted);
        assert!(global.local_committed_intervals().is_empty());
    }

    #[test]
    fn dir_names_match_open_mpi_convention() {
        assert_eq!(global_dir_name(JobId(42)), "ompi_global_snapshot_42.ckpt");
        assert_eq!(local_dir_name(Rank(7)), "opal_snapshot_7.ckpt");
    }
}
