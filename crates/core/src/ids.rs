//! Job and process naming shared by every layer.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one parallel job (an `mpirun` invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// MPI rank within `MPI_COMM_WORLD` (ORTE calls this the vpid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl Rank {
    /// Rank as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Fully qualified process name: job plus rank (ORTE process name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessName {
    /// Owning job.
    pub job: JobId,
    /// Rank within the job.
    pub rank: Rank,
}

impl ProcessName {
    /// Construct from raw parts.
    pub fn new(job: JobId, rank: Rank) -> Self {
        ProcessName { job, rank }
    }
}

impl fmt::Display for ProcessName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.job, self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let name = ProcessName::new(JobId(7), Rank(3));
        assert_eq!(name.to_string(), "[job7,3]");
        assert_eq!(JobId(7).to_string(), "job7");
        assert_eq!(Rank(3).to_string(), "3");
        assert_eq!(Rank(3).index(), 3);
    }

    #[test]
    fn ordering_is_job_then_rank() {
        let a = ProcessName::new(JobId(1), Rank(9));
        let b = ProcessName::new(JobId(2), Rank(0));
        assert!(a < b);
    }

    #[test]
    fn serde_roundtrip() {
        let name = ProcessName::new(JobId(4), Rank(2));
        let bytes = codec::to_bytes(&name).unwrap();
        let back: ProcessName = codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, name);
    }
}
