//! Thread-safe event tracer.
//!
//! The paper's Figures 1 and 2 are *orderings*: which coordinator talks to
//! which, and in what sequence the INC stack fires. Tests reproduce those
//! figures by recording named events through a [`Tracer`] and asserting on
//! the sequence; benchmarks use the same records to attribute time to
//! checkpoint phases.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (global across threads for one tracer).
    pub seq: u64,
    /// Who recorded the event — a rank (`rank3`) or node (`node01`) label
    /// set via [`Tracer::with_actor`], or empty for runtime-level events.
    pub actor: String,
    /// Dot-separated phase name, e.g. `snapc.global.request`.
    pub phase: String,
    /// Free-form detail.
    pub detail: String,
    /// Nanoseconds since the tracer was created.
    pub elapsed_ns: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.actor.is_empty() {
            write!(f, "#{:<4} {:<40} {}", self.seq, self.phase, self.detail)
        } else {
            write!(
                f,
                "#{:<4} {:<8} {:<40} {}",
                self.seq, self.actor, self.phase, self.detail
            )
        }
    }
}

/// Destination every recorded event is forwarded to, in record order.
///
/// The durable FT event journal (`crates/journal`) implements this to
/// capture every existing `Tracer::record` call-site without rewriting
/// them.  `append` is invoked while the tracer's event lock is held, so
/// sink appends observe exactly the tracer's sequence order; a sink must
/// therefore never call back into the tracer.
pub trait TraceSink: Send + Sync {
    /// Persist one event.  Must not panic and must not record through the
    /// tracer that delivered the event.
    fn append(&self, event: &TraceEvent);
}

struct Inner {
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
    sink: Mutex<Option<Arc<dyn TraceSink>>>,
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inner")
            .field("events", &self.events.lock().len())
            .field("sink", &self.sink.lock().is_some())
            .finish()
    }
}

/// Cheap-to-clone shared event recorder.
///
/// # Examples
///
/// ```
/// use cr_core::Tracer;
///
/// let tracer = Tracer::new();
/// tracer.record("snapc.global.request", "interval 0");
/// tracer.record("snapc.local.initiate", "node00");
/// tracer.assert_order("snapc.global.request", "snapc.local.initiate");
/// assert_eq!(tracer.count_prefix("snapc."), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
    /// Attribution label stamped on events recorded through this handle.
    actor: Option<Arc<str>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Fresh tracer with an empty event list.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Inner {
                start: Instant::now(),
                events: Mutex::new(Vec::new()),
                sink: Mutex::new(None),
            }),
            actor: None,
        }
    }

    /// A handle sharing this tracer's event list and sink, whose records
    /// carry `actor` as their attribution label (e.g. `rank3`, `node01`).
    pub fn with_actor(&self, actor: &str) -> Tracer {
        Tracer {
            inner: Arc::clone(&self.inner),
            actor: Some(Arc::from(actor)),
        }
    }

    /// The attribution label of this handle, if any.
    pub fn actor(&self) -> Option<&str> {
        self.actor.as_deref()
    }

    /// Route every subsequent record through `sink` (in addition to the
    /// in-memory event list).  Replaces any previous sink.
    pub fn set_sink(&self, sink: Arc<dyn TraceSink>) {
        *self.inner.sink.lock() = Some(sink);
    }

    /// Detach and return the current sink, if any.
    pub fn clear_sink(&self) -> Option<Arc<dyn TraceSink>> {
        self.inner.sink.lock().take()
    }

    /// True when a sink is attached.
    pub fn has_sink(&self) -> bool {
        self.inner.sink.lock().is_some()
    }

    /// Record an event.
    pub fn record(&self, phase: &str, detail: &str) {
        let mut events = self.inner.events.lock();
        let seq = events.len() as u64;
        let event = TraceEvent {
            seq,
            actor: self.actor.as_deref().unwrap_or("").to_string(),
            phase: phase.to_string(),
            detail: detail.to_string(),
            elapsed_ns: self.inner.start.elapsed().as_nanos() as u64,
        };
        // Forwarded under the event lock so the sink observes the exact
        // global record order (the journal's hash chain depends on it).
        if let Some(sink) = self.inner.sink.lock().as_ref() {
            sink.append(&event);
        }
        events.push(event);
    }

    /// Snapshot of all events so far, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().clone()
    }

    /// Phases only, in order (the common shape for ordering assertions).
    pub fn phases(&self) -> Vec<String> {
        self.inner
            .events
            .lock()
            .iter()
            .map(|e| e.phase.clone())
            .collect()
    }

    /// Sequence number of the first event whose phase equals `phase`.
    pub fn first_index_of(&self, phase: &str) -> Option<u64> {
        self.inner
            .events
            .lock()
            .iter()
            .find(|e| e.phase == phase)
            .map(|e| e.seq)
    }

    /// Assert that `earlier` occurs (first) before `later` (first).
    ///
    /// # Panics
    /// Panics with a readable message when the ordering does not hold —
    /// this is a test helper.
    pub fn assert_order(&self, earlier: &str, later: &str) {
        let a = self
            .first_index_of(earlier)
            .unwrap_or_else(|| panic!("phase {earlier:?} never recorded"));
        let b = self
            .first_index_of(later)
            .unwrap_or_else(|| panic!("phase {later:?} never recorded"));
        assert!(
            a < b,
            "expected {earlier:?} (#{a}) before {later:?} (#{b});\nfull trace:\n{}",
            self.render()
        );
    }

    /// Number of events whose phase starts with `prefix`.
    pub fn count_prefix(&self, prefix: &str) -> usize {
        self.inner
            .events
            .lock()
            .iter()
            .filter(|e| e.phase.starts_with(prefix))
            .count()
    }

    /// Discard all recorded events.
    pub fn clear(&self) {
        self.inner.events.lock().clear();
    }

    /// Render the whole trace, one event per line.
    pub fn render(&self) -> String {
        let events = self.inner.events.lock();
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_inspect() {
        let t = Tracer::new();
        t.record("a", "1");
        t.record("b", "2");
        t.record("a", "3");
        assert_eq!(t.phases(), vec!["a", "b", "a"]);
        assert_eq!(t.first_index_of("b"), Some(1));
        assert_eq!(t.first_index_of("zzz"), None);
        assert_eq!(t.count_prefix("a"), 2);
        let events = t.events();
        assert_eq!(events[2].detail, "3");
        assert_eq!(events[2].seq, 2);
    }

    #[test]
    fn order_assertion_passes_and_fails() {
        let t = Tracer::new();
        t.record("first", "");
        t.record("second", "");
        t.assert_order("first", "second");
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                t.assert_order("second", "first")
            }));
        assert!(result.is_err());
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::new();
        let t2 = t.clone();
        t2.record("x", "");
        assert_eq!(t.phases(), vec!["x"]);
        t.clear();
        assert!(t2.events().is_empty());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = Tracer::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        t.record(&format!("thread{i}"), &j.to_string());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.events().len(), 800);
        // Sequence numbers are unique and dense.
        let mut seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..800).collect::<Vec<u64>>());
    }

    #[test]
    fn render_contains_phases() {
        let t = Tracer::new();
        t.record("snapc.global.request", "ckpt");
        assert!(t.render().contains("snapc.global.request"));
    }

    #[test]
    fn actor_handles_share_the_event_list() {
        let t = Tracer::new();
        let r0 = t.with_actor("rank0");
        r0.record("a", "");
        t.record("b", "");
        let events = t.events();
        assert_eq!(events[0].actor, "rank0");
        assert_eq!(events[1].actor, "");
        assert_eq!(events[1].seq, 1);
        assert_eq!(r0.actor(), Some("rank0"));
        assert_eq!(t.actor(), None);
        assert!(r0.render().contains("rank0"));
    }

    struct VecSink(Mutex<Vec<TraceEvent>>);
    impl TraceSink for VecSink {
        fn append(&self, event: &TraceEvent) {
            self.0.lock().push(event.clone());
        }
    }

    #[test]
    fn sink_sees_every_record_in_order() {
        let t = Tracer::new();
        t.record("before", "not forwarded");
        let sink = Arc::new(VecSink(Mutex::new(Vec::new())));
        t.set_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        assert!(t.has_sink());
        let r1 = t.with_actor("rank1");
        r1.record("x", "1");
        t.record("y", "2");
        let captured = sink.0.lock().clone();
        assert_eq!(captured.len(), 2);
        assert_eq!(captured[0].phase, "x");
        assert_eq!(captured[0].actor, "rank1");
        assert_eq!(captured[0].seq, 1);
        assert_eq!(captured[1].seq, 2);
        assert!(t.clear_sink().is_some());
        t.record("z", "3");
        assert_eq!(sink.0.lock().len(), 2);
        assert!(!t.has_sink());
    }

    #[test]
    fn concurrent_sink_appends_match_tracer_order() {
        let t = Tracer::new();
        let sink = Arc::new(VecSink(Mutex::new(Vec::new())));
        t.set_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = t.with_actor(&format!("rank{i}"));
                std::thread::spawn(move || {
                    for j in 0..50 {
                        t.record(&format!("thread{i}"), &j.to_string());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let recorded = t.events();
        let captured = sink.0.lock().clone();
        assert_eq!(recorded, captured);
    }
}
