//! Thread-safe event tracer.
//!
//! The paper's Figures 1 and 2 are *orderings*: which coordinator talks to
//! which, and in what sequence the INC stack fires. Tests reproduce those
//! figures by recording named events through a [`Tracer`] and asserting on
//! the sequence; benchmarks use the same records to attribute time to
//! checkpoint phases.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (global across threads for one tracer).
    pub seq: u64,
    /// Dot-separated phase name, e.g. `snapc.global.request`.
    pub phase: String,
    /// Free-form detail.
    pub detail: String,
    /// Nanoseconds since the tracer was created.
    pub elapsed_ns: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<4} {:<40} {}", self.seq, self.phase, self.detail)
    }
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

/// Cheap-to-clone shared event recorder.
///
/// # Examples
///
/// ```
/// use cr_core::Tracer;
///
/// let tracer = Tracer::new();
/// tracer.record("snapc.global.request", "interval 0");
/// tracer.record("snapc.local.initiate", "node00");
/// tracer.assert_order("snapc.global.request", "snapc.local.initiate");
/// assert_eq!(tracer.count_prefix("snapc."), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Fresh tracer with an empty event list.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Inner {
                start: Instant::now(),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Record an event.
    pub fn record(&self, phase: &str, detail: &str) {
        let mut events = self.inner.events.lock();
        let seq = events.len() as u64;
        events.push(TraceEvent {
            seq,
            phase: phase.to_string(),
            detail: detail.to_string(),
            elapsed_ns: self.inner.start.elapsed().as_nanos() as u64,
        });
    }

    /// Snapshot of all events so far, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().clone()
    }

    /// Phases only, in order (the common shape for ordering assertions).
    pub fn phases(&self) -> Vec<String> {
        self.inner
            .events
            .lock()
            .iter()
            .map(|e| e.phase.clone())
            .collect()
    }

    /// Sequence number of the first event whose phase equals `phase`.
    pub fn first_index_of(&self, phase: &str) -> Option<u64> {
        self.inner
            .events
            .lock()
            .iter()
            .find(|e| e.phase == phase)
            .map(|e| e.seq)
    }

    /// Assert that `earlier` occurs (first) before `later` (first).
    ///
    /// # Panics
    /// Panics with a readable message when the ordering does not hold —
    /// this is a test helper.
    pub fn assert_order(&self, earlier: &str, later: &str) {
        let a = self
            .first_index_of(earlier)
            .unwrap_or_else(|| panic!("phase {earlier:?} never recorded"));
        let b = self
            .first_index_of(later)
            .unwrap_or_else(|| panic!("phase {later:?} never recorded"));
        assert!(
            a < b,
            "expected {earlier:?} (#{a}) before {later:?} (#{b});\nfull trace:\n{}",
            self.render()
        );
    }

    /// Number of events whose phase starts with `prefix`.
    pub fn count_prefix(&self, prefix: &str) -> usize {
        self.inner
            .events
            .lock()
            .iter()
            .filter(|e| e.phase.starts_with(prefix))
            .count()
    }

    /// Discard all recorded events.
    pub fn clear(&self) {
        self.inner.events.lock().clear();
    }

    /// Render the whole trace, one event per line.
    pub fn render(&self) -> String {
        let events = self.inner.events.lock();
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_inspect() {
        let t = Tracer::new();
        t.record("a", "1");
        t.record("b", "2");
        t.record("a", "3");
        assert_eq!(t.phases(), vec!["a", "b", "a"]);
        assert_eq!(t.first_index_of("b"), Some(1));
        assert_eq!(t.first_index_of("zzz"), None);
        assert_eq!(t.count_prefix("a"), 2);
        let events = t.events();
        assert_eq!(events[2].detail, "3");
        assert_eq!(events[2].seq, 2);
    }

    #[test]
    fn order_assertion_passes_and_fails() {
        let t = Tracer::new();
        t.record("first", "");
        t.record("second", "");
        t.assert_order("first", "second");
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                t.assert_order("second", "first")
            }));
        assert!(result.is_err());
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::new();
        let t2 = t.clone();
        t2.record("x", "");
        assert_eq!(t.phases(), vec!["x"]);
        t.clear();
        assert!(t2.events().is_empty());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = Tracer::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        t.record(&format!("thread{i}"), &j.to_string());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.events().len(), 800);
        // Sequence numbers are unique and dense.
        let mut seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..800).collect::<Vec<u64>>());
    }

    #[test]
    fn render_contains_phases() {
        let t = Tracer::new();
        t.record("snapc.global.request", "ckpt");
        assert!(t.render().contains("snapc.global.request"));
    }
}
