//! Common error type for checkpoint/restart operations.

use std::fmt;
use std::sync::Arc;

use crate::ids::Rank;
use crate::state::FtEventState;

/// Errors surfaced by checkpoint/restart operations across all layers.
#[derive(Debug, Clone)]
pub enum CrError {
    /// Checkpointing is currently disabled for this process (outside the
    /// `MPI_Init`..`MPI_Finalize` window, or inside a critical section).
    CheckpointDisabled {
        /// Human-readable reason the window is closed.
        reason: String,
    },
    /// One or more processes declared themselves non-checkpointable, so the
    /// whole request was refused without affecting any process (paper §5.1).
    NotCheckpointable {
        /// The ranks that refused.
        ranks: Vec<Rank>,
    },
    /// A subsystem's `ft_event` handler failed.
    FtEventFailed {
        /// Which subsystem failed.
        subsystem: String,
        /// The state being delivered when it failed.
        state: FtEventState,
        /// Failure detail.
        detail: String,
    },
    /// An I/O problem while reading or writing snapshot data.
    Io {
        /// Operation context (path or description).
        context: String,
        /// OS error string.
        detail: String,
    },
    /// Snapshot data failed to decode (corruption, version skew).
    Codec(codec::Error),
    /// A snapshot reference was structurally invalid.
    BadSnapshot {
        /// Description of what is wrong with the reference.
        detail: String,
    },
    /// The requested component/protocol cannot satisfy the request.
    Unsupported {
        /// Description of the unsupported operation.
        detail: String,
    },
    /// A peer process or daemon died or was unreachable mid-protocol.
    PeerLost {
        /// Description of which peer and during what.
        detail: String,
    },
    /// An internal invariant was violated (reported, not panicked, so a
    /// failed checkpoint never kills a healthy job).
    Protocol {
        /// Description of the violation.
        detail: String,
    },
}

impl CrError {
    /// Convenience constructor for I/O errors with a path context.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        CrError::Io {
            context: context.into(),
            detail: err.to_string(),
        }
    }

    /// Convenience constructor for protocol violations.
    pub fn protocol(detail: impl Into<String>) -> Self {
        CrError::Protocol {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrError::CheckpointDisabled { reason } => {
                write!(f, "checkpointing is disabled: {reason}")
            }
            CrError::NotCheckpointable { ranks } => {
                let list: Vec<String> = ranks.iter().map(|r| r.to_string()).collect();
                write!(
                    f,
                    "request refused: rank(s) {} are not checkpointable; no process was affected",
                    list.join(", ")
                )
            }
            CrError::FtEventFailed {
                subsystem,
                state,
                detail,
            } => write!(f, "{subsystem} ft_event({state}) failed: {detail}"),
            CrError::Io { context, detail } => write!(f, "I/O error ({context}): {detail}"),
            CrError::Codec(e) => write!(f, "snapshot decode error: {e}"),
            CrError::BadSnapshot { detail } => write!(f, "bad snapshot reference: {detail}"),
            CrError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
            CrError::PeerLost { detail } => write!(f, "peer lost: {detail}"),
            CrError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for CrError {}

impl From<codec::Error> for CrError {
    fn from(e: codec::Error) -> Self {
        CrError::Codec(e)
    }
}

/// Shared-ownership error wrapper so one failure can be reported to many
/// waiting parties (e.g. every local coordinator of a failed global request).
pub type SharedCrError = Arc<CrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_checkpointable_lists_ranks() {
        let e = CrError::NotCheckpointable {
            ranks: vec![Rank(1), Rank(3)],
        };
        let msg = e.to_string();
        assert!(msg.contains("1, 3"));
        assert!(msg.contains("no process was affected"));
    }

    #[test]
    fn io_constructor() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = CrError::io("/snap/meta", &ioe);
        let msg = e.to_string();
        assert!(msg.contains("/snap/meta"));
        assert!(msg.contains("gone"));
    }

    #[test]
    fn codec_error_converts() {
        let e: CrError = codec::Error::TrailingBytes { remaining: 3 }.into();
        assert!(e.to_string().contains("decode"));
    }

    #[test]
    fn ft_event_failure_names_subsystem_and_state() {
        let e = CrError::FtEventFailed {
            subsystem: "pml".into(),
            state: FtEventState::Checkpoint,
            detail: "busy".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("pml"));
        assert!(msg.contains("checkpoint"));
    }
}
