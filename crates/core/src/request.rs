//! Checkpoint request/outcome types shared by the API and the tools.

use std::fmt;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::snapshot::CommitState;

/// Who initiated a checkpoint request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointOrigin {
    /// Asynchronous: a command line tool / scheduler outside the job
    /// (`ompi-checkpoint`).
    Tool,
    /// Synchronous: an application rank called the checkpoint API.
    Application {
        /// The requesting rank.
        rank: u32,
    },
}

impl fmt::Display for CheckpointOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointOrigin::Tool => f.write_str("tool"),
            CheckpointOrigin::Application { rank } => write!(f, "rank {rank}"),
        }
    }
}

/// Options accompanying a checkpoint request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointOptions {
    /// Terminate the job once the global snapshot is on stable storage
    /// ("checkpoint and terminate" — used before scheduled maintenance).
    pub terminate: bool,
    /// Who asked.
    pub origin: CheckpointOrigin,
}

impl Default for CheckpointOptions {
    fn default() -> Self {
        CheckpointOptions {
            terminate: false,
            origin: CheckpointOrigin::Tool,
        }
    }
}

impl CheckpointOptions {
    /// Tool-initiated request with default flags.
    pub fn tool() -> Self {
        Self::default()
    }

    /// Application-initiated (synchronous) request from `rank`.
    pub fn from_rank(rank: u32) -> Self {
        CheckpointOptions {
            terminate: false,
            origin: CheckpointOrigin::Application { rank },
        }
    }

    /// Request checkpoint-and-terminate.
    pub fn and_terminate(mut self) -> Self {
        self.terminate = true;
        self
    }
}

/// Cost and commit bookkeeping of one checkpoint request, grouped out of
/// [`CheckpointOutcome`] so new metrics stop accreting as flat fields.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptStats {
    /// Context-file bytes the gather phase actually moved off the compute
    /// nodes. With incremental checkpointing this is the delta payload;
    /// with dedup it is the missing-chunk payload — the paper's motivating
    /// metric either way.
    pub bytes_moved: u64,
    /// Simulated wall time the gather phase charged (nanoseconds). With
    /// early release this is the app-visible stall only — the gather
    /// itself keeps running after the request returns.
    pub sim_ns: u64,
    /// Commit progress at the time the request returned:
    /// `GlobalCommitted` for the classic blocking commit,
    /// `LocalCommitted` when early release handed the gather to the
    /// write-behind pool.
    pub commit: CommitState,
    /// Logical image bytes divided by the bytes actually moved to stable
    /// storage this interval. `1.0` outside dedup mode; above `1.0` when
    /// the content-addressed store deduplicated chunks across ranks or
    /// against earlier intervals.
    pub dedup_ratio: f64,
}

impl CkptStats {
    /// Stats for a non-dedup commit path (ratio pinned at `1.0`).
    pub fn plain(bytes_moved: u64, sim_ns: u64, commit: CommitState) -> Self {
        CkptStats {
            bytes_moved,
            sim_ns,
            commit,
            dedup_ratio: 1.0,
        }
    }
}

/// Result of a successful distributed checkpoint: the single name the user
/// must preserve (paper §4), plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointOutcome {
    /// Path of the global snapshot reference directory on stable storage.
    pub global_snapshot: PathBuf,
    /// The checkpoint interval this request produced.
    pub interval: u64,
    /// Number of local snapshots aggregated.
    pub ranks: u32,
    /// Cost and commit bookkeeping of this request.
    pub stats: CkptStats,
}

impl fmt::Display for CheckpointOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "global snapshot {} (interval {}, {} ranks)",
            self.global_snapshot.display(),
            self.interval,
            self.ranks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_builders() {
        let o = CheckpointOptions::tool();
        assert!(!o.terminate);
        assert_eq!(o.origin, CheckpointOrigin::Tool);
        let o = CheckpointOptions::from_rank(3).and_terminate();
        assert!(o.terminate);
        assert_eq!(o.origin, CheckpointOrigin::Application { rank: 3 });
        assert_eq!(o.origin.to_string(), "rank 3");
    }

    #[test]
    fn outcome_display() {
        let out = CheckpointOutcome {
            global_snapshot: PathBuf::from("/stable/ompi_global_snapshot_1.ckpt"),
            interval: 2,
            ranks: 8,
            stats: CkptStats::plain(4096, 0, CommitState::GlobalCommitted),
        };
        let s = out.to_string();
        assert!(s.contains("interval 2"));
        assert!(s.contains("8 ranks"));
        assert_eq!(out.stats.dedup_ratio, 1.0);
    }

    #[test]
    fn options_serde_roundtrip() {
        let o = CheckpointOptions::from_rank(1).and_terminate();
        let bytes = codec::to_bytes(&o).unwrap();
        let back: CheckpointOptions = codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, o);
    }
}
