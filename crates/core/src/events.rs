//! The trace-event registry: every phase string any layer records, in
//! one table.
//!
//! The paper's coordination orderings (Figures 1 and 2) are asserted by
//! tests and benchmarks via [`crate::Tracer`] phase strings, so a typo'd
//! phase silently breaks an assertion instead of failing loudly.  This
//! table is the registration site, exactly like
//! `mca::registry::KNOWN_PARAMS` is for MCA keys: [`KNOWN_TRACE_EVENTS`]
//! describes every phase, and the `cr-lint` `trace-keys` rule enforces
//! from the other side that every string literal passed to
//! `Tracer::record` in non-test code appears here.  When a component
//! records a new phase, add its row here in the same change.

/// Descriptor of one registered trace-event phase.
#[derive(Debug, Clone, Copy)]
pub struct TraceEventDef {
    /// Phase string as passed to `Tracer::record`.
    pub phase: &'static str,
    /// One-line description of when the event fires.
    pub help: &'static str,
}

/// Every trace-event phase the workspace records in production code.
///
/// Kept sorted by phase so drift is easy to spot in review; the unit
/// tests below enforce ordering and uniqueness.
pub const KNOWN_TRACE_EVENTS: &[TraceEventDef] = &[
    TraceEventDef {
        phase: "crcp.replay.begin",
        help: "restarted rank announced its new endpoint and asked survivors to replay",
    },
    TraceEventDef {
        phase: "crcp.replay.done",
        help: "restarted rank collected every survivor's replay-done fence",
    },
    TraceEventDef {
        phase: "crcp.replay.gc",
        help: "sender-side message log garbage-collected at global commit",
    },
    TraceEventDef {
        phase: "crcp.replay.resent",
        help: "survivor replayed its logged backlog to a restarted rank",
    },
    TraceEventDef {
        phase: "filem.drain",
        help: "write-behind gather drained for one interval",
    },
    TraceEventDef {
        phase: "filem.drain.error",
        help: "write-behind drain hit a transfer error",
    },
    TraceEventDef {
        phase: "filem.gather",
        help: "file management gathered local snapshots to stable storage",
    },
    TraceEventDef {
        phase: "filem.gather.error",
        help: "stable-storage gather failed (node death or I/O error)",
    },
    TraceEventDef {
        phase: "filem.local.remove",
        help: "local scratch snapshot removed after cleanup",
    },
    TraceEventDef {
        phase: "filem.preload",
        help: "restart preloaded a snapshot from stable storage",
    },
    TraceEventDef {
        phase: "filem.replica.expire",
        help: "in-memory replica dropped when its interval was retired",
    },
    TraceEventDef {
        phase: "filem.replica.fetch",
        help: "restart fetched an image from a surviving replica holder",
    },
    TraceEventDef {
        phase: "filem.replica.preload",
        help: "restart preloaded a snapshot from the replica store",
    },
    TraceEventDef {
        phase: "filem.replica.put",
        help: "checkpoint image pushed to its ring-successor holders",
    },
    TraceEventDef {
        phase: "filem.sched.plan",
        help: "gather batch planned into contention-aware waves (policy, peak link load)",
    },
    TraceEventDef {
        phase: "journal.open",
        help: "durable FT event journal opened (all later records are chained into it)",
    },
    TraceEventDef {
        phase: "ompi.crcp.coordinate",
        help: "CRCP coordination (bookmark exchange + drain) started",
    },
    TraceEventDef {
        phase: "ompi.crcp.logger.gc",
        help: "message logger garbage-collected entries up to an interval",
    },
    TraceEventDef {
        phase: "ompi.crcp.logger.replay",
        help: "message logger replayed logged frames after restart",
    },
    TraceEventDef {
        phase: "ompi.crcp.logger.resent",
        help: "message logger re-sent an unacknowledged frame",
    },
    TraceEventDef {
        phase: "ompi.crcp.quiesced",
        help: "rank verified its drain and announced Quiesced",
    },
    TraceEventDef {
        phase: "ompi.crcp.resume",
        help: "rank left coordination after the Quiesced exit barrier",
    },
    TraceEventDef {
        phase: "ompi.init.restart",
        help: "rank-level state restored during MPI re-init",
    },
    TraceEventDef {
        phase: "ompi.pml.ft_event",
        help: "PML handled a fault-tolerance event",
    },
    TraceEventDef {
        phase: "ompi.restart",
        help: "job-level restart from a global snapshot reference",
    },
    TraceEventDef {
        phase: "ompi.sync_ckpt.done",
        help: "synchronous checkpoint request completed",
    },
    TraceEventDef {
        phase: "ompi.sync_ckpt.failed",
        help: "synchronous checkpoint request failed",
    },
    TraceEventDef {
        phase: "ompi.sync_ckpt.request",
        help: "application requested a synchronous checkpoint",
    },
    TraceEventDef {
        phase: "opal.crs.checkpoint",
        help: "local checkpoint/restart system captured process state",
    },
    TraceEventDef {
        phase: "opal.crs.local_commit",
        help: "captured image committed to local scratch",
    },
    TraceEventDef {
        phase: "opal.crs.post_event_error",
        help: "a CRS component's ft_event handler returned an error",
    },
    TraceEventDef {
        phase: "opal.hash.pool",
        help: "parallel hash pool verified a commit's chunk digests with pooled buffers",
    },
    TraceEventDef {
        phase: "opal.notify.complete",
        help: "checkpoint notification pipeline completed",
    },
    TraceEventDef {
        phase: "opal.notify.parked",
        help: "application thread parked awaiting the checkpoint",
    },
    TraceEventDef {
        phase: "opal.notify.request",
        help: "checkpoint notification delivered to the process",
    },
    TraceEventDef {
        phase: "orte.daemon.kill",
        help: "runtime killed a daemon (fault injection or teardown)",
    },
    TraceEventDef {
        phase: "orte.daemon.spawn",
        help: "runtime spawned a daemon",
    },
    TraceEventDef {
        phase: "orte.oob.ft_event",
        help: "out-of-band channel handled a fault-tolerance event",
    },
    TraceEventDef {
        phase: "orte.spare.claim",
        help: "partial restart claimed a node from the spare pool",
    },
    TraceEventDef {
        phase: "orte.spare.register",
        help: "node registered into the partial-restart spare pool",
    },
    TraceEventDef {
        phase: "plm.launch",
        help: "process lifecycle manager launched (or relaunched) a job",
    },
    TraceEventDef {
        phase: "snapc.app.done",
        help: "application rank reported its local checkpoint done",
    },
    TraceEventDef {
        phase: "snapc.global.global_commit",
        help: "interval promoted to GlobalCommitted after the gather drained",
    },
    TraceEventDef {
        phase: "snapc.global.initiate",
        help: "global coordinator initiated a checkpoint interval",
    },
    TraceEventDef {
        phase: "snapc.global.local_commit",
        help: "interval locally committed; write-behind gather in flight",
    },
    TraceEventDef {
        phase: "snapc.global.local_done",
        help: "global coordinator saw every local coordinator finish",
    },
    TraceEventDef {
        phase: "snapc.global.reference_returned",
        help: "global snapshot reference handed back to the requester",
    },
    TraceEventDef {
        phase: "snapc.global.request",
        help: "checkpoint request accepted by the global coordinator",
    },
    TraceEventDef {
        phase: "snapc.local.done",
        help: "local coordinator finished its node's checkpoints",
    },
    TraceEventDef {
        phase: "snapc.local.initiate",
        help: "local coordinator started its node's checkpoints",
    },
    TraceEventDef {
        phase: "snapc.tree.forward",
        help: "tree coordinator forwarded the request to a child daemon",
    },
    TraceEventDef {
        phase: "store.chunk.fetch",
        help: "content-addressed chunks served from a daemon's peer-memory tier",
    },
    TraceEventDef {
        phase: "store.chunk.hit",
        help: "dedup commit found manifest chunks already in the stable store",
    },
    TraceEventDef {
        phase: "store.chunk.put",
        help: "fresh chunks pushed into peer-memory chunk tiers at dedup commit",
    },
    TraceEventDef {
        phase: "store.commit",
        help: "dedup interval committed through the chunk store (with dedup ratio)",
    },
    TraceEventDef {
        phase: "store.gc.sweep",
        help: "refcount GC swept a batch of count-zero chunks at interval retirement",
    },
    TraceEventDef {
        phase: "store.restart.fetch",
        help: "restart assembled an image from manifest chunks (per-tier counts)",
    },
    TraceEventDef {
        phase: "supervisor.incarnation",
        help: "supervisor recorded a new process incarnation",
    },
    TraceEventDef {
        phase: "supervisor.recover",
        help: "supervisor recovered a failed process from a snapshot",
    },
    TraceEventDef {
        phase: "supervisor.partial_recover",
        help: "supervisor restored only the failed ranks in place (partial restart)",
    },
    TraceEventDef {
        phase: "supervisor.partial_refused",
        help: "partial restart was refused; supervisor fell back to a full relaunch",
    },
];

/// True when `phase` is a registered trace event.
pub fn is_known_event(phase: &str) -> bool {
    KNOWN_TRACE_EVENTS.iter().any(|def| def.phase == phase)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for pair in KNOWN_TRACE_EVENTS.windows(2) {
            if let [a, b] = pair {
                assert!(a.phase < b.phase, "{} must sort before {}", a.phase, b.phase);
            }
        }
    }

    #[test]
    fn phases_are_dotted_lowercase() {
        for def in KNOWN_TRACE_EVENTS {
            assert!(def.phase.contains('.'), "{} has no namespace dot", def.phase);
            assert!(
                def.phase
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{} has unexpected characters",
                def.phase
            );
            assert!(!def.help.is_empty(), "{} needs help text", def.phase);
        }
    }

    #[test]
    fn lookup_works() {
        assert!(is_known_event("snapc.global.request"));
        assert!(!is_known_event("snapc.global.requset"));
    }
}
