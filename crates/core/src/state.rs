//! The `ft_event` notification states and trait.
//!
//! The paper's key maintainability device (§5.5): every subsystem that must
//! react to a checkpoint or restart implements one function,
//! `int ft_event(int state)`, which encapsulates *all* of that subsystem's
//! fault-tolerance logic. A driver routine (the INC, see [`crate::inc`])
//! calls each subsystem's `ft_event` in the proper order.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CrError;

/// The state of the checkpoint/restart protocol delivered to `ft_event`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FtEventState {
    /// A checkpoint has been requested: quiesce, flush, prepare to be
    /// imaged. Delivered *before* the local checkpoint is taken.
    Checkpoint,
    /// The checkpoint completed and the process keeps running in place.
    Continue,
    /// The process was just reconstructed from a snapshot (possibly on a
    /// different node): rebuild connections, refresh cached identifiers.
    Restart,
    /// The checkpoint attempt failed; undo any preparation.
    Error,
}

impl FtEventState {
    /// All states, in no particular order (useful for exhaustive tests).
    pub const ALL: [FtEventState; 4] = [
        FtEventState::Checkpoint,
        FtEventState::Continue,
        FtEventState::Restart,
        FtEventState::Error,
    ];

    /// True for the two states delivered after the local checkpoint
    /// operation (the "resume" side of the protocol).
    pub fn is_resume(self) -> bool {
        matches!(self, FtEventState::Continue | FtEventState::Restart)
    }
}

impl fmt::Display for FtEventState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FtEventState::Checkpoint => "checkpoint",
            FtEventState::Continue => "continue",
            FtEventState::Restart => "restart",
            FtEventState::Error => "error",
        };
        f.write_str(s)
    }
}

/// Implemented by every subsystem that must react to checkpoint/restart.
///
/// Isolating the logic here is what made the original integration
/// maintainable: the subsystem's normal-path code contains no
/// fault-tolerance branches.
pub trait FtEvent {
    /// React to the given protocol state.
    fn ft_event(&mut self, state: FtEventState) -> Result<(), CrError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(FtEventState::Checkpoint.to_string(), "checkpoint");
        assert_eq!(FtEventState::Continue.to_string(), "continue");
        assert_eq!(FtEventState::Restart.to_string(), "restart");
        assert_eq!(FtEventState::Error.to_string(), "error");
    }

    #[test]
    fn resume_classification() {
        assert!(!FtEventState::Checkpoint.is_resume());
        assert!(FtEventState::Continue.is_resume());
        assert!(FtEventState::Restart.is_resume());
        assert!(!FtEventState::Error.is_resume());
    }

    #[test]
    fn all_is_exhaustive() {
        assert_eq!(FtEventState::ALL.len(), 4);
        let unique: std::collections::HashSet<_> = FtEventState::ALL.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn trait_object_usable() {
        struct Counter(u32);
        impl FtEvent for Counter {
            fn ft_event(&mut self, _state: FtEventState) -> Result<(), CrError> {
                self.0 += 1;
                Ok(())
            }
        }
        let mut c: Box<dyn FtEvent> = Box::new(Counter(0));
        for s in FtEventState::ALL {
            c.ft_event(s).unwrap();
        }
    }
}
