//! Contention-aware gather scheduling for FILEM batches.
//!
//! The parallel gather (`filem::copy_all_parallel`) claims requests in
//! index order, so a batch whose first `k` sources share one node saturates
//! that node's uplink with `k` concurrent transfers — each priced at `1/k`
//! bandwidth by the [`netsim::LinkMeter`] model — while other links sit
//! idle. This module schedules the batch against that same pricing model
//! instead: requests are grouped into *waves* of at most `workers`
//! concurrent transfers, and the `spread` policy fills each wave greedily
//! with the request whose link is currently least loaded, so no link
//! carries `k` concurrent transfers while an idle path exists (unless every
//! lane is already busy).
//!
//! The `filem_sched_policy` MCA parameter selects `spread` (default) or
//! `fifo` (the legacy index-order behaviour, kept for ablation A12).
//! [`simulated_critical_path`] prices a plan through
//! `Topology::contended_cost` — the `ckpt_datapath` bench asserts the
//! spread plan's critical path is strictly below fifo's whenever links are
//! contended, and a deterministic test here pins the no-doubling
//! invariant itself.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use mca::McaParams;
use netsim::{NetView, SimTime, Topology};

use cr_core::CrError;

use crate::filem::{CopyRequest, FilemComponent, FilemReport};

/// How a gather batch is assigned to the bounded worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Legacy behaviour: requests claimed in batch index order.
    Fifo,
    /// Greedy least-loaded-link assignment per wave.
    Spread,
}

impl SchedPolicy {
    /// Read `filem_sched_policy` (default `spread`; any value other than
    /// `fifo` selects spread).
    pub fn from_params(params: &McaParams) -> Self {
        match params.get("filem_sched_policy").as_deref() {
            Some("fifo") => SchedPolicy::Fifo,
            _ => SchedPolicy::Spread,
        }
    }

    /// Metadata/trace string form.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Spread => "spread",
        }
    }
}

/// A scheduled gather: waves of batch indices, each wave running its
/// requests concurrently (one lane per request), waves in sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatherPlan {
    /// Batch indices per wave; every index appears exactly once and no
    /// wave exceeds the lane count it was planned for.
    pub waves: Vec<Vec<usize>>,
}

/// Unordered link key of one request (loopback uses the `(n, n)` pair),
/// matching the `netsim::LinkMeter` keying.
fn link_of(req: &CopyRequest) -> (u32, u32) {
    let (a, b) = (req.src_node.0, req.dest_node.0);
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Schedule `batch` onto `lanes` concurrent lanes under `policy`.
pub fn plan(batch: &[CopyRequest], lanes: usize, policy: SchedPolicy) -> GatherPlan {
    let lanes = lanes.max(1);
    match policy {
        SchedPolicy::Fifo => GatherPlan {
            waves: (0..batch.len())
                .collect::<Vec<_>>()
                .chunks(lanes)
                .map(<[usize]>::to_vec)
                .collect(),
        },
        SchedPolicy::Spread => {
            let mut pending: Vec<usize> = (0..batch.len()).collect();
            let mut waves = Vec::new();
            while !pending.is_empty() {
                let mut wave: Vec<usize> = Vec::with_capacity(lanes);
                let mut load: BTreeMap<(u32, u32), u32> = BTreeMap::new();
                while wave.len() < lanes && !pending.is_empty() {
                    // Least-loaded link first, lowest index on ties: a
                    // link only takes a second concurrent transfer once
                    // every pending request's link already carries one.
                    let pick = pending
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &i)| {
                            let key = batch.get(i).map(link_of).unwrap_or((0, 0));
                            (load.get(&key).copied().unwrap_or(0), i)
                        })
                        .map(|(p, _)| p);
                    let Some(p) = pick else { break };
                    let i = pending.remove(p);
                    if let Some(req) = batch.get(i) {
                        *load.entry(link_of(req)).or_insert(0) += 1;
                    }
                    wave.push(i);
                }
                waves.push(wave);
            }
            GatherPlan { waves }
        }
    }
}

/// Per-link concurrent-transfer counts of one wave.
fn wave_loads(batch: &[CopyRequest], wave: &[usize]) -> BTreeMap<(u32, u32), u32> {
    let mut load = BTreeMap::new();
    for &i in wave {
        if let Some(req) = batch.get(i) {
            *load.entry(link_of(req)).or_insert(0) += 1;
        }
    }
    load
}

/// Price a plan through the topology's 1/k contention model: each wave
/// costs its slowest transfer (every transfer in a wave is charged the
/// wave's concurrency on its link), and waves run back to back.
pub fn simulated_critical_path(
    plan: &GatherPlan,
    topo: &Topology,
    batch: &[CopyRequest],
    bytes: &[usize],
) -> SimTime {
    let mut total = SimTime::ZERO;
    for wave in &plan.waves {
        let load = wave_loads(batch, wave);
        let mut slowest = SimTime::ZERO;
        for &i in wave {
            let Some(req) = batch.get(i) else { continue };
            let share = load.get(&link_of(req)).copied().unwrap_or(1);
            let cost = topo.contended_cost(
                req.src_node,
                req.dest_node,
                bytes.get(i).copied().unwrap_or(0),
                share,
            );
            slowest = slowest.max(cost);
        }
        total += slowest;
    }
    total
}

/// What one scheduled gather did: the plan's shape, the real wall clock,
/// and per-link byte totals. Rendered into the global snapshot metadata
/// (`GlobalSnapshot::record_gather_stats`) so `ompi-snapshot-info` can
/// show the schedule next to the commit state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatherSchedStats {
    /// Scheduling policy that produced the plan.
    pub policy: String,
    /// Number of waves executed.
    pub waves: usize,
    /// Highest concurrent-transfer count any link saw in any wave.
    pub peak_link_concurrency: u32,
    /// Real wall-clock time of the whole gather.
    pub wall: Duration,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Payload bytes per unordered link pair.
    pub bytes_per_link: BTreeMap<(u32, u32), u64>,
}

impl GatherSchedStats {
    /// Wall-clock throughput in MiB/s.
    pub fn mib_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64().max(1e-9);
        self.bytes as f64 / secs / (1024.0 * 1024.0)
    }

    /// Single-line metadata form:
    /// `policy=spread waves=3 peak=2 wall_us=81 bytes=12288 links=0-1:8192,0-2:4096`
    pub fn render(&self) -> String {
        let links = self
            .bytes_per_link
            .iter()
            .map(|((a, b), n)| format!("{a}-{b}:{n}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "policy={} waves={} peak={} wall_us={} bytes={} links={links}",
            self.policy,
            self.waves,
            self.peak_link_concurrency,
            self.wall.as_micros(),
            self.bytes,
        )
    }

    /// Parse the [`render`](GatherSchedStats::render) form back.
    pub fn parse(line: &str) -> Option<GatherSchedStats> {
        let mut policy = None;
        let mut waves = None;
        let mut peak = None;
        let mut wall_us = None;
        let mut bytes = None;
        let mut links = BTreeMap::new();
        for field in line.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "policy" => policy = Some(value.to_string()),
                "waves" => waves = value.parse().ok(),
                "peak" => peak = value.parse().ok(),
                "wall_us" => wall_us = value.parse::<u64>().ok(),
                "bytes" => bytes = value.parse().ok(),
                "links" => {
                    for entry in value.split(',').filter(|e| !e.is_empty()) {
                        let (pair, n) = entry.split_once(':')?;
                        let (a, b) = pair.split_once('-')?;
                        links.insert((a.parse().ok()?, b.parse().ok()?), n.parse().ok()?);
                    }
                }
                _ => return None,
            }
        }
        Some(GatherSchedStats {
            policy: policy?,
            waves: waves?,
            peak_link_concurrency: peak?,
            wall: Duration::from_micros(wall_us?),
            bytes: bytes?,
            bytes_per_link: links,
        })
    }
}

/// Execute `batch` wave-by-wave under `policy` over at most `workers`
/// concurrent lanes, each in-flight copy holding its
/// [`netsim::LinkSlot`] exactly like `copy_all_parallel`. Returns the
/// combined report (serialized cost sums every copy; critical-path cost
/// sums each wave's slowest lane) plus the schedule stats. The first
/// copy error is returned after its wave's lanes finish.
pub fn copy_all_scheduled(
    filem: &dyn FilemComponent,
    net: NetView<'_>,
    batch: &[CopyRequest],
    workers: usize,
    policy: SchedPolicy,
) -> Result<(FilemReport, GatherSchedStats), CrError> {
    let started = Instant::now();
    let plan = plan(batch, workers, policy);
    let mut total = FilemReport::default();
    let mut bytes_per_link: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut peak = 0u32;
    for wave in &plan.waves {
        peak = peak.max(wave_loads(batch, wave).values().copied().max().unwrap_or(0));
        let lane_results: Vec<(usize, Result<FilemReport, CrError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .filter_map(|&i| batch.get(i).map(|req| (i, req)))
                    .map(|(i, req)| {
                        scope.spawn(move || {
                            let _slot = net.begin_transfer(req.src_node, req.dest_node);
                            (i, filem.copy_tree(net, req))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            (usize::MAX, Err(CrError::protocol("FILEM gather worker panicked")))
                        })
                    })
                    .collect()
            });
        let mut wave_report = FilemReport::default();
        for (i, lane) in lane_results {
            let report = lane?;
            if let Some(req) = batch.get(i) {
                *bytes_per_link.entry(link_of(req)).or_insert(0) += report.bytes;
            }
            wave_report.merge_parallel(report);
        }
        total.merge(wave_report);
    }
    let stats = GatherSchedStats {
        policy: policy.as_str().to_string(),
        waves: plan.waves.len(),
        peak_link_concurrency: peak,
        wall: started.elapsed(),
        bytes: total.bytes,
        bytes_per_link,
    };
    Ok((total, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkSpec, NodeId};
    use std::path::PathBuf;

    /// A gather batch with the given source nodes, all destined for the
    /// head node (the shape every SNAPC gather has).
    fn batch_from(srcs: &[u32]) -> Vec<CopyRequest> {
        srcs.iter()
            .enumerate()
            .map(|(i, &s)| CopyRequest {
                src: PathBuf::from(format!("/scratch/{i}")),
                src_node: NodeId(s),
                dest: PathBuf::from(format!("/stable/{i}")),
                dest_node: NodeId(0),
            })
            .collect()
    }

    /// The scheduler's invariant: in any wave whose most-loaded link
    /// carries `m ≥ 2` concurrent transfers, every request deferred to a
    /// later wave must itself be on a link already carrying `≥ m - 1`
    /// transfers in this wave — i.e. the plan never doubles up a link
    /// while a deferred request had an idle path.
    fn assert_no_doubling_while_idle(plan: &GatherPlan, batch: &[CopyRequest], lanes: usize) {
        let mut seen = vec![false; batch.len()];
        for wave in &plan.waves {
            assert!(wave.len() <= lanes.max(1), "wave exceeds lane count");
            for &i in wave {
                assert!(!seen[i], "index {i} scheduled twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every index must be scheduled");
        for (w, wave) in plan.waves.iter().enumerate() {
            let load = wave_loads(batch, wave);
            let m = load.values().copied().max().unwrap_or(0);
            if m < 2 {
                continue;
            }
            for later in &plan.waves[w + 1..] {
                for &i in later {
                    let Some(req) = batch.get(i) else { continue };
                    let count = load.get(&link_of(req)).copied().unwrap_or(0);
                    assert!(
                        count >= m - 1,
                        "wave {w} puts {m} transfers on one link while deferred \
                         request {i} had a path with only {count} in flight"
                    );
                }
            }
        }
    }

    #[test]
    fn policy_defaults_to_spread() {
        let params = McaParams::new();
        assert_eq!(SchedPolicy::from_params(&params), SchedPolicy::Spread);
        params.set("filem_sched_policy", "fifo");
        assert_eq!(SchedPolicy::from_params(&params), SchedPolicy::Fifo);
    }

    #[test]
    fn fifo_plans_in_index_order() {
        let batch = batch_from(&[1, 1, 2, 3, 1]);
        let p = plan(&batch, 2, SchedPolicy::Fifo);
        assert_eq!(p.waves, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn spread_never_doubles_a_link_while_an_idle_path_exists() {
        // Deterministic sweep over skewed source layouts, lane counts,
        // and batch sizes (SplitMix64 for variety without flakiness).
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for trial in 0..200 {
            let n = 1 + (next() % 12) as usize;
            let nodes = 1 + next() % 5;
            let srcs: Vec<u32> = (0..n).map(|_| (1 + next() % nodes) as u32).collect();
            let lanes = 1 + (trial % 6);
            let batch = batch_from(&srcs);
            let p = plan(&batch, lanes, SchedPolicy::Spread);
            assert_no_doubling_while_idle(&p, &batch, lanes);
        }
        // The canonical contended shape: four ranks on node 1, one each
        // on nodes 2 and 3, two lanes. Spread must interleave.
        let batch = batch_from(&[1, 1, 1, 1, 2, 3]);
        let p = plan(&batch, 2, SchedPolicy::Spread);
        assert_no_doubling_while_idle(&p, &batch, 2);
        for wave in &p.waves[..2] {
            let load = wave_loads(&batch, wave);
            assert!(
                load.values().all(|&c| c == 1),
                "first waves must not double the node-1 uplink: {p:?}"
            );
        }
    }

    #[test]
    fn spread_critical_path_strictly_below_fifo_when_contended() {
        let topo = Topology::uniform(4, LinkSpec::gigabit_ethernet());
        let batch = batch_from(&[1, 1, 1, 1, 2, 3]);
        let bytes = vec![8 << 20; batch.len()];
        let fifo = simulated_critical_path(&plan(&batch, 2, SchedPolicy::Fifo), &topo, &batch, &bytes);
        let spread =
            simulated_critical_path(&plan(&batch, 2, SchedPolicy::Spread), &topo, &batch, &bytes);
        assert!(
            spread < fifo,
            "spread must beat fifo on a contended batch (spread={spread}, fifo={fifo})"
        );
        // Uncontended batch: both policies price identically.
        let even = batch_from(&[1, 2, 3]);
        let even_bytes = vec![8 << 20; 3];
        let f = simulated_critical_path(&plan(&even, 3, SchedPolicy::Fifo), &topo, &even, &even_bytes);
        let s =
            simulated_critical_path(&plan(&even, 3, SchedPolicy::Spread), &topo, &even, &even_bytes);
        assert_eq!(f, s);
    }

    #[test]
    fn stats_render_parse_roundtrip() {
        let mut bytes_per_link = BTreeMap::new();
        bytes_per_link.insert((0, 1), 8192u64);
        bytes_per_link.insert((0, 3), 4096u64);
        let stats = GatherSchedStats {
            policy: "spread".to_string(),
            waves: 3,
            peak_link_concurrency: 2,
            wall: Duration::from_micros(81),
            bytes: 12288,
            bytes_per_link,
        };
        let back = GatherSchedStats::parse(&stats.render()).unwrap();
        assert_eq!(back, stats);
        assert!(stats.mib_per_sec() > 0.0);
        assert!(GatherSchedStats::parse("policy=x nope").is_none());
        assert!(GatherSchedStats::parse("").is_none());
    }

    #[test]
    fn copy_all_scheduled_moves_every_tree() {
        let base = std::env::temp_dir().join(format!("orte_sched_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut batch = Vec::new();
        for i in 0..5usize {
            let src = base.join(format!("src{i}"));
            std::fs::create_dir_all(&src).unwrap();
            std::fs::write(src.join("ctx"), vec![i as u8; 1000 + i]).unwrap();
            batch.push(CopyRequest {
                src,
                src_node: NodeId(1 + (i as u32 % 2)),
                dest: base.join(format!("dest{i}")),
                dest_node: NodeId(0),
            });
        }
        let topo = Topology::uniform(3, LinkSpec::gigabit_ethernet());
        let params = McaParams::new();
        let filem = crate::filem::RshSimFilem::from_params(&params);
        let (report, stats) =
            copy_all_scheduled(&filem, NetView::uncontended(&topo), &batch, 2, SchedPolicy::Spread)
                .unwrap();
        assert_eq!(report.files, 5);
        assert_eq!(report.bytes, (0..5).map(|i| 1000 + i as u64).sum::<u64>());
        assert_eq!(stats.bytes, report.bytes);
        assert_eq!(stats.peak_link_concurrency, 1, "two lanes, two links: no doubling");
        assert_eq!(
            stats.bytes_per_link.values().sum::<u64>(),
            report.bytes,
            "every byte attributed to a link"
        );
        for i in 0..5usize {
            assert!(base.join(format!("dest{i}")).join("ctx").exists());
        }
        // Sequential fallback shape: one lane → one wave per request,
        // serialized and critical-path costs equal.
        let (seq, seq_stats) =
            copy_all_scheduled(&filem, NetView::uncontended(&topo), &batch, 1, SchedPolicy::Fifo)
                .unwrap();
        assert_eq!(seq_stats.waves, 5);
        assert_eq!(seq.serialized_cost, seq.critical_path_cost);
    }
}
