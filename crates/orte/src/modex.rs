//! The modex: rendezvous key-value exchange at startup and restart.
//!
//! Open MPI processes publish their transport addresses during `MPI_Init`
//! and look up their peers' before point-to-point channels can form (the
//! "module exchange"). Our simulated equivalent is a blocking key-value
//! store scoped by job: ranks publish `(job, key) -> bytes` and block until
//! the keys they need appear. After a restart the same mechanism lets the
//! reconstructed processes find each other's *new* endpoints — this is how
//! "reconnecting peers when restarting in new process topologies" (paper
//! §6.3) works here.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use cr_core::{CrError, JobId};

#[derive(Default)]
struct Inner {
    entries: HashMap<(JobId, String), Vec<u8>>,
}

/// Blocking rendezvous store shared by every process of a runtime.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use cr_core::JobId;
/// use orte::modex::Modex;
///
/// let modex = Modex::new();
/// modex.publish(JobId(1), "pml.0", vec![42]);
/// let addr = modex.wait(JobId(1), "pml.0", Duration::from_secs(1)).unwrap();
/// assert_eq!(addr, vec![42]);
/// ```
pub struct Modex {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Default for Modex {
    fn default() -> Self {
        Self::new()
    }
}

impl Modex {
    /// Empty store.
    pub fn new() -> Self {
        Modex {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
        }
    }

    /// Publish `value` under `(job, key)`, waking all waiters.
    pub fn publish(&self, job: JobId, key: &str, value: Vec<u8>) {
        let mut inner = self.inner.lock();
        inner.entries.insert((job, key.to_string()), value);
        self.cv.notify_all();
    }

    /// Non-blocking lookup.
    pub fn get(&self, job: JobId, key: &str) -> Option<Vec<u8>> {
        self.inner.lock().entries.get(&(job, key.to_string())).cloned()
    }

    /// Block until `(job, key)` is published, or `timeout` expires.
    pub fn wait(&self, job: JobId, key: &str, timeout: Duration) -> Result<Vec<u8>, CrError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(v) = inner.entries.get(&(job, key.to_string())) {
                return Ok(v.clone());
            }
            if self.cv.wait_until(&mut inner, deadline).timed_out() {
                return Err(CrError::PeerLost {
                    detail: format!("modex key {key:?} for {job} never published"),
                });
            }
        }
    }

    /// Retract a single `(job, key)` entry (partial-restart hygiene:
    /// a failed rank's stale endpoint address must be removed *before*
    /// its replacement is spawned, so simultaneously rejoining peers
    /// block in [`Modex::wait`] until the fresh address is republished
    /// instead of connecting to the dead incarnation).
    pub fn remove(&self, job: JobId, key: &str) {
        let mut inner = self.inner.lock();
        inner.entries.remove(&(job, key.to_string()));
        self.cv.notify_all();
    }

    /// Remove every entry belonging to `job` (job teardown, and restart
    /// hygiene: stale addresses must not leak into the new incarnation).
    pub fn clear_job(&self, job: JobId) {
        let mut inner = self.inner.lock();
        inner.entries.retain(|(j, _), _| *j != job);
        self.cv.notify_all();
    }

    /// Number of published entries (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_then_get() {
        let m = Modex::new();
        assert!(m.is_empty());
        m.publish(JobId(1), "pml.0", vec![1, 2]);
        assert_eq!(m.get(JobId(1), "pml.0"), Some(vec![1, 2]));
        assert_eq!(m.get(JobId(2), "pml.0"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn wait_blocks_until_published() {
        let m = Arc::new(Modex::new());
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            m2.wait(JobId(1), "pml.3", Duration::from_secs(5)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        m.publish(JobId(1), "pml.3", vec![9]);
        assert_eq!(waiter.join().unwrap(), vec![9]);
    }

    #[test]
    fn wait_times_out() {
        let m = Modex::new();
        let err = m
            .wait(JobId(1), "never", Duration::from_millis(20))
            .unwrap_err();
        assert!(err.to_string().contains("never"));
    }

    #[test]
    fn clear_job_is_scoped() {
        let m = Modex::new();
        m.publish(JobId(1), "a", vec![]);
        m.publish(JobId(2), "a", vec![]);
        m.clear_job(JobId(1));
        assert_eq!(m.get(JobId(1), "a"), None);
        assert!(m.get(JobId(2), "a").is_some());
    }

    #[test]
    fn remove_retracts_single_key() {
        let m = Arc::new(Modex::new());
        m.publish(JobId(1), "pml.2", vec![1]);
        m.publish(JobId(1), "pml.3", vec![2]);
        m.remove(JobId(1), "pml.2");
        assert_eq!(m.get(JobId(1), "pml.2"), None);
        assert_eq!(m.get(JobId(1), "pml.3"), Some(vec![2]));
        // A waiter blocks until the key is republished with a new value.
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            m2.wait(JobId(1), "pml.2", Duration::from_secs(5)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        m.publish(JobId(1), "pml.2", vec![9]);
        assert_eq!(waiter.join().unwrap(), vec![9]);
    }

    #[test]
    fn republish_overwrites() {
        let m = Modex::new();
        m.publish(JobId(1), "k", vec![1]);
        m.publish(JobId(1), "k", vec![2]);
        assert_eq!(m.get(JobId(1), "k"), Some(vec![2]));
    }
}
