//! SNAPC — the snapshot coordination framework (paper §5.1/§6.1).
//!
//! A SNAPC component owns the distributed checkpoint lifecycle: accept the
//! request, verify every process is willing, initiate per-process local
//! checkpoints, monitor progress, aggregate local snapshots into the
//! global snapshot on stable storage, and hand the user back the single
//! global snapshot reference.
//!
//! Components:
//!
//! * **`full`** — the paper's centralized design (Figure 1): the *global
//!   coordinator* (here: the thread invoking the checkpoint, playing
//!   `mpirun`) drives *local coordinators* (the per-node daemons) over
//!   OOB; each daemon drives its local processes' *application
//!   coordinators* (the notification threads); local snapshots land on
//!   node-local disk and are gathered to stable storage by FILEM, then the
//!   scratch copies are removed.
//! * **`tree`** — hierarchical coordination: the request fans out through
//!   a binomial tree of daemons and results aggregate back up it, so the
//!   global coordinator handles O(1) messages — the "hierarchal tree
//!   structure" technique §5.1 names as a motivating alternative.
//! * **`direct`** — a contrast component: no daemons, no gather; each
//!   process checkpoints straight into the global snapshot directory on
//!   shared storage. Fewer moving parts, but every rank hammers stable
//!   storage at once — the trade-off the A5 ablation measures.

use std::collections::BTreeMap;
use std::path::PathBuf;

use mca::Framework;
use netsim::NodeId;

use cr_core::request::{CheckpointOptions, CheckpointOutcome, CkptStats};
use cr_core::{CrError, JobId, Rank};
use opal::container::OpalCtrl;

use crate::filem::{copy_all_parallel, filem_framework, CopyRequest};
use crate::sched::{copy_all_scheduled, SchedPolicy};
use crate::job::JobHandle;
use crate::oob::{recv_oob_timeout, send_oob, DaemonMsg, DaemonReply, RankCkpt};
use crate::runtime::Runtime;

/// How long the global coordinator waits for daemon replies.
const OOB_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(120);

/// A snapshot coordination component (global coordinator side).
pub trait SnapcComponent: Send + Sync {
    /// Component name.
    fn name(&self) -> &'static str;

    /// Run a full distributed checkpoint of `job`.
    fn checkpoint_job(
        &self,
        job: &JobHandle,
        options: &CheckpointOptions,
    ) -> Result<CheckpointOutcome, CrError>;
}

/// Assemble the SNAPC framework.
pub fn snapc_framework() -> Framework<dyn SnapcComponent> {
    let mut fw: Framework<dyn SnapcComponent> = Framework::new("snapc");
    fw.register("full", 20, "centralized global/local/app coordinators", |_| {
        Box::new(FullSnapc)
    });
    fw.register(
        "tree",
        15,
        "hierarchical coordination over a binomial daemon tree",
        |_| Box::new(TreeSnapc),
    );
    fw.register("direct", 10, "checkpoint directly to stable storage", |_| {
        Box::new(DirectSnapc)
    });
    fw
}

// ---------------------------------------------------------------------------
// shared gather tail
// ---------------------------------------------------------------------------

/// Ask every node's daemon to remove its interval scratch copies and wait
/// for the acknowledgements.
fn cleanup_scratch(
    runtime: &Runtime,
    job: JobId,
    interval: u64,
    nodes: &[NodeId],
) -> Result<(), CrError> {
    let fabric = runtime.fabric();
    let hnp = fabric.register(NodeId(0));
    for node in nodes {
        let daemon = runtime.ensure_daemon(*node);
        send_oob(
            fabric,
            hnp.id(),
            daemon.endpoint(),
            &DaemonMsg::Cleanup {
                job,
                interval,
                reply_to: hnp.id().0,
            },
        )?;
    }
    for _ in nodes {
        let _: DaemonReply = recv_oob_timeout(&hnp, OOB_TIMEOUT)?;
    }
    Ok(())
}

/// Gather/commit/cleanup tail shared by the `full` and `tree` components.
///
/// `results` is the flat `(node, per-rank checkpoint)` listing the daemons
/// reported. Each entry carries the context kind (`full`/`delta`) and
/// chain links, which are recorded in the global metadata at commit so
/// restart knows which intervals to replay and retirement knows which
/// bases are still referenced. Because a delta's local snapshot directory
/// holds only the dirty chunks, both the wire cost here and the replica
/// memory footprint scale with the delta size, not the full image size.
///
/// With any classic FILEM component the tail is the
/// paper's Figure 1-F: copy every local snapshot to stable storage over a
/// bounded worker pool (`snapc_gather_workers`), commit the interval,
/// then remove the scratch copies. `snapc_early_release=true` pipelines
/// this commit: the interval is *locally* committed (every capture on
/// node-local disk), the request returns immediately, and the gather,
/// promotion to global commit, and scratch cleanup run on a registered
/// write-behind thread concurrently with resumed application progress. A
/// node failure mid-gather leaves the interval local-committed — invisible
/// to restart, which falls back to the newest globally committed one.
///
/// With `filem=replica` the durable commit happens into *peer memory*
/// first: every rank's image is ring-replicated into `k + 1` daemons'
/// stores ([`crate::replica::replicate`]), the holder locations are
/// recorded in the global metadata, and the interval is committed — that
/// is the moment the checkpoint becomes restorable (from memory). The
/// copy to stable storage then runs as an asynchronous *write-behind*
/// drain (unless `filem_replica_writebehind=false`), registered with the
/// runtime so disk-path restarts and shutdown can wait for it. Scratch
/// cleanup rides behind the drain, which reads from the scratch copies.
///
/// Invariant (model-checked by `cr-model commit`, see
/// `crates/model/src/commit.rs` and DESIGN.md §2.4): a restart-visible
/// (`GlobalCommitted`) interval always has a fully drained gather, and an
/// interval's commit state climbs the lattice monotonically under every
/// interleaving of local commit, gather completion, promotion, and
/// mid-gather node death. The returned `CkptStats::commit` is read back
/// from the snapshot authority (`GlobalSnapshot::commit_state`), never
/// minted here — enforced by the `commit-state` cr-lint rule.
///
/// With `filem_dedup_enabled=true` the tail is replaced wholesale by the
/// content-addressed commit ([`crate::store`]): each rank's manifested
/// image is sliced into chunks, only chunks the stable
/// [`opal::store::ChunkStore`] has never seen are written (and pushed to
/// the peer-memory chunk tier), references are taken *before* the
/// manifests are recorded, and the interval commits with a dedup ratio in
/// its stats. The refcount lifecycle is model-checked by `cr-model gc`.
fn gather_commit_cleanup(
    job: &JobHandle,
    interval: u64,
    interval_dir: &std::path::Path,
    results: &[(u32, RankCkpt)],
    tag: &str,
) -> Result<CkptStats, CrError> {
    let runtime = job.runtime();
    let tracer = runtime.tracer();
    let params = job.params();
    let nodes = job.placement().nodes();
    let job_id = job.job();

    let filem_fw = filem_framework();
    let selection = filem_fw
        .resolve(params)
        .map_err(|e| CrError::Unsupported {
            detail: e.to_string(),
        })?
        .name;
    let filem = filem_fw.select(params).map_err(|e| CrError::Unsupported {
        detail: e.to_string(),
    })?;

    // Bounded gather pool shared by every commit flavour below.
    let workers = params
        .get_parsed_or("snapc_gather_workers", 4usize)
        .unwrap_or(4)
        .max(1);
    let early_release = params
        .get_bool_or("snapc_early_release", false)
        .unwrap_or(false);
    // Gathers to stable storage run through the contention-aware wave
    // scheduler; `fifo` keeps the legacy index-order claiming for A12.
    let policy = SchedPolicy::from_params(params);

    let batch: Vec<CopyRequest> = results
        .iter()
        .map(|(node, ckpt)| CopyRequest {
            src: ckpt.dir.clone(),
            src_node: NodeId(*node),
            dest: interval_dir.join(cr_core::snapshot::local_dir_name(Rank(ckpt.rank))),
            dest_node: NodeId(0),
        })
        .collect();

    let ranks_info: Vec<(Rank, String)> = (0..job.nprocs())
        .map(|r| {
            let rank = Rank(r);
            (rank, runtime.topology().hostname(job.node_of(rank)).to_string())
        })
        .collect();
    let chain_info: Vec<(Rank, &str, u64, u64)> = results
        .iter()
        .map(|(_, c)| (Rank(c.rank), c.kind.as_str(), c.base_interval, c.prev_interval))
        .collect();

    // Partial-restart accounting: ranks running with the CRCP message log
    // expose its footprint through a container probe; record the per-rank
    // bytes for this interval so `ompi-snapshot-info` can show how much
    // in-flight traffic a partial restart would have to replay. Ranks
    // without the probe (log disabled) leave the section absent.
    let msg_log: Vec<(Rank, u64)> = (0..job.nprocs())
        .filter_map(|r| {
            job.container(Rank(r))
                .probe("crcp.msglog")
                .and_then(|s| s.parse().ok())
                .map(|b| (Rank(r), b))
        })
        .collect();
    if !msg_log.is_empty() {
        job.global_snapshot()?.record_msg_log_bytes(interval, &msg_log)?;
    }

    let dedup = params
        .get_bool_or("filem_dedup_enabled", false)
        .unwrap_or(false);
    if dedup {
        // Content-addressed commit: chunk manifests + refcounted blobs
        // replace whole-image gathers. Only never-before-seen chunks move.
        let stats = crate::store::dedup_commit(
            job, interval, results, &ranks_info, &chain_info, tag,
        )?;
        cleanup_scratch(runtime, job_id, interval, &nodes)?;
        return Ok(stats);
    }

    if selection == "replica" {
        let factor = params
            .get_parsed_or("filem_replica_factor", 1u32)
            .unwrap_or(1);
        let writebehind = params
            .get_bool_or("filem_replica_writebehind", true)
            .unwrap_or(true);
        let images: Vec<(Rank, u32, PathBuf)> = results
            .iter()
            .map(|(node, c)| (Rank(c.rank), *node, c.dir.clone()))
            .collect();
        let outcome = crate::replica::replicate(runtime, job_id, interval, &images, factor)?;
        tracer.record(
            "filem.gather",
            &format!(
                "{} bytes to peer memory (factor {factor}), sim {}{tag}",
                outcome.bytes, outcome.sim_cost
            ),
        );
        let commit = {
            let mut global = job.global_snapshot()?;
            global.record_replica_holders(interval, &outcome.holders)?;
            global.record_ckpt_chain(interval, &chain_info)?;
            global.commit_interval(interval, &ranks_info)?;
            global.commit_state(interval)
        };
        // Write-behind: the stable-storage copy (and the scratch cleanup
        // behind it) runs off the critical path, over the bounded gather
        // pool so the drain itself shares links fairly.
        let drain_rt = runtime.clone();
        let drain = move || {
            match copy_all_parallel(&*filem, drain_rt.netview(), &batch, workers) {
                Ok(report) => {
                    drain_rt.tracer().record(
                        "filem.drain",
                        &format!(
                            "{} files, {} bytes, sim {} (critical path {})",
                            report.files,
                            report.bytes,
                            report.serialized_cost,
                            report.critical_path_cost
                        ),
                    );
                    if let Err(e) = cleanup_scratch(&drain_rt, job_id, interval, &nodes) {
                        drain_rt.tracer().record("filem.drain.error", &e.to_string());
                    }
                }
                Err(e) => {
                    drain_rt.tracer().record("filem.drain.error", &e.to_string());
                }
            }
        };
        if writebehind {
            let handle = std::thread::Builder::new()
                .name("filem-drain".into())
                .spawn(drain)
                .map_err(|e| CrError::protocol(format!("spawn drain thread: {e}")))?;
            runtime.register_drain(handle);
        } else {
            drain();
        }
        // Peer memory *is* the durable commit for the replica component;
        // `commit` reads back GlobalCommitted from the authority above.
        return Ok(CkptStats::plain(
            outcome.bytes,
            outcome.sim_cost.as_nanos(),
            commit,
        ));
    }

    if early_release {
        // Pipelined commit: the ranks already resumed at their quiesce
        // gates; record the interval as locally committed and hand the
        // gather to a write-behind worker. Restart cannot see the
        // interval until the promotion below lands.
        let commit = {
            let mut global = job.global_snapshot()?;
            global.record_ckpt_chain(interval, &chain_info)?;
            global.local_commit_interval(interval, &ranks_info)?;
            global.commit_state(interval)
        };
        tracer.record(
            "snapc.global.local_commit",
            &format!("interval {interval}{tag}"),
        );
        let bytes: u64 = results.iter().map(|(_, c)| c.bytes).sum();
        let delay_ms = params
            .get_parsed_or("snapc_gather_delay_ms", 0u64)
            .unwrap_or(0);
        let cell = job.global_snapshot_cell();
        let src_nodes: Vec<NodeId> = batch.iter().map(|r| r.src_node).collect();
        let drain_rt = runtime.clone();
        let watermark = job.commit_watermark();
        let tag = tag.to_string();
        let gather = move || {
            if delay_ms > 0 {
                // Fault-window knob for tests/ablation: widens the span in
                // which the interval is local-committed only.
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            }
            // A dead source node's local scratch is unreachable; its
            // interval must stay local-committed (restart falls back).
            if let Some(dead) = src_nodes.iter().find(|n| drain_rt.node_failed(**n)) {
                drain_rt.tracer().record(
                    "filem.gather.error",
                    &format!(
                        "interval {interval}: source {dead} failed mid-gather; \
                         interval stays local-committed"
                    ),
                );
                return;
            }
            match copy_all_scheduled(&*filem, drain_rt.netview(), &batch, workers, policy) {
                Ok((report, sched)) => {
                    drain_rt.tracer().record(
                        "filem.sched.plan",
                        &format!("interval {interval}: {}{tag}", sched.render()),
                    );
                    let promoted = match cell.lock().as_mut() {
                        Some(global) => global
                            .record_gather_stats(interval, &sched.render())
                            .and_then(|()| global.promote_interval(interval)),
                        None => Err(CrError::protocol(
                            "global snapshot cell empty during promotion",
                        )),
                    };
                    match promoted {
                        Ok(()) => {
                            drain_rt.tracer().record(
                                "filem.gather",
                                &format!(
                                    "{} files, {} bytes, sim {} (critical path {}){tag}",
                                    report.files,
                                    report.bytes,
                                    report.serialized_cost,
                                    report.critical_path_cost
                                ),
                            );
                            if let Err(e) =
                                cleanup_scratch(&drain_rt, job_id, interval, &nodes)
                            {
                                drain_rt
                                    .tracer()
                                    .record("filem.gather.error", &e.to_string());
                            }
                            watermark.fetch_max(
                                interval + 1,
                                std::sync::atomic::Ordering::SeqCst,
                            );
                            drain_rt.tracer().record(
                                "snapc.global.global_commit",
                                &format!("interval {interval}"),
                            );
                        }
                        Err(e) => drain_rt
                            .tracer()
                            .record("filem.gather.error", &e.to_string()),
                    }
                }
                Err(e) => drain_rt.tracer().record(
                    "filem.gather.error",
                    &format!("interval {interval}: {e}"),
                ),
            }
        };
        let handle = std::thread::Builder::new()
            .name("filem-gather".into())
            .spawn(gather)
            .map_err(|e| CrError::protocol(format!("spawn gather thread: {e}")))?;
        runtime.register_drain(handle);
        // LocalCommitted here: the promotion lands in the gather thread.
        return Ok(CkptStats::plain(bytes, 0, commit));
    }

    // Classic path: blocking gather to stable storage (Figure 1-F) over
    // the bounded worker pool, processes already resumed. Waves are
    // planned against the link-contention model so one node's uplink is
    // never doubled up while another's sits idle.
    let (report, sched) = copy_all_scheduled(&*filem, runtime.netview(), &batch, workers, policy)?;
    tracer.record(
        "filem.sched.plan",
        &format!("interval {interval}: {}{tag}", sched.render()),
    );
    tracer.record(
        "filem.gather",
        &format!(
            "{} files, {} bytes, sim {} (critical path {}){tag}",
            report.files, report.bytes, report.serialized_cost, report.critical_path_cost
        ),
    );
    let commit = {
        let mut global = job.global_snapshot()?;
        global.record_ckpt_chain(interval, &chain_info)?;
        global.record_gather_stats(interval, &sched.render())?;
        global.commit_interval(interval, &ranks_info)?;
        global.commit_state(interval)
    };
    cleanup_scratch(runtime, job_id, interval, &nodes)?;
    Ok(CkptStats::plain(
        report.bytes,
        report.critical_path_cost.as_nanos(),
        commit,
    ))
}

// ---------------------------------------------------------------------------
// full
// ---------------------------------------------------------------------------

/// The paper's centralized coordinator.
pub struct FullSnapc;

impl FullSnapc {
    /// Verify every rank is checkpointable; error listing refusers
    /// otherwise (all-or-nothing, paper §5.1).
    fn verify_checkpointable(&self, job: &JobHandle) -> Result<(), CrError> {
        let runtime = job.runtime();
        let fabric = runtime.fabric();
        let hnp = fabric.register(NodeId(0));
        let nodes = job.placement().nodes();
        for node in &nodes {
            let daemon = runtime.ensure_daemon(*node);
            send_oob(
                fabric,
                hnp.id(),
                daemon.endpoint(),
                &DaemonMsg::QueryCheckpointable {
                    job: job.job(),
                    reply_to: hnp.id().0,
                },
            )?;
        }
        let mut refusing = Vec::new();
        for _ in &nodes {
            let reply: DaemonReply = recv_oob_timeout(&hnp, OOB_TIMEOUT)?;
            match reply {
                DaemonReply::Checkpointable { ranks, .. } => {
                    refusing.extend(
                        ranks
                            .into_iter()
                            .filter(|(_, ok)| !ok)
                            .map(|(r, _)| Rank(r)),
                    );
                }
                other => {
                    return Err(CrError::protocol(format!(
                        "unexpected daemon reply during query: {other:?}"
                    )))
                }
            }
        }
        if refusing.is_empty() {
            Ok(())
        } else {
            refusing.sort_unstable();
            Err(CrError::NotCheckpointable { ranks: refusing })
        }
    }
}

impl SnapcComponent for FullSnapc {
    fn name(&self) -> &'static str {
        "full"
    }

    fn checkpoint_job(
        &self,
        job: &JobHandle,
        _options: &CheckpointOptions,
    ) -> Result<CheckpointOutcome, CrError> {
        let runtime = job.runtime();
        let tracer = runtime.tracer();
        let fabric = runtime.fabric();

        // All-or-nothing: refuse before any process is disturbed.
        self.verify_checkpointable(job)?;

        // Begin the interval on stable storage (uncommitted until the end).
        let (interval, interval_dir) = {
            let mut global = job.global_snapshot()?;
            global.begin_interval()?
        };
        tracer.record("snapc.global.initiate", &format!("interval {interval}"));

        // Fan the request out to every local coordinator *before* waiting
        // on any reply: all ranks must enter coordination concurrently.
        let hnp = fabric.register(NodeId(0));
        let nodes = job.placement().nodes();
        for node in &nodes {
            let daemon = runtime.ensure_daemon(*node);
            send_oob(
                fabric,
                hnp.id(),
                daemon.endpoint(),
                &DaemonMsg::CheckpointLocal {
                    job: job.job(),
                    interval,
                    reply_to: hnp.id().0,
                },
            )?;
        }

        // Monitor progress: collect one LocalDone per node.
        let mut per_node: BTreeMap<u32, Vec<RankCkpt>> = BTreeMap::new();
        let mut failures = Vec::new();
        for _ in &nodes {
            match recv_oob_timeout::<DaemonReply>(&hnp, OOB_TIMEOUT)? {
                DaemonReply::LocalDone { node, results } => {
                    tracer.record("snapc.global.local_done", &format!("node {node}"));
                    per_node.insert(node, results);
                }
                DaemonReply::Error { node, detail } => {
                    failures.push(format!("node {node}: {detail}"));
                }
                other => failures.push(format!("unexpected reply: {other:?}")),
            }
        }
        if !failures.is_empty() {
            // Leave the interval uncommitted (invisible) and report.
            let _ = std::fs::remove_dir_all(&interval_dir);
            return Err(CrError::protocol(format!(
                "checkpoint failed: {}",
                failures.join("; ")
            )));
        }

        // Aggregate, commit, and clean up (peer-memory first with
        // `filem=replica`, synchronous stable-storage gather otherwise).
        let flat: Vec<(u32, RankCkpt)> = per_node
            .iter()
            .flat_map(|(node, results)| results.iter().map(|c| (*node, c.clone())))
            .collect();
        let stats = gather_commit_cleanup(job, interval, &interval_dir, &flat, "")?;

        Ok(CheckpointOutcome {
            global_snapshot: job.global_snapshot_path(),
            interval,
            ranks: job.nprocs(),
            stats,
        })
    }
}

// ---------------------------------------------------------------------------
// tree
// ---------------------------------------------------------------------------

/// Hierarchical coordinator: the request fans out through a binomial tree
/// of daemons instead of the global coordinator contacting every node
/// itself — the "hierarchal tree structure" flexibility the paper's SNAPC
/// framework is designed to admit (§5.1). Results aggregate back up the
/// same tree, so the HNP handles O(1) messages regardless of node count.
pub struct TreeSnapc;

/// Build a binomial tree over `nodes`; returns the children of the root.
fn binomial_tree(nodes: &[netsim::NodeId], endpoints: &[u64]) -> Vec<crate::oob::TreeSpec> {
    // Standard binomial layout over indices: node i's children are
    // i + 2^k for each k with i + 2^k < n and 2^k > (i's low set bits).
    fn children_of(i: usize, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut mask = 1usize;
        // Children are attached at increasing powers of two until a set
        // bit of i is reached.
        while i & mask == 0 {
            let child = i + mask;
            if child >= n {
                break;
            }
            out.push(child);
            mask <<= 1;
        }
        out
    }
    fn build(
        i: usize,
        nodes: &[netsim::NodeId],
        endpoints: &[u64],
    ) -> crate::oob::TreeSpec {
        crate::oob::TreeSpec {
            endpoint: endpoints[i],
            node: nodes[i].0,
            children: children_of(i, nodes.len())
                .into_iter()
                .map(|c| build(c, nodes, endpoints))
                .collect(),
        }
    }
    children_of(0, nodes.len())
        .into_iter()
        .map(|c| build(c, nodes, endpoints))
        .collect()
}

impl SnapcComponent for TreeSnapc {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn checkpoint_job(
        &self,
        job: &JobHandle,
        _options: &CheckpointOptions,
    ) -> Result<CheckpointOutcome, CrError> {
        let runtime = job.runtime();
        let tracer = runtime.tracer();
        let fabric = runtime.fabric();

        FullSnapc.verify_checkpointable(job)?;

        let (interval, interval_dir) = {
            let mut global = job.global_snapshot()?;
            global.begin_interval()?
        };
        tracer.record(
            "snapc.global.initiate",
            &format!("interval {interval} (tree)"),
        );

        // One message to the tree root; the daemons do the fan-out.
        let nodes = job.placement().nodes();
        let endpoints: Vec<u64> = nodes
            .iter()
            .map(|n| runtime.ensure_daemon(*n).endpoint().0)
            .collect();
        let hnp = fabric.register(NodeId(0));
        let root_children = binomial_tree(&nodes, &endpoints);
        send_oob(
            fabric,
            hnp.id(),
            netsim::EndpointId(endpoints[0]),
            &DaemonMsg::CheckpointTree {
                job: job.job(),
                interval,
                children: root_children,
                reply_to: hnp.id().0,
            },
        )?;

        // One aggregated reply.
        let all_results: Vec<(u32, RankCkpt)> =
            match recv_oob_timeout::<DaemonReply>(&hnp, OOB_TIMEOUT)? {
                DaemonReply::TreeDone { results, .. } => results,
                DaemonReply::Error { node, detail } => {
                    let _ = std::fs::remove_dir_all(&interval_dir);
                    return Err(CrError::protocol(format!(
                        "tree checkpoint failed at node {node}: {detail}"
                    )));
                }
                other => {
                    let _ = std::fs::remove_dir_all(&interval_dir);
                    return Err(CrError::protocol(format!(
                        "unexpected tree reply: {other:?}"
                    )));
                }
            };
        if all_results.len() != job.nprocs() as usize {
            let _ = std::fs::remove_dir_all(&interval_dir);
            return Err(CrError::protocol(format!(
                "tree checkpoint returned {} results for {} ranks",
                all_results.len(),
                job.nprocs()
            )));
        }

        // Gather and commit exactly as the full component does.
        let stats = gather_commit_cleanup(job, interval, &interval_dir, &all_results, " (tree)")?;

        Ok(CheckpointOutcome {
            global_snapshot: job.global_snapshot_path(),
            interval,
            ranks: job.nprocs(),
            stats,
        })
    }
}

// ---------------------------------------------------------------------------
// direct
// ---------------------------------------------------------------------------

/// Daemon-less coordinator writing local snapshots straight to stable
/// storage.
pub struct DirectSnapc;

impl SnapcComponent for DirectSnapc {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn checkpoint_job(
        &self,
        job: &JobHandle,
        _options: &CheckpointOptions,
    ) -> Result<CheckpointOutcome, CrError> {
        // All-or-nothing check straight off the containers.
        let refusing: Vec<Rank> = (0..job.nprocs())
            .map(Rank)
            .filter(|r| !job.container(*r).is_checkpointable())
            .collect();
        if !refusing.is_empty() {
            return Err(CrError::NotCheckpointable { ranks: refusing });
        }

        let (interval, interval_dir) = {
            let mut global = job.global_snapshot()?;
            global.begin_interval()?
        };
        job.runtime()
            .tracer()
            .record("snapc.global.initiate", &format!("interval {interval} (direct)"));

        // Notify everyone first, then collect.
        let mut waits = Vec::new();
        for r in 0..job.nprocs() {
            let rank = Rank(r);
            let (rtx, rrx) = crossbeam::channel::bounded(1);
            job.ctrl(rank)
                .send(OpalCtrl::Checkpoint {
                    snapshot_parent: interval_dir.clone(),
                    interval,
                    options: CheckpointOptions::tool(),
                    reply: rtx,
                })
                .map_err(|_| CrError::PeerLost {
                    detail: format!("rank {rank} notification channel closed"),
                })?;
            waits.push((rank, rrx));
        }
        let mut failures = Vec::new();
        let mut replies: Vec<(Rank, opal::container::CkptReply)> = Vec::new();
        for (rank, rrx) in waits {
            match rrx.recv() {
                Ok(Ok(reply)) => replies.push((rank, reply)),
                Ok(Err(e)) => failures.push(format!("rank {rank}: {e}")),
                Err(_) => failures.push(format!("rank {rank}: notification thread died")),
            }
        }
        if !failures.is_empty() {
            let _ = std::fs::remove_dir_all(&interval_dir);
            return Err(CrError::protocol(format!(
                "checkpoint failed: {}",
                failures.join("; ")
            )));
        }

        let ranks_info: Vec<(Rank, String)> = (0..job.nprocs())
            .map(|r| {
                let rank = Rank(r);
                let node = job.node_of(rank);
                (rank, job.runtime().topology().hostname(node).to_string())
            })
            .collect();
        let chain_info: Vec<(Rank, &str, u64, u64)> = replies
            .iter()
            .map(|(r, reply)| (*r, reply.ckpt_kind.as_str(), reply.base_interval, reply.prev_interval))
            .collect();
        // Every rank wrote straight to stable storage, so bytes moved is
        // the sum of what landed there; there is no simulated fabric leg.
        let bytes_moved: u64 = replies.iter().map(|(_, reply)| reply.size_bytes).sum();
        let commit = {
            let mut global = job.global_snapshot()?;
            global.record_ckpt_chain(interval, &chain_info)?;
            global.commit_interval(interval, &ranks_info)?;
            global.commit_state(interval)
        };
        Ok(CheckpointOutcome {
            global_snapshot: job.global_snapshot_path(),
            interval,
            ranks: job.nprocs(),
            stats: CkptStats::plain(bytes_moved, 0, commit),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{launch, JobSpec, LaunchCtx};
    use crate::runtime::Runtime;
    use cr_core::inc::LayerInc;
    use cr_core::snapshot::GlobalSnapshot;
    use cr_core::CommitState;
    use mca::McaParams;
    use netsim::{LinkSpec, Topology};
    use opal::crs::{crs_framework, SelfCallbacks};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    pub(crate) fn runtime(tag: &str, nodes: u32) -> Runtime {
        let dir = std::env::temp_dir().join(format!(
            "orte_snapc_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Runtime::new(Topology::uniform(nodes, LinkSpec::gigabit_ethernet()), dir).unwrap()
    }

    /// Checkpointable spinning app: sets up CRS + OPAL INC, spins on the
    /// gate until terminated.
    fn spinning_app() -> crate::job::ProcMain {
        Arc::new(|ctx: LaunchCtx| {
            let fw = crs_framework(SelfCallbacks::new());
            ctx.container
                .set_crs(Arc::from(fw.select(&ctx.params).unwrap()));
            let rank = ctx.name.rank;
            ctx.container.register_capture(
                "app",
                Arc::new(move || Ok(codec::to_bytes(&format!("state of rank {rank}"))?)),
            );
            ctx.container
                .install_opal_inc(LayerInc::new("opal", ctx.runtime.tracer().clone()));
            ctx.container.enable_checkpointing();
            while !ctx.terminate.load(Ordering::SeqCst) {
                ctx.container.gate().checkpoint_point();
                std::thread::yield_now();
            }
            ctx.container.gate().retire();
        })
    }

    pub(crate) fn launch_spinning(rt: &Runtime, nprocs: u32, params: Arc<McaParams>) -> crate::job::JobHandle {
        let handle = launch(rt, JobSpec::new(nprocs, params, spinning_app())).unwrap();
        // Give ranks a moment to install their CRS.
        for r in 0..nprocs {
            while handle.container(Rank(r)).crs().is_none() {
                std::thread::yield_now();
            }
        }
        handle
    }

    #[test]
    fn full_checkpoint_produces_restorable_global_snapshot() {
        let rt = runtime("full", 2);
        let params = Arc::new(McaParams::new());
        let handle = launch_spinning(&rt, 4, params);
        let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        assert_eq!(outcome.ranks, 4);
        assert_eq!(outcome.interval, 0);
        assert_eq!(outcome.stats.commit, CommitState::GlobalCommitted);

        let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
        assert_eq!(global.intervals(), vec![0]);
        let locals = global.local_snapshots(0).unwrap();
        assert_eq!(locals.len(), 4);
        for (i, local) in locals.iter().enumerate() {
            assert_eq!(local.rank(), Rank(i as u32));
            assert_eq!(local.crs_component(), "blcr_sim");
            let bytes = local.read_context().unwrap();
            assert!(!bytes.is_empty());
        }
        // Node-local scratch copies were cleaned up.
        for node in handle.placement().nodes() {
            let daemon = rt.ensure_daemon(node);
            assert!(!daemon.local_interval_dir(handle.job(), 0).exists());
        }

        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn consecutive_intervals_accumulate() {
        let rt = runtime("intervals", 2);
        let handle = launch_spinning(&rt, 2, Arc::new(McaParams::new()));
        for expected in 0..3 {
            let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
            assert_eq!(outcome.interval, expected);
        }
        let global = GlobalSnapshot::open(&handle.global_snapshot_path()).unwrap();
        assert_eq!(global.intervals(), vec![0, 1, 2]);
        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn non_checkpointable_rank_fails_whole_request_without_side_effects() {
        let rt = runtime("optout", 2);
        let handle = launch_spinning(&rt, 3, Arc::new(McaParams::new()));
        handle.container(Rank(2)).set_checkpointable(false);
        let err = handle.checkpoint(&CheckpointOptions::tool()).unwrap_err();
        match err {
            CrError::NotCheckpointable { ranks } => assert_eq!(ranks, vec![Rank(2)]),
            other => panic!("unexpected error {other:?}"),
        }
        // No interval was begun or committed.
        let global = GlobalSnapshot::open(&handle.global_snapshot_path());
        if let Ok(g) = global {
            assert!(g.intervals().is_empty());
        }
        // The job is still alive and checkpointable after re-enabling.
        handle.container(Rank(2)).set_checkpointable(true);
        handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn direct_component_skips_daemons() {
        let rt = runtime("direct", 2);
        let params = Arc::new(McaParams::new());
        params.set("snapc", "direct");
        let handle = launch_spinning(&rt, 2, params);
        let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
        assert_eq!(global.local_snapshots(0).unwrap().len(), 2);
        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn checkpoint_and_terminate_stops_the_job() {
        let rt = runtime("ckptterm", 1);
        let handle = launch_spinning(&rt, 2, Arc::new(McaParams::new()));
        let outcome = handle
            .checkpoint(&CheckpointOptions::tool().and_terminate())
            .unwrap();
        assert!(outcome.global_snapshot.exists());
        // Terminate flag was set by checkpoint(); join completes.
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn figure1_event_ordering_holds() {
        let rt = runtime("fig1", 2);
        let handle = launch_spinning(&rt, 2, Arc::new(McaParams::new()));
        rt.tracer().clear();
        handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        let tracer = rt.tracer();
        // A: request precedes B: initiate precedes C: local initiate
        // precedes D: app done precedes E: local done precedes F: gather
        // precedes the reference being returned.
        tracer.assert_order("snapc.global.request", "snapc.global.initiate");
        tracer.assert_order("snapc.global.initiate", "snapc.local.initiate");
        tracer.assert_order("snapc.local.initiate", "opal.crs.checkpoint");
        tracer.assert_order("opal.crs.checkpoint", "snapc.app.done");
        tracer.assert_order("snapc.app.done", "snapc.local.done");
        tracer.assert_order("snapc.local.done", "filem.gather");
        tracer.assert_order("filem.gather", "snapc.global.reference_returned");
        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn early_release_returns_before_gather_and_promotes_after_drain() {
        let rt = runtime("early", 2);
        let params = Arc::new(McaParams::new());
        params.set("snapc_early_release", "true");
        params.set("snapc_gather_delay_ms", "150");
        let handle = launch_spinning(&rt, 4, params);
        rt.tracer().clear();
        let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        // The request came back with only the local commit done and no
        // gather wall time charged to the app.
        assert_eq!(outcome.stats.commit, CommitState::LocalCommitted);
        assert_eq!(outcome.stats.sim_ns, 0);
        {
            let global = handle.global_snapshot().unwrap();
            assert_eq!(global.commit_state(0), CommitState::LocalCommitted);
        }
        rt.tracer()
            .assert_order("snapc.global.local_commit", "snapc.global.reference_returned");

        // Joining the write-behind gather promotes the interval.
        rt.drain_writebehind();
        {
            let global = handle.global_snapshot().unwrap();
            assert_eq!(global.commit_state(0), CommitState::GlobalCommitted);
        }
        // The gather ran after the reference was already returned.
        rt.tracer()
            .assert_order("snapc.global.reference_returned", "filem.gather");
        rt.tracer()
            .assert_order("filem.gather", "snapc.global.global_commit");

        // A fresh reader sees a complete, restorable interval.
        let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
        assert_eq!(global.intervals(), vec![0]);
        assert_eq!(global.local_snapshots(0).unwrap().len(), 4);

        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn early_release_intervals_do_not_collide() {
        let rt = runtime("early_seq", 2);
        let params = Arc::new(McaParams::new());
        params.set("snapc_early_release", "true");
        params.set("snapc_gather_delay_ms", "100");
        let handle = launch_spinning(&rt, 2, params);
        // Second request fires while the first interval is still only
        // locally committed; numbering must still advance.
        let first = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        let second = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        assert_eq!(first.interval, 0);
        assert_eq!(second.interval, 1);
        rt.drain_writebehind();
        let global = GlobalSnapshot::open(&handle.global_snapshot_path()).unwrap();
        assert_eq!(global.intervals(), vec![0, 1]);
        assert_eq!(global.commit_state(0), CommitState::GlobalCommitted);
        assert_eq!(global.commit_state(1), CommitState::GlobalCommitted);
        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn failed_local_checkpoint_leaves_interval_uncommitted() {
        let rt = runtime("failure", 1);
        let params = Arc::new(McaParams::new());
        params.set("crs_blcr_sim_fail_every", "1"); // every checkpoint fails
        let handle = launch_spinning(&rt, 2, params);
        let err = handle.checkpoint(&CheckpointOptions::tool()).unwrap_err();
        assert!(err.to_string().contains("injected failure"));
        let global = GlobalSnapshot::open(&handle.global_snapshot_path()).unwrap();
        assert!(global.intervals().is_empty());
        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }
}

#[cfg(test)]
mod tree_tests {
    use super::*;
    use crate::snapc::tests::{launch_spinning, runtime};
    use cr_core::request::CheckpointOptions;
    use cr_core::snapshot::GlobalSnapshot;
    use mca::McaParams;
    use std::sync::Arc;

    #[test]
    fn binomial_tree_covers_all_nodes_once() {
        let nodes: Vec<netsim::NodeId> = (0..7).map(netsim::NodeId).collect();
        let endpoints: Vec<u64> = (100..107).collect();
        let children = binomial_tree(&nodes, &endpoints);
        // Collect every node covered by the root's children.
        fn collect(spec: &crate::oob::TreeSpec, out: &mut Vec<u32>) {
            out.push(spec.node);
            for c in &spec.children {
                collect(c, out);
            }
        }
        let mut covered = Vec::new();
        for c in &children {
            collect(c, &mut covered);
        }
        covered.sort_unstable();
        // Root (node 0) is not in its own child list; everyone else once.
        assert_eq!(covered, (1..7).collect::<Vec<u32>>());
        // Root has ceil(log2(7)) = 3 children: 1, 2, 4.
        let roots: Vec<u32> = children.iter().map(|c| c.node).collect();
        assert_eq!(roots, vec![1, 2, 4]);
    }

    #[test]
    fn tree_checkpoint_produces_complete_snapshot() {
        let rt = runtime("tree", 4);
        let params = Arc::new(McaParams::new());
        params.set("snapc", "tree");
        let handle = launch_spinning(&rt, 8, params);
        rt.tracer().clear();
        let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        assert_eq!(outcome.ranks, 8);

        let global = GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
        let locals = global.local_snapshots(outcome.interval).unwrap();
        assert_eq!(locals.len(), 8);

        // The fan-out actually went through the tree: forwards recorded,
        // and the HNP received exactly one aggregated reply (no per-node
        // local_done events at the global coordinator).
        assert!(rt.tracer().count_prefix("snapc.tree.forward") >= 3);
        assert_eq!(rt.tracer().count_prefix("snapc.global.local_done"), 0);

        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn tree_on_single_node_degenerates_cleanly() {
        let rt = runtime("tree1", 1);
        let params = Arc::new(McaParams::new());
        params.set("snapc", "tree");
        let handle = launch_spinning(&rt, 2, params);
        let outcome = handle.checkpoint(&CheckpointOptions::tool()).unwrap();
        assert_eq!(outcome.ranks, 2);
        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }
}
