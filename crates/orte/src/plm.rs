//! PLM — the process launch framework.
//!
//! Maps a job's ranks onto nodes and accounts the simulated cost of
//! launching them. Two components mirror the real framework's spread:
//!
//! * **`rsh_sim`** — ssh-style launch: one session per remote process,
//!   started sequentially from the head node. Cheap to have, slow at scale.
//! * **`slurm_sim`** — batch-scheduler launch: the daemons start processes
//!   in parallel, one launch wave per node.
//!
//! Placement policy is controlled by the `plm_map_by` MCA parameter:
//! `node` (round-robin across nodes, the default) or `slot` (fill each
//! node's slots before moving on, slot count from `plm_slots_per_node`).

use mca::{Framework, McaParams};
use netsim::{NodeId, SimTime, Topology};

use cr_core::CrError;

/// A computed job mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Node of each rank (index = rank).
    pub node_of: Vec<NodeId>,
    /// Simulated wall time to launch the job with this component.
    pub launch_cost: SimTime,
}

impl Placement {
    /// Distinct nodes that host at least one rank, ascending.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.node_of.clone();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Ranks placed on `node`, ascending.
    pub fn ranks_on(&self, node: NodeId) -> Vec<u32> {
        self.node_of
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == node)
            .map(|(r, _)| r as u32)
            .collect()
    }
}

/// A process launch component.
pub trait PlmComponent: Send + Sync {
    /// Component name.
    fn name(&self) -> &'static str;

    /// Compute the placement and launch cost for `nprocs` ranks.
    fn map_job(
        &self,
        nprocs: u32,
        topology: &Topology,
        params: &McaParams,
    ) -> Result<Placement, CrError>;
}

fn assign_nodes(
    nprocs: u32,
    topology: &Topology,
    params: &McaParams,
) -> Result<Vec<NodeId>, CrError> {
    if nprocs == 0 {
        return Err(CrError::Unsupported {
            detail: "cannot launch a job with zero processes".into(),
        });
    }
    let map_by = params.get("plm_map_by").unwrap_or_else(|| "node".into());
    // The spare pool (`orte_spare_nodes`) holds the last N topology nodes
    // out of placement: they idle until a partial restart claims one for
    // a failed rank, so a node loss never has to wait for repair.
    let spares: u32 = params
        .get_parsed_or("orte_spare_nodes", 0u32)
        .map_err(|e| CrError::Unsupported { detail: e.to_string() })?;
    let total = topology.len() as u32;
    if spares >= total {
        return Err(CrError::Unsupported {
            detail: format!(
                "orte_spare_nodes={spares} leaves no usable nodes in a {total}-node cluster"
            ),
        });
    }
    let n_nodes = total - spares;
    match map_by.as_str() {
        "node" => Ok((0..nprocs).map(|r| NodeId(r % n_nodes)).collect()),
        "slot" => {
            let slots: u32 = params
                .get_parsed_or("plm_slots_per_node", 2u32)
                .map_err(|e| CrError::Unsupported { detail: e.to_string() })?;
            if slots == 0 {
                return Err(CrError::Unsupported {
                    detail: "plm_slots_per_node must be positive".into(),
                });
            }
            if nprocs > n_nodes * slots {
                return Err(CrError::Unsupported {
                    detail: format!(
                        "job needs {nprocs} slots but the cluster has {} ({} nodes x {slots})",
                        n_nodes * slots,
                        n_nodes
                    ),
                });
            }
            Ok((0..nprocs).map(|r| NodeId(r / slots)).collect())
        }
        other => Err(CrError::Unsupported {
            detail: format!("unknown plm_map_by policy {other:?} (use node or slot)"),
        }),
    }
}

/// ssh-style sequential launcher.
pub struct RshSimPlm {
    per_proc: SimTime,
}

impl RshSimPlm {
    /// Build from MCA parameters (`plm_rsh_sim_session_ms`).
    pub fn from_params(params: &McaParams) -> Self {
        let ms = params.get_parsed_or("plm_rsh_sim_session_ms", 150u64).unwrap_or(150);
        RshSimPlm {
            per_proc: SimTime::from_millis(ms),
        }
    }
}

impl PlmComponent for RshSimPlm {
    fn name(&self) -> &'static str {
        "rsh_sim"
    }

    fn map_job(
        &self,
        nprocs: u32,
        topology: &Topology,
        params: &McaParams,
    ) -> Result<Placement, CrError> {
        let node_of = assign_nodes(nprocs, topology, params)?;
        // One ssh session per process, strictly sequential.
        Ok(Placement {
            launch_cost: self.per_proc * u64::from(nprocs),
            node_of,
        })
    }
}

/// Batch-scheduler-style parallel launcher.
pub struct SlurmSimPlm {
    per_wave: SimTime,
    setup: SimTime,
}

impl SlurmSimPlm {
    /// Build from MCA parameters (`plm_slurm_sim_wave_ms`,
    /// `plm_slurm_sim_setup_ms`).
    pub fn from_params(params: &McaParams) -> Self {
        let wave = params.get_parsed_or("plm_slurm_sim_wave_ms", 40u64).unwrap_or(40);
        let setup = params.get_parsed_or("plm_slurm_sim_setup_ms", 500u64).unwrap_or(500);
        SlurmSimPlm {
            per_wave: SimTime::from_millis(wave),
            setup: SimTime::from_millis(setup),
        }
    }
}

impl PlmComponent for SlurmSimPlm {
    fn name(&self) -> &'static str {
        "slurm_sim"
    }

    fn map_job(
        &self,
        nprocs: u32,
        topology: &Topology,
        params: &McaParams,
    ) -> Result<Placement, CrError> {
        let node_of = assign_nodes(nprocs, topology, params)?;
        // All nodes launch in parallel: cost = setup + waves on the busiest
        // node.
        let mut per_node = std::collections::HashMap::new();
        for n in &node_of {
            *per_node.entry(*n).or_insert(0u64) += 1;
        }
        let max_waves = per_node.values().copied().max().unwrap_or(0);
        Ok(Placement {
            launch_cost: self.setup + self.per_wave * max_waves,
            node_of,
        })
    }
}

/// Assemble the PLM framework (rsh_sim is the default, as in clusters with
/// no batch scheduler — the environment the paper's tools target).
pub fn plm_framework() -> Framework<dyn PlmComponent> {
    let mut fw: Framework<dyn PlmComponent> = Framework::new("plm");
    fw.register("rsh_sim", 20, "ssh-style sequential launch", |p| {
        Box::new(RshSimPlm::from_params(p))
    });
    fw.register("slurm_sim", 10, "batch-scheduler parallel launch", |p| {
        Box::new(SlurmSimPlm::from_params(p))
    });
    fw
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkSpec;

    fn topo(n: u32) -> Topology {
        Topology::uniform(n, LinkSpec::gigabit_ethernet())
    }

    #[test]
    fn round_robin_by_node_default() {
        let plm = RshSimPlm::from_params(&McaParams::new());
        let p = plm.map_job(5, &topo(3), &McaParams::new()).unwrap();
        assert_eq!(
            p.node_of,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(0), NodeId(1)]
        );
        assert_eq!(p.nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(p.ranks_on(NodeId(0)), vec![0, 3]);
    }

    #[test]
    fn map_by_slot_fills_nodes() {
        let params = McaParams::new();
        params.set("plm_map_by", "slot");
        params.set("plm_slots_per_node", "2");
        let plm = RshSimPlm::from_params(&params);
        let p = plm.map_job(4, &topo(3), &params).unwrap();
        assert_eq!(p.node_of, vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)]);
    }

    #[test]
    fn oversubscription_by_slot_is_rejected() {
        let params = McaParams::new();
        params.set("plm_map_by", "slot");
        params.set("plm_slots_per_node", "1");
        let plm = RshSimPlm::from_params(&params);
        assert!(plm.map_job(4, &topo(2), &params).is_err());
    }

    #[test]
    fn spare_nodes_held_out_of_placement() {
        let params = McaParams::new();
        params.set("orte_spare_nodes", "1");
        let plm = RshSimPlm::from_params(&params);
        // 3-node cluster, 1 spare: ranks round-robin over nodes 0 and 1 only.
        let p = plm.map_job(4, &topo(3), &params).unwrap();
        assert_eq!(
            p.node_of,
            vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)]
        );
        // Reserving the whole cluster is rejected.
        params.set("orte_spare_nodes", "3");
        assert!(plm.map_job(1, &topo(3), &params).is_err());
    }

    #[test]
    fn zero_procs_rejected() {
        let plm = RshSimPlm::from_params(&McaParams::new());
        assert!(plm.map_job(0, &topo(1), &McaParams::new()).is_err());
    }

    #[test]
    fn unknown_policy_rejected() {
        let params = McaParams::new();
        params.set("plm_map_by", "rack");
        let plm = RshSimPlm::from_params(&params);
        let err = plm.map_job(2, &topo(2), &params).unwrap_err();
        assert!(err.to_string().contains("rack"));
    }

    #[test]
    fn rsh_cost_scales_linearly_slurm_does_not() {
        let params = McaParams::new();
        let rsh = RshSimPlm::from_params(&params);
        let slurm = SlurmSimPlm::from_params(&params);
        let t = topo(8);
        let rsh8 = rsh.map_job(8, &t, &params).unwrap().launch_cost;
        let rsh16 = rsh.map_job(16, &t, &params).unwrap().launch_cost;
        assert_eq!(rsh16, rsh8 * 2);
        let slurm8 = slurm.map_job(8, &t, &params).unwrap().launch_cost;
        let slurm16 = slurm.map_job(16, &t, &params).unwrap().launch_cost;
        // Doubling procs on the same nodes adds one wave, not 8 sessions.
        assert!(slurm16 < slurm8 * 2);
        // At scale, slurm beats rsh.
        assert!(slurm16 < rsh16);
    }

    #[test]
    fn framework_default_selection() {
        let fw = plm_framework();
        let params = McaParams::new();
        assert_eq!(fw.select(&params).unwrap().name(), "rsh_sim");
        params.set("plm", "slurm_sim");
        assert_eq!(fw.select(&params).unwrap().name(), "slurm_sim");
    }
}
