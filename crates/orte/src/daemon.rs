//! The per-node daemon (`orted`) — SNAPC's *local coordinator*.
//!
//! One daemon runs on every node that hosts application processes. For
//! checkpointing it (paper Figure 1, boxes C–E):
//!
//! * reports which of its local processes are checkpointable,
//! * on a checkpoint request, prepares the node-local interval directory
//!   and notifies **all** of its local processes before collecting any
//!   completion — every rank must enter the coordination protocol
//!   concurrently or the bookmark exchange deadlocks,
//! * reports the produced local snapshot references back to the global
//!   coordinator, and
//! * removes node-local scratch snapshots after they have been gathered to
//!   stable storage.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::Sender;
use netsim::{EndpointId, Fabric, NodeId};
use parking_lot::Mutex;

use cr_core::request::CheckpointOptions;
use cr_core::{CrError, JobId, Rank, Tracer};
use opal::container::{CkptReply, OpalCtrl};
use opal::ProcessContainer;

use crate::oob::{recv_oob, send_oob, DaemonMsg, DaemonReply, RankCkpt};
use crate::replica::ReplicaStore;

/// Pending per-rank checkpoint completions (phase 1 output of a local
/// checkpoint).
type PendingLocal = Vec<(Rank, crossbeam::channel::Receiver<Result<CkptReply, CrError>>)>;

/// A process registered with its node daemon.
struct LocalProc {
    container: Arc<ProcessContainer>,
    ctrl: Sender<OpalCtrl>,
}

/// Handle to a running per-node daemon.
pub struct Orted {
    node: NodeId,
    endpoint_id: EndpointId,
    fabric: Fabric,
    node_dir: PathBuf,
    tracer: Tracer,
    procs: Mutex<HashMap<(JobId, Rank), LocalProc>>,
    replicas: ReplicaStore,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Orted {
    /// Spawn the daemon thread for `node`, with `node_dir` as its
    /// node-local scratch directory.
    pub fn spawn(fabric: Fabric, node: NodeId, node_dir: PathBuf, tracer: Tracer) -> Arc<Orted> {
        let endpoint = fabric.register(node);
        let daemon = Arc::new(Orted {
            node,
            endpoint_id: endpoint.id(),
            fabric,
            node_dir,
            tracer,
            procs: Mutex::new(HashMap::new()),
            replicas: ReplicaStore::new(),
            thread: Mutex::new(None),
        });
        let runner = Arc::clone(&daemon);
        let handle = std::thread::Builder::new()
            .name(format!("orted-{node}"))
            .spawn(move || runner.serve(endpoint))
            .expect("spawn orted");
        *daemon.thread.lock() = Some(handle);
        daemon
    }

    /// This daemon's OOB address.
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint_id
    }

    /// Node this daemon manages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This daemon's in-memory replica store (volatile peer memory: dies
    /// with the daemon, which is the point).
    pub fn replicas(&self) -> &ReplicaStore {
        &self.replicas
    }

    /// Node-local directory that holds interval scratch snapshots for a
    /// job/interval pair.
    pub fn local_interval_dir(&self, job: JobId, interval: u64) -> PathBuf {
        self.node_dir
            .join("ckpt")
            .join(job.to_string())
            .join(interval.to_string())
    }

    /// Register a local process (called by the launcher).
    pub fn register_proc(
        &self,
        job: JobId,
        rank: Rank,
        container: Arc<ProcessContainer>,
        ctrl: Sender<OpalCtrl>,
    ) {
        self.procs
            .lock()
            .insert((job, rank), LocalProc { container, ctrl });
    }

    /// Remove a job's processes from this daemon (job teardown).
    pub fn deregister_job(&self, job: JobId) {
        self.procs.lock().retain(|(j, _), _| *j != job);
    }

    /// Ranks of `job` hosted on this node, ascending.
    pub fn local_ranks(&self, job: JobId) -> Vec<Rank> {
        let mut ranks: Vec<Rank> = self
            .procs
            .lock()
            .keys()
            .filter(|(j, _)| *j == job)
            .map(|(_, r)| *r)
            .collect();
        ranks.sort_unstable();
        ranks
    }

    /// Ask the daemon thread to exit and wait for it.
    pub fn shutdown(&self) {
        {
            // Best effort: the daemon may already be gone.
            let ctl = self.fabric.register(self.node);
            let _ = send_oob(&self.fabric, ctl.id(), self.endpoint_id, &DaemonMsg::Shutdown);
        }
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }

    // -- daemon thread ------------------------------------------------------

    fn serve(self: Arc<Self>, endpoint: netsim::Endpoint) {
        loop {
            let msg: DaemonMsg = match recv_oob(&endpoint) {
                Ok(m) => m,
                Err(_) => return, // fabric torn down
            };
            match msg {
                DaemonMsg::Shutdown => return,
                DaemonMsg::QueryCheckpointable { job, reply_to } => {
                    let ranks: Vec<(u32, bool)> = {
                        let procs = self.procs.lock();
                        let mut v: Vec<(u32, bool)> = procs
                            .iter()
                            .filter(|((j, _), _)| *j == job)
                            .map(|((_, r), p)| (r.0, p.container.is_checkpointable()))
                            .collect();
                        v.sort_unstable();
                        v
                    };
                    let _ = send_oob(
                        &self.fabric,
                        self.endpoint_id,
                        EndpointId(reply_to),
                        &DaemonReply::Checkpointable {
                            node: self.node.0,
                            ranks,
                        },
                    );
                }
                DaemonMsg::CheckpointLocal {
                    job,
                    interval,
                    reply_to,
                } => {
                    let reply = match self.checkpoint_local(job, interval) {
                        Ok(results) => DaemonReply::LocalDone {
                            node: self.node.0,
                            results,
                        },
                        Err(e) => DaemonReply::Error {
                            node: self.node.0,
                            detail: e.to_string(),
                        },
                    };
                    let _ =
                        send_oob(&self.fabric, self.endpoint_id, EndpointId(reply_to), &reply);
                }
                DaemonMsg::CheckpointTree {
                    job,
                    interval,
                    children,
                    reply_to,
                } => {
                    let reply = match self.checkpoint_tree(job, interval, &children, &endpoint) {
                        Ok(results) => DaemonReply::TreeDone {
                            node: self.node.0,
                            results,
                        },
                        Err(e) => DaemonReply::Error {
                            node: self.node.0,
                            detail: e.to_string(),
                        },
                    };
                    let _ =
                        send_oob(&self.fabric, self.endpoint_id, EndpointId(reply_to), &reply);
                }
                DaemonMsg::Cleanup {
                    job,
                    interval,
                    reply_to,
                } => {
                    let dir = self.local_interval_dir(job, interval);
                    let _ = std::fs::remove_dir_all(&dir);
                    self.tracer
                        .record("filem.local.remove", &dir.display().to_string());
                    let _ = send_oob(
                        &self.fabric,
                        self.endpoint_id,
                        EndpointId(reply_to),
                        &DaemonReply::CleanupAck { node: self.node.0 },
                    );
                }
                DaemonMsg::ReplicaPut {
                    job,
                    interval,
                    image,
                    reply_to,
                } => {
                    self.replicas.put(job, interval, image);
                    let _ = send_oob(
                        &self.fabric,
                        self.endpoint_id,
                        EndpointId(reply_to),
                        &DaemonReply::ReplicaStored { node: self.node.0 },
                    );
                }
                DaemonMsg::ReplicaFetch {
                    job,
                    interval,
                    rank,
                    reply_to,
                } => {
                    let image = self.replicas.get(job, interval, rank);
                    let _ = send_oob(
                        &self.fabric,
                        self.endpoint_id,
                        EndpointId(reply_to),
                        &DaemonReply::ReplicaImageReply {
                            node: self.node.0,
                            image,
                        },
                    );
                }
                DaemonMsg::ReplicaExpire {
                    job,
                    interval,
                    reply_to,
                } => {
                    let removed = self.replicas.expire_interval(job, interval);
                    let _ = send_oob(
                        &self.fabric,
                        self.endpoint_id,
                        EndpointId(reply_to),
                        &DaemonReply::ReplicaExpired {
                            node: self.node.0,
                            removed,
                        },
                    );
                }
                DaemonMsg::ReplicaInventory { job, reply_to } => {
                    let entries = self.replicas.inventory(job);
                    let _ = send_oob(
                        &self.fabric,
                        self.endpoint_id,
                        EndpointId(reply_to),
                        &DaemonReply::ReplicaHolding {
                            node: self.node.0,
                            entries,
                        },
                    );
                }
                DaemonMsg::ChunkPut {
                    job,
                    chunks,
                    reply_to,
                } => {
                    for (id, bytes) in chunks {
                        self.replicas.put_chunk(job, id, bytes);
                    }
                    let _ = send_oob(
                        &self.fabric,
                        self.endpoint_id,
                        EndpointId(reply_to),
                        &DaemonReply::ChunkStored { node: self.node.0 },
                    );
                }
                DaemonMsg::ChunkFetch { job, ids, reply_to } => {
                    let chunks = ids
                        .iter()
                        .map(|id| self.replicas.get_chunk(job, id))
                        .collect();
                    let _ = send_oob(
                        &self.fabric,
                        self.endpoint_id,
                        EndpointId(reply_to),
                        &DaemonReply::ChunkData {
                            node: self.node.0,
                            chunks,
                        },
                    );
                }
                DaemonMsg::ChunkExpire { job, ids, reply_to } => {
                    let removed = self.replicas.expire_chunks(job, &ids);
                    let _ = send_oob(
                        &self.fabric,
                        self.endpoint_id,
                        EndpointId(reply_to),
                        &DaemonReply::ChunkExpired {
                            node: self.node.0,
                            removed,
                        },
                    );
                }
            }
        }
    }

    /// Drive the local checkpoint of every local rank of `job`.
    fn checkpoint_local(
        &self,
        job: JobId,
        interval: u64,
    ) -> Result<Vec<RankCkpt>, CrError> {
        let waits = self.notify_local(job, interval)?;
        self.collect_local(interval, waits)
    }

    /// Hierarchical checkpoint: forward into the subtrees first (children
    /// proceed concurrently), then checkpoint the local ranks, then
    /// aggregate local and subtree results.
    fn checkpoint_tree(
        &self,
        job: JobId,
        interval: u64,
        children: &[crate::oob::TreeSpec],
        endpoint: &netsim::Endpoint,
    ) -> Result<Vec<(u32, RankCkpt)>, CrError> {
        for child in children {
            send_oob(
                &self.fabric,
                self.endpoint_id,
                EndpointId(child.endpoint),
                &DaemonMsg::CheckpointTree {
                    job,
                    interval,
                    children: child.children.clone(),
                    reply_to: self.endpoint_id.0,
                },
            )?;
            self.tracer.record(
                "snapc.tree.forward",
                &format!("{} -> node {}", self.node, child.node),
            );
        }
        let waits = self.notify_local(job, interval)?;
        let mut results: Vec<(u32, RankCkpt)> = self
            .collect_local(interval, waits)?
            .into_iter()
            .map(|ckpt| (self.node.0, ckpt))
            .collect();
        let mut failures = Vec::new();
        for _ in children {
            match crate::oob::recv_oob_timeout::<DaemonReply>(
                endpoint,
                std::time::Duration::from_secs(120),
            )? {
                DaemonReply::TreeDone {
                    results: sub_results,
                    ..
                } => {
                    results.extend(
                        sub_results,
                    );
                }
                DaemonReply::Error { node, detail } => {
                    failures.push(format!("subtree node {node}: {detail}"));
                }
                other => failures.push(format!("unexpected subtree reply: {other:?}")),
            }
        }
        if failures.is_empty() {
            Ok(results)
        } else {
            Err(CrError::protocol(failures.join("; ")))
        }
    }

    /// Phase 1 of a local checkpoint: prepare the interval directory and
    /// notify every local process (without waiting in between — all ranks
    /// must enter coordination concurrently).
    fn notify_local(
        &self,
        job: JobId,
        interval: u64,
    ) -> Result<PendingLocal, CrError> {
        let dir = self.local_interval_dir(job, interval);
        std::fs::create_dir_all(&dir).map_err(|e| CrError::io(dir.display().to_string(), &e))?;
        self.tracer.record(
            "snapc.local.initiate",
            &format!("{} interval {interval}", self.node),
        );

        let mut waits: PendingLocal = Vec::new();
        {
            let procs = self.procs.lock();
            let mut local: Vec<(&(JobId, Rank), &LocalProc)> =
                procs.iter().filter(|((j, _), _)| *j == job).collect();
            local.sort_by_key(|((_, r), _)| *r);
            for ((_, rank), proc_entry) in local {
                let (rtx, rrx) = crossbeam::channel::bounded(1);
                proc_entry
                    .ctrl
                    .send(OpalCtrl::Checkpoint {
                        snapshot_parent: dir.clone(),
                        interval,
                        options: CheckpointOptions::tool(),
                        reply: rtx,
                    })
                    .map_err(|_| CrError::PeerLost {
                        detail: format!("process {rank} notification channel closed"),
                    })?;
                waits.push((*rank, rrx));
            }
        }

        if waits.is_empty() {
            return Err(CrError::protocol(format!(
                "daemon on {} has no processes of {job}",
                self.node
            )));
        }
        Ok(waits)
    }

    /// Phase 2 of a local checkpoint: collect completions.
    fn collect_local(
        &self,
        interval: u64,
        waits: PendingLocal,
    ) -> Result<Vec<RankCkpt>, CrError> {
        let mut results = Vec::with_capacity(waits.len());
        let mut failures = Vec::new();
        for (rank, rrx) in waits {
            match rrx.recv() {
                Ok(Ok(reply)) => {
                    self.tracer
                        .record("snapc.app.done", &format!("rank {rank}"));
                    results.push(RankCkpt {
                        rank: rank.0,
                        dir: reply.snapshot_dir,
                        bytes: reply.size_bytes,
                        kind: reply.ckpt_kind,
                        base_interval: reply.base_interval,
                        prev_interval: reply.prev_interval,
                    });
                }
                Ok(Err(e)) => failures.push(format!("rank {rank}: {e}")),
                Err(_) => failures.push(format!("rank {rank}: notification thread died")),
            }
        }
        if !failures.is_empty() {
            return Err(CrError::protocol(failures.join("; ")));
        }
        self.tracer.record(
            "snapc.local.done",
            &format!("{} interval {interval}", self.node),
        );
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::inc::LayerInc;
    use cr_core::ProcessName;
    use mca::McaParams;
    use netsim::{LinkSpec, Topology};
    use opal::crs::{crs_framework, SelfCallbacks};
    use std::time::Duration;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "orte_daemon_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Minimal checkpointable process: container + notification thread +
    /// an app thread spinning on the gate.
    fn spawn_proc(
        job: JobId,
        rank: Rank,
        tracer: &Tracer,
        stop: Arc<std::sync::atomic::AtomicBool>,
    ) -> (Arc<ProcessContainer>, Sender<OpalCtrl>, JoinHandle<()>) {
        let container = ProcessContainer::new(ProcessName::new(job, rank), "node00", tracer.clone());
        let fw = crs_framework(SelfCallbacks::new());
        container.set_crs(Arc::from(fw.select(&McaParams::new()).unwrap()));
        container.register_capture("app", Arc::new(move || Ok(vec![0xAB; 64])));
        container.install_opal_inc(LayerInc::new("opal", tracer.clone()));
        container.enable_checkpointing();
        let (tx, rx) = crossbeam::channel::unbounded();
        container.spawn_notification_thread(rx);
        let gate = Arc::clone(container.gate());
        let app = std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                gate.checkpoint_point();
                std::thread::yield_now();
            }
            gate.retire();
        });
        (container, tx, app)
    }

    #[test]
    fn daemon_checkpoints_all_local_procs() {
        let fabric = Fabric::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()));
        let tracer = Tracer::new();
        let dir = tmpdir("local");
        let daemon = Orted::spawn(fabric.clone(), NodeId(1), dir, tracer.clone());

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let job = JobId(5);
        let mut apps = Vec::new();
        for r in 0..3 {
            let (container, tx, app) = spawn_proc(job, Rank(r), &tracer, Arc::clone(&stop));
            daemon.register_proc(job, Rank(r), container, tx);
            apps.push(app);
        }
        assert_eq!(daemon.local_ranks(job), vec![Rank(0), Rank(1), Rank(2)]);

        // Act as the global coordinator.
        let hnp = fabric.register(NodeId(0));
        send_oob(
            &fabric,
            hnp.id(),
            daemon.endpoint(),
            &DaemonMsg::CheckpointLocal {
                job,
                interval: 0,
                reply_to: hnp.id().0,
            },
        )
        .unwrap();
        let reply: DaemonReply = recv_oob(&hnp).unwrap();
        match reply {
            DaemonReply::LocalDone { node, results } => {
                assert_eq!(node, 1);
                assert_eq!(results.len(), 3);
                for ckpt in &results {
                    assert!(ckpt.dir.exists(), "rank {} snapshot missing", ckpt.rank);
                    assert!(ckpt.bytes > 0);
                    assert_eq!(ckpt.kind, "full");
                    assert_eq!(ckpt.base_interval, 0);
                }
            }
            other => panic!("unexpected reply {other:?}"),
        }

        // Cleanup removes the scratch directory.
        send_oob(
            &fabric,
            hnp.id(),
            daemon.endpoint(),
            &DaemonMsg::Cleanup {
                job,
                interval: 0,
                reply_to: hnp.id().0,
            },
        )
        .unwrap();
        let reply: DaemonReply = recv_oob(&hnp).unwrap();
        assert_eq!(reply, DaemonReply::CleanupAck { node: 1 });
        assert!(!daemon.local_interval_dir(job, 0).exists());

        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        for app in apps {
            app.join().unwrap();
        }
        daemon.shutdown();
    }

    #[test]
    fn query_checkpointable_reflects_opt_out() {
        let fabric = Fabric::new(Topology::uniform(1, LinkSpec::gigabit_ethernet()));
        let tracer = Tracer::new();
        let daemon = Orted::spawn(fabric.clone(), NodeId(0), tmpdir("query"), tracer.clone());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(true)); // app exits at once
        let job = JobId(7);
        let (c0, tx0, a0) = spawn_proc(job, Rank(0), &tracer, Arc::clone(&stop));
        let (c1, tx1, a1) = spawn_proc(job, Rank(1), &tracer, Arc::clone(&stop));
        c1.set_checkpointable(false);
        daemon.register_proc(job, Rank(0), Arc::clone(&c0), tx0);
        daemon.register_proc(job, Rank(1), Arc::clone(&c1), tx1);

        let hnp = fabric.register(NodeId(0));
        send_oob(
            &fabric,
            hnp.id(),
            daemon.endpoint(),
            &DaemonMsg::QueryCheckpointable {
                job,
                reply_to: hnp.id().0,
            },
        )
        .unwrap();
        let reply: DaemonReply = recv_oob(&hnp).unwrap();
        assert_eq!(
            reply,
            DaemonReply::Checkpointable {
                node: 0,
                ranks: vec![(0, true), (1, false)],
            }
        );
        a0.join().unwrap();
        a1.join().unwrap();
        daemon.shutdown();
    }

    #[test]
    fn checkpoint_with_no_procs_is_an_error() {
        let fabric = Fabric::new(Topology::uniform(1, LinkSpec::gigabit_ethernet()));
        let daemon = Orted::spawn(fabric.clone(), NodeId(0), tmpdir("empty"), Tracer::new());
        let hnp = fabric.register(NodeId(0));
        send_oob(
            &fabric,
            hnp.id(),
            daemon.endpoint(),
            &DaemonMsg::CheckpointLocal {
                job: JobId(1),
                interval: 0,
                reply_to: hnp.id().0,
            },
        )
        .unwrap();
        let reply: DaemonReply =
            crate::oob::recv_oob_timeout(&hnp, Duration::from_secs(5)).unwrap();
        assert!(matches!(reply, DaemonReply::Error { .. }));
        daemon.shutdown();
    }

    #[test]
    fn failing_rank_fails_the_node_but_daemon_survives() {
        let fabric = Fabric::new(Topology::uniform(1, LinkSpec::gigabit_ethernet()));
        let tracer = Tracer::new();
        let daemon = Orted::spawn(fabric.clone(), NodeId(0), tmpdir("fail"), tracer.clone());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let job = JobId(2);
        let (c0, tx0, a0) = spawn_proc(job, Rank(0), &tracer, Arc::clone(&stop));
        // Rank 1's window is closed: its checkpoint will fail.
        let (c1, tx1, a1) = spawn_proc(job, Rank(1), &tracer, Arc::clone(&stop));
        c1.disable_checkpointing("testing failure path");
        daemon.register_proc(job, Rank(0), c0, tx0);
        daemon.register_proc(job, Rank(1), c1, tx1);

        let hnp = fabric.register(NodeId(0));
        send_oob(
            &fabric,
            hnp.id(),
            daemon.endpoint(),
            &DaemonMsg::CheckpointLocal {
                job,
                interval: 0,
                reply_to: hnp.id().0,
            },
        )
        .unwrap();
        let reply: DaemonReply = recv_oob(&hnp).unwrap();
        match reply {
            DaemonReply::Error { detail, .. } => assert!(detail.contains("rank 1")),
            other => panic!("expected error, got {other:?}"),
        }
        // Daemon still answers queries.
        send_oob(
            &fabric,
            hnp.id(),
            daemon.endpoint(),
            &DaemonMsg::QueryCheckpointable {
                job,
                reply_to: hnp.id().0,
            },
        )
        .unwrap();
        let _: DaemonReply = recv_oob(&hnp).unwrap();
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        a0.join().unwrap();
        a1.join().unwrap();
        daemon.shutdown();
    }
}
