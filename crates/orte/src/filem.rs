//! FILEM — the remote file management framework (paper §5.2/§6.2).
//!
//! FILEM moves checkpoint files between node-local disks and stable
//! storage: *gather* pulls every rank's local snapshot into the global
//! snapshot directory, *broadcast* preloads files onto nodes before a
//! restart, and *remove* cleans up scratch copies. The framework interface
//! accepts batches so components can schedule transfers to avoid
//! congesting the network.
//!
//! Components:
//!
//! * **`rsh_sim`** — models `scp -r`: one session per *file*, so the
//!   simulated cost carries a per-file overhead on top of the wire time.
//! * **`oob_stream`** — models streaming a whole tree through one
//!   connection (tar-over-ssh style): one session per *tree*.
//! * **`replica`** — peer-memory first (see [`crate::replica`]): SNAPC
//!   commits images into surviving daemons' memory and drains them to
//!   stable storage asynchronously (write-behind). Its `copy_tree` is the
//!   drain/preload engine — a streamed copy with a near-zero session
//!   setup, since the stream originates from memory, not an `scp`
//!   handshake.
//!
//! All components physically copy files on the host filesystem (the trees
//! are real); only the *cost* is simulated, via the topology's link model.
//!
//! FILEM is deliberately payload-agnostic: with incremental checkpointing
//! enabled the gathered context files are delta contexts holding only the
//! dirty chunks, so the reported bytes and simulated wire time shrink
//! proportionally without any FILEM-side special casing.

use std::fs;
use std::path::{Path, PathBuf};

use mca::{Framework, McaParams};
use netsim::{NodeId, SimTime, Topology};

use cr_core::CrError;

/// Outcome of one FILEM operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilemReport {
    /// Files moved.
    pub files: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Simulated transfer time.
    pub sim_cost: SimTime,
}

impl FilemReport {
    /// Accumulate another report.
    pub fn merge(&mut self, other: FilemReport) {
        self.files += other.files;
        self.bytes += other.bytes;
        self.sim_cost += other.sim_cost;
    }
}

/// One file movement request (a batch of these forms an operation).
#[derive(Debug, Clone)]
pub struct CopyRequest {
    /// Source tree (file or directory).
    pub src: PathBuf,
    /// Node the source lives on.
    pub src_node: NodeId,
    /// Destination path (created/overwritten).
    pub dest: PathBuf,
    /// Node the destination lives on.
    pub dest_node: NodeId,
}

/// A file management component.
pub trait FilemComponent: Send + Sync {
    /// Component name.
    fn name(&self) -> &'static str;

    /// Copy a batch of trees. The default walks the batch sequentially;
    /// components may reorder or group to optimize.
    fn copy_all(&self, topology: &Topology, batch: &[CopyRequest]) -> Result<FilemReport, CrError> {
        let mut total = FilemReport::default();
        for req in batch {
            total.merge(self.copy_tree(topology, req)?);
        }
        Ok(total)
    }

    /// Copy one tree.
    fn copy_tree(&self, topology: &Topology, req: &CopyRequest) -> Result<FilemReport, CrError>;

    /// Remove a tree (cleanup of preloaded/scratch data).
    fn remove_tree(&self, path: &Path) -> Result<(), CrError> {
        if path.exists() {
            fs::remove_dir_all(path).map_err(|e| CrError::io(path.display().to_string(), &e))?;
        }
        Ok(())
    }
}

/// Recursively copy `src` to `dest`, returning per-file sizes.
fn copy_tree_files(src: &Path, dest: &Path) -> Result<Vec<u64>, CrError> {
    let mut sizes = Vec::new();
    let meta = fs::metadata(src).map_err(|e| CrError::io(src.display().to_string(), &e))?;
    if meta.is_file() {
        if let Some(parent) = dest.parent() {
            fs::create_dir_all(parent).map_err(|e| CrError::io(parent.display().to_string(), &e))?;
        }
        fs::copy(src, dest).map_err(|e| CrError::io(src.display().to_string(), &e))?;
        sizes.push(meta.len());
        return Ok(sizes);
    }
    fs::create_dir_all(dest).map_err(|e| CrError::io(dest.display().to_string(), &e))?;
    let entries = fs::read_dir(src).map_err(|e| CrError::io(src.display().to_string(), &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| CrError::io(src.display().to_string(), &e))?;
        let name = entry.file_name();
        sizes.extend(copy_tree_files(&entry.path(), &dest.join(name))?);
    }
    Ok(sizes)
}

/// `scp`-style copier: one session per file.
pub struct RshSimFilem {
    session: SimTime,
}

impl RshSimFilem {
    /// Build from MCA parameters (`filem_rsh_sim_session_ms`).
    pub fn from_params(params: &McaParams) -> Self {
        let ms = params.get_parsed_or("filem_rsh_sim_session_ms", 120u64).unwrap_or(120);
        RshSimFilem {
            session: SimTime::from_millis(ms),
        }
    }
}

impl FilemComponent for RshSimFilem {
    fn name(&self) -> &'static str {
        "rsh_sim"
    }

    fn copy_tree(&self, topology: &Topology, req: &CopyRequest) -> Result<FilemReport, CrError> {
        let sizes = copy_tree_files(&req.src, &req.dest)?;
        let mut cost = SimTime::ZERO;
        let mut bytes = 0u64;
        for size in &sizes {
            cost += self.session + topology.cost(req.src_node, req.dest_node, *size as usize);
            bytes += size;
        }
        Ok(FilemReport {
            files: sizes.len() as u64,
            bytes,
            sim_cost: cost,
        })
    }
}

/// Streaming copier: one session per tree.
pub struct OobStreamFilem {
    session: SimTime,
}

impl OobStreamFilem {
    /// Build from MCA parameters (`filem_oob_stream_session_ms`).
    pub fn from_params(params: &McaParams) -> Self {
        let ms = params.get_parsed_or("filem_oob_stream_session_ms", 20u64).unwrap_or(20);
        OobStreamFilem {
            session: SimTime::from_millis(ms),
        }
    }
}

impl FilemComponent for OobStreamFilem {
    fn name(&self) -> &'static str {
        "oob_stream"
    }

    fn copy_tree(&self, topology: &Topology, req: &CopyRequest) -> Result<FilemReport, CrError> {
        let sizes = copy_tree_files(&req.src, &req.dest)?;
        let bytes: u64 = sizes.iter().sum();
        let cost = self.session + topology.cost(req.src_node, req.dest_node, bytes as usize);
        Ok(FilemReport {
            files: sizes.len() as u64,
            bytes,
            sim_cost: cost,
        })
    }
}

/// Peer-memory-first copier: the write-behind drain / stable-fallback
/// engine of the replica store. Selecting `filem=replica` additionally
/// switches SNAPC's gather to commit into peer memory before the drain
/// (see `snapc`); this component's `copy_tree` is what the asynchronous
/// drain and the restart preload run on.
pub struct ReplicaFilem {
    session: SimTime,
}

impl ReplicaFilem {
    /// Build from MCA parameters (`filem_replica_session_ms`).
    pub fn from_params(params: &McaParams) -> Self {
        let ms = params.get_parsed_or("filem_replica_session_ms", 2u64).unwrap_or(2);
        ReplicaFilem {
            session: SimTime::from_millis(ms),
        }
    }
}

impl FilemComponent for ReplicaFilem {
    fn name(&self) -> &'static str {
        "replica"
    }

    fn copy_tree(&self, topology: &Topology, req: &CopyRequest) -> Result<FilemReport, CrError> {
        let sizes = copy_tree_files(&req.src, &req.dest)?;
        let bytes: u64 = sizes.iter().sum();
        let cost = self.session + topology.cost(req.src_node, req.dest_node, bytes as usize);
        Ok(FilemReport {
            files: sizes.len() as u64,
            bytes,
            sim_cost: cost,
        })
    }
}

/// Assemble the FILEM framework (`rsh_sim` default, matching the paper's
/// first component).
pub fn filem_framework() -> Framework<dyn FilemComponent> {
    let mut fw: Framework<dyn FilemComponent> = Framework::new("filem");
    fw.register("rsh_sim", 20, "RSH/SCP remote copy, one session per file", |p| {
        Box::new(RshSimFilem::from_params(p))
    });
    fw.register(
        "oob_stream",
        10,
        "streamed tree copy over one connection",
        |p| Box::new(OobStreamFilem::from_params(p)),
    );
    fw.register(
        "replica",
        5,
        "peer-memory replication with write-behind drain to stable storage",
        |p| Box::new(ReplicaFilem::from_params(p)),
    );
    fw
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkSpec;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "orte_filem_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn topo() -> Topology {
        Topology::uniform(3, LinkSpec::gigabit_ethernet())
    }

    fn make_tree(base: &Path) -> u64 {
        fs::create_dir_all(base.join("sub")).unwrap();
        fs::write(base.join("meta.data"), b"crs = blcr_sim\n").unwrap();
        fs::write(base.join("context.bin"), vec![0u8; 4096]).unwrap();
        fs::write(base.join("sub").join("extra"), vec![1u8; 100]).unwrap();
        15 + 4096 + 100
    }

    #[test]
    fn rsh_copies_tree_exactly() {
        let base = tmpdir("rsh");
        let src = base.join("src");
        let expected_bytes = make_tree(&src);
        let dest = base.join("dest");
        let filem = RshSimFilem::from_params(&McaParams::new());
        let report = filem
            .copy_tree(
                &topo(),
                &CopyRequest {
                    src: src.clone(),
                    src_node: NodeId(1),
                    dest: dest.clone(),
                    dest_node: NodeId(0),
                },
            )
            .unwrap();
        assert_eq!(report.files, 3);
        assert_eq!(report.bytes, expected_bytes);
        assert!(report.sim_cost > SimTime::ZERO);
        assert_eq!(fs::read(dest.join("context.bin")).unwrap(), vec![0u8; 4096]);
        assert_eq!(
            fs::read(dest.join("sub").join("extra")).unwrap(),
            vec![1u8; 100]
        );
        assert!(dest.join("meta.data").is_file());
    }

    #[test]
    fn single_file_copy() {
        let base = tmpdir("single");
        let src = base.join("one.bin");
        fs::write(&src, vec![7u8; 64]).unwrap();
        let dest = base.join("out").join("one.bin");
        let filem = OobStreamFilem::from_params(&McaParams::new());
        let report = filem
            .copy_tree(
                &topo(),
                &CopyRequest {
                    src,
                    src_node: NodeId(0),
                    dest: dest.clone(),
                    dest_node: NodeId(0),
                },
            )
            .unwrap();
        assert_eq!(report.files, 1);
        assert_eq!(report.bytes, 64);
        assert!(dest.is_file());
    }

    #[test]
    fn missing_source_is_io_error() {
        let base = tmpdir("missing");
        let filem = RshSimFilem::from_params(&McaParams::new());
        let err = filem
            .copy_tree(
                &topo(),
                &CopyRequest {
                    src: base.join("nope"),
                    src_node: NodeId(0),
                    dest: base.join("out"),
                    dest_node: NodeId(0),
                },
            )
            .unwrap_err();
        assert!(matches!(err, CrError::Io { .. }));
    }

    #[test]
    fn per_file_overhead_vs_streaming() {
        // Many small files: rsh (per-file sessions) must cost more than
        // oob_stream (one session) — the A5 ablation's core effect.
        let base = tmpdir("overhead");
        let src = base.join("src");
        fs::create_dir_all(&src).unwrap();
        for i in 0..50 {
            fs::write(src.join(format!("f{i}")), vec![0u8; 128]).unwrap();
        }
        let params = McaParams::new();
        let rsh = RshSimFilem::from_params(&params);
        let stream = OobStreamFilem::from_params(&params);
        let req = |dest: &str| CopyRequest {
            src: src.clone(),
            src_node: NodeId(1),
            dest: base.join(dest),
            dest_node: NodeId(0),
        };
        let rsh_report = rsh.copy_tree(&topo(), &req("rsh_out")).unwrap();
        let stream_report = stream.copy_tree(&topo(), &req("stream_out")).unwrap();
        assert_eq!(rsh_report.bytes, stream_report.bytes);
        assert!(rsh_report.sim_cost > stream_report.sim_cost * 5);
    }

    #[test]
    fn batch_copy_and_remove() {
        let base = tmpdir("batch");
        let mut batch = Vec::new();
        for i in 0..3 {
            let src = base.join(format!("src{i}"));
            make_tree(&src);
            batch.push(CopyRequest {
                src,
                src_node: NodeId(i),
                dest: base.join(format!("dest{i}")),
                dest_node: NodeId(0),
            });
        }
        let filem = RshSimFilem::from_params(&McaParams::new());
        let report = filem.copy_all(&topo(), &batch).unwrap();
        assert_eq!(report.files, 9);
        for i in 0..3 {
            assert!(base.join(format!("dest{i}")).join("context.bin").is_file());
        }
        filem.remove_tree(&base.join("dest0")).unwrap();
        assert!(!base.join("dest0").exists());
        // Removing twice is fine.
        filem.remove_tree(&base.join("dest0")).unwrap();
    }

    #[test]
    fn framework_selection() {
        let fw = filem_framework();
        let params = McaParams::new();
        assert_eq!(fw.select(&params).unwrap().name(), "rsh_sim");
        params.set("filem", "oob_stream");
        assert_eq!(fw.select(&params).unwrap().name(), "oob_stream");
        params.set("filem", "replica");
        assert_eq!(fw.select(&params).unwrap().name(), "replica");
    }

    #[test]
    fn replica_session_is_cheapest() {
        // The drain streams from memory: its per-tree session setup must
        // undercut even oob_stream's connection establishment.
        let base = tmpdir("replica_session");
        let src = base.join("src");
        make_tree(&src);
        let params = McaParams::new();
        let stream = OobStreamFilem::from_params(&params);
        let replica = ReplicaFilem::from_params(&params);
        let req = |dest: &str| CopyRequest {
            src: src.clone(),
            src_node: NodeId(1),
            dest: base.join(dest),
            dest_node: NodeId(0),
        };
        let s = stream.copy_tree(&topo(), &req("stream_out")).unwrap();
        let r = replica.copy_tree(&topo(), &req("replica_out")).unwrap();
        assert_eq!(s.bytes, r.bytes);
        assert!(r.sim_cost < s.sim_cost);
        assert!(base.join("replica_out").join("context.bin").is_file());
    }
}
