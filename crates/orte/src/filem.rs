//! FILEM — the remote file management framework (paper §5.2/§6.2).
//!
//! FILEM moves checkpoint files between node-local disks and stable
//! storage: *gather* pulls every rank's local snapshot into the global
//! snapshot directory, *broadcast* preloads files onto nodes before a
//! restart, and *remove* cleans up scratch copies. The framework interface
//! accepts batches so components can schedule transfers to avoid
//! congesting the network.
//!
//! Components:
//!
//! * **`rsh_sim`** — models `scp -r`: one session per *file*, so the
//!   simulated cost carries a per-file overhead on top of the wire time.
//! * **`oob_stream`** — models streaming a whole tree through one
//!   connection (tar-over-ssh style): one session per *tree*.
//! * **`replica`** — peer-memory first (see [`crate::replica`]): SNAPC
//!   commits images into surviving daemons' memory and drains them to
//!   stable storage asynchronously (write-behind). Its `copy_tree` is the
//!   drain/preload engine — a streamed copy with a near-zero session
//!   setup, since the stream originates from memory, not an `scp`
//!   handshake.
//!
//! All components physically copy files on the host filesystem (the trees
//! are real); only the *cost* is simulated, via the topology's link model.
//!
//! FILEM is deliberately payload-agnostic: with incremental checkpointing
//! enabled the gathered context files are delta contexts holding only the
//! dirty chunks, so the reported bytes and simulated wire time shrink
//! proportionally without any FILEM-side special casing.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use mca::{Framework, McaParams};
use netsim::{NetView, NodeId, SimTime};

use cr_core::CrError;

/// Outcome of one FILEM operation.
///
/// Parallel gathers make "the cost" two different numbers: the total
/// simulated transfer time summed over every copy (the work the cluster
/// did), and the simulated wall-clock span of the operation (what the
/// caller waited). Sequential operations report the same value for both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilemReport {
    /// Files moved.
    pub files: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Total simulated transfer time summed over every copy, as if they
    /// ran back to back.
    pub serialized_cost: SimTime,
    /// Simulated wall-clock span: with parallel lanes, the longest lane.
    pub critical_path_cost: SimTime,
}

impl FilemReport {
    /// A report for one indivisible operation costing `cost` of both
    /// serialized and wall-clock time.
    pub fn single(files: u64, bytes: u64, cost: SimTime) -> Self {
        FilemReport {
            files,
            bytes,
            serialized_cost: cost,
            critical_path_cost: cost,
        }
    }

    /// Accumulate a report that ran *after* this one (sequential
    /// composition): both cost figures add.
    pub fn merge(&mut self, other: FilemReport) {
        self.files += other.files;
        self.bytes += other.bytes;
        self.serialized_cost += other.serialized_cost;
        self.critical_path_cost += other.critical_path_cost;
    }

    /// Accumulate a report that ran *concurrently* with this one:
    /// serialized cost adds, wall clock is the longer of the two.
    pub fn merge_parallel(&mut self, other: FilemReport) {
        self.files += other.files;
        self.bytes += other.bytes;
        self.serialized_cost += other.serialized_cost;
        self.critical_path_cost = self.critical_path_cost.max(other.critical_path_cost);
    }
}

/// One file movement request (a batch of these forms an operation).
#[derive(Debug, Clone)]
pub struct CopyRequest {
    /// Source tree (file or directory).
    pub src: PathBuf,
    /// Node the source lives on.
    pub src_node: NodeId,
    /// Destination path (created/overwritten).
    pub dest: PathBuf,
    /// Node the destination lives on.
    pub dest_node: NodeId,
}

/// A file management component.
pub trait FilemComponent: Send + Sync {
    /// Component name.
    fn name(&self) -> &'static str;

    /// Copy a batch of trees. The default walks the batch sequentially;
    /// components may reorder or group to optimize. Use
    /// [`copy_all_parallel`] to run a batch over a bounded worker pool.
    fn copy_all(&self, net: NetView<'_>, batch: &[CopyRequest]) -> Result<FilemReport, CrError> {
        let mut total = FilemReport::default();
        for req in batch {
            total.merge(self.copy_tree(net, req)?);
        }
        Ok(total)
    }

    /// Copy one tree.
    fn copy_tree(&self, net: NetView<'_>, req: &CopyRequest) -> Result<FilemReport, CrError>;

    /// Remove a tree (cleanup of preloaded/scratch data).
    fn remove_tree(&self, path: &Path) -> Result<(), CrError> {
        if path.exists() {
            fs::remove_dir_all(path).map_err(|e| CrError::io(path.display().to_string(), &e))?;
        }
        Ok(())
    }
}

/// Copy a batch over a bounded pool of `workers` threads, charging link
/// contention honestly: every in-flight copy holds a [`netsim::LinkSlot`]
/// on its link for its duration, so lanes sharing a wire each see ~1/N of
/// its bandwidth (and slow down concurrent OOB traffic). Returns the
/// combined report — serialized cost sums every copy, critical-path cost
/// is the longest lane. The first copy error is returned after all lanes
/// finish (no partially abandoned transfers).
pub fn copy_all_parallel(
    filem: &dyn FilemComponent,
    net: NetView<'_>,
    batch: &[CopyRequest],
    workers: usize,
) -> Result<FilemReport, CrError> {
    if workers <= 1 || batch.len() <= 1 {
        return filem.copy_all(net, batch);
    }
    let lanes = workers.min(batch.len());
    let next = AtomicUsize::new(0);
    let lane_results: Vec<Result<FilemReport, CrError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..lanes)
            .map(|_| {
                scope.spawn(|| {
                    let mut lane = FilemReport::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = batch.get(i) else {
                            return Ok(lane);
                        };
                        // Hold the link share for the duration of the copy
                        // so concurrent lanes (and the fabric) see it.
                        let _slot = net.begin_transfer(req.src_node, req.dest_node);
                        lane.merge(filem.copy_tree(net, req)?);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(CrError::protocol("FILEM gather worker panicked"))
                })
            })
            .collect()
    });
    let mut total = FilemReport::default();
    for lane in lane_results {
        total.merge_parallel(lane?);
    }
    Ok(total)
}

/// Recursively copy `src` to `dest`, returning per-file sizes.
fn copy_tree_files(src: &Path, dest: &Path) -> Result<Vec<u64>, CrError> {
    let mut sizes = Vec::new();
    let meta = fs::metadata(src).map_err(|e| CrError::io(src.display().to_string(), &e))?;
    if meta.is_file() {
        if let Some(parent) = dest.parent() {
            fs::create_dir_all(parent).map_err(|e| CrError::io(parent.display().to_string(), &e))?;
        }
        fs::copy(src, dest).map_err(|e| CrError::io(src.display().to_string(), &e))?;
        sizes.push(meta.len());
        return Ok(sizes);
    }
    fs::create_dir_all(dest).map_err(|e| CrError::io(dest.display().to_string(), &e))?;
    let entries = fs::read_dir(src).map_err(|e| CrError::io(src.display().to_string(), &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| CrError::io(src.display().to_string(), &e))?;
        let name = entry.file_name();
        sizes.extend(copy_tree_files(&entry.path(), &dest.join(name))?);
    }
    Ok(sizes)
}

/// `scp`-style copier: one session per file.
pub struct RshSimFilem {
    session: SimTime,
}

impl RshSimFilem {
    /// Build from MCA parameters (`filem_rsh_sim_session_ms`).
    pub fn from_params(params: &McaParams) -> Self {
        let ms = params.get_parsed_or("filem_rsh_sim_session_ms", 120u64).unwrap_or(120);
        RshSimFilem {
            session: SimTime::from_millis(ms),
        }
    }
}

impl FilemComponent for RshSimFilem {
    fn name(&self) -> &'static str {
        "rsh_sim"
    }

    fn copy_tree(&self, net: NetView<'_>, req: &CopyRequest) -> Result<FilemReport, CrError> {
        let sizes = copy_tree_files(&req.src, &req.dest)?;
        let mut cost = SimTime::ZERO;
        let mut bytes = 0u64;
        for size in &sizes {
            cost += self.session + net.cost(req.src_node, req.dest_node, *size as usize);
            bytes += size;
        }
        Ok(FilemReport::single(sizes.len() as u64, bytes, cost))
    }
}

/// Streaming copier: one session per tree.
pub struct OobStreamFilem {
    session: SimTime,
}

impl OobStreamFilem {
    /// Build from MCA parameters (`filem_oob_stream_session_ms`).
    pub fn from_params(params: &McaParams) -> Self {
        let ms = params.get_parsed_or("filem_oob_stream_session_ms", 20u64).unwrap_or(20);
        OobStreamFilem {
            session: SimTime::from_millis(ms),
        }
    }
}

impl FilemComponent for OobStreamFilem {
    fn name(&self) -> &'static str {
        "oob_stream"
    }

    fn copy_tree(&self, net: NetView<'_>, req: &CopyRequest) -> Result<FilemReport, CrError> {
        let sizes = copy_tree_files(&req.src, &req.dest)?;
        let bytes: u64 = sizes.iter().sum();
        let cost = self.session + net.cost(req.src_node, req.dest_node, bytes as usize);
        Ok(FilemReport::single(sizes.len() as u64, bytes, cost))
    }
}

/// Peer-memory-first copier: the write-behind drain / stable-fallback
/// engine of the replica store. Selecting `filem=replica` additionally
/// switches SNAPC's gather to commit into peer memory before the drain
/// (see `snapc`); this component's `copy_tree` is what the asynchronous
/// drain and the restart preload run on.
pub struct ReplicaFilem {
    session: SimTime,
}

impl ReplicaFilem {
    /// Build from MCA parameters (`filem_replica_session_ms`).
    pub fn from_params(params: &McaParams) -> Self {
        let ms = params.get_parsed_or("filem_replica_session_ms", 2u64).unwrap_or(2);
        ReplicaFilem {
            session: SimTime::from_millis(ms),
        }
    }
}

impl FilemComponent for ReplicaFilem {
    fn name(&self) -> &'static str {
        "replica"
    }

    fn copy_tree(&self, net: NetView<'_>, req: &CopyRequest) -> Result<FilemReport, CrError> {
        let sizes = copy_tree_files(&req.src, &req.dest)?;
        let bytes: u64 = sizes.iter().sum();
        let cost = self.session + net.cost(req.src_node, req.dest_node, bytes as usize);
        Ok(FilemReport::single(sizes.len() as u64, bytes, cost))
    }
}

/// Assemble the FILEM framework (`rsh_sim` default, matching the paper's
/// first component).
pub fn filem_framework() -> Framework<dyn FilemComponent> {
    let mut fw: Framework<dyn FilemComponent> = Framework::new("filem");
    fw.register("rsh_sim", 20, "RSH/SCP remote copy, one session per file", |p| {
        Box::new(RshSimFilem::from_params(p))
    });
    fw.register(
        "oob_stream",
        10,
        "streamed tree copy over one connection",
        |p| Box::new(OobStreamFilem::from_params(p)),
    );
    fw.register(
        "replica",
        5,
        "peer-memory replication with write-behind drain to stable storage",
        |p| Box::new(ReplicaFilem::from_params(p)),
    );
    fw
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkMeter, LinkSpec, Topology};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "orte_filem_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn topo() -> Topology {
        Topology::uniform(3, LinkSpec::gigabit_ethernet())
    }

    fn make_tree(base: &Path) -> u64 {
        fs::create_dir_all(base.join("sub")).unwrap();
        fs::write(base.join("meta.data"), b"crs = blcr_sim\n").unwrap();
        fs::write(base.join("context.bin"), vec![0u8; 4096]).unwrap();
        fs::write(base.join("sub").join("extra"), vec![1u8; 100]).unwrap();
        15 + 4096 + 100
    }

    #[test]
    fn rsh_copies_tree_exactly() {
        let base = tmpdir("rsh");
        let src = base.join("src");
        let expected_bytes = make_tree(&src);
        let dest = base.join("dest");
        let filem = RshSimFilem::from_params(&McaParams::new());
        let report = filem
            .copy_tree(
                NetView::uncontended(&topo()),
                &CopyRequest {
                    src: src.clone(),
                    src_node: NodeId(1),
                    dest: dest.clone(),
                    dest_node: NodeId(0),
                },
            )
            .unwrap();
        assert_eq!(report.files, 3);
        assert_eq!(report.bytes, expected_bytes);
        assert!(report.serialized_cost > SimTime::ZERO);
        assert_eq!(report.serialized_cost, report.critical_path_cost);
        assert_eq!(fs::read(dest.join("context.bin")).unwrap(), vec![0u8; 4096]);
        assert_eq!(
            fs::read(dest.join("sub").join("extra")).unwrap(),
            vec![1u8; 100]
        );
        assert!(dest.join("meta.data").is_file());
    }

    #[test]
    fn single_file_copy() {
        let base = tmpdir("single");
        let src = base.join("one.bin");
        fs::write(&src, vec![7u8; 64]).unwrap();
        let dest = base.join("out").join("one.bin");
        let filem = OobStreamFilem::from_params(&McaParams::new());
        let report = filem
            .copy_tree(
                NetView::uncontended(&topo()),
                &CopyRequest {
                    src,
                    src_node: NodeId(0),
                    dest: dest.clone(),
                    dest_node: NodeId(0),
                },
            )
            .unwrap();
        assert_eq!(report.files, 1);
        assert_eq!(report.bytes, 64);
        assert!(dest.is_file());
    }

    #[test]
    fn missing_source_is_io_error() {
        let base = tmpdir("missing");
        let filem = RshSimFilem::from_params(&McaParams::new());
        let err = filem
            .copy_tree(
                NetView::uncontended(&topo()),
                &CopyRequest {
                    src: base.join("nope"),
                    src_node: NodeId(0),
                    dest: base.join("out"),
                    dest_node: NodeId(0),
                },
            )
            .unwrap_err();
        assert!(matches!(err, CrError::Io { .. }));
    }

    #[test]
    fn per_file_overhead_vs_streaming() {
        // Many small files: rsh (per-file sessions) must cost more than
        // oob_stream (one session) — the A5 ablation's core effect.
        let base = tmpdir("overhead");
        let src = base.join("src");
        fs::create_dir_all(&src).unwrap();
        for i in 0..50 {
            fs::write(src.join(format!("f{i}")), vec![0u8; 128]).unwrap();
        }
        let params = McaParams::new();
        let rsh = RshSimFilem::from_params(&params);
        let stream = OobStreamFilem::from_params(&params);
        let req = |dest: &str| CopyRequest {
            src: src.clone(),
            src_node: NodeId(1),
            dest: base.join(dest),
            dest_node: NodeId(0),
        };
        let rsh_report = rsh.copy_tree(NetView::uncontended(&topo()), &req("rsh_out")).unwrap();
        let stream_report = stream.copy_tree(NetView::uncontended(&topo()), &req("stream_out")).unwrap();
        assert_eq!(rsh_report.bytes, stream_report.bytes);
        assert!(rsh_report.serialized_cost > stream_report.serialized_cost * 5);
    }

    #[test]
    fn batch_copy_and_remove() {
        let base = tmpdir("batch");
        let mut batch = Vec::new();
        for i in 0..3 {
            let src = base.join(format!("src{i}"));
            make_tree(&src);
            batch.push(CopyRequest {
                src,
                src_node: NodeId(i),
                dest: base.join(format!("dest{i}")),
                dest_node: NodeId(0),
            });
        }
        let filem = RshSimFilem::from_params(&McaParams::new());
        let report = filem.copy_all(NetView::uncontended(&topo()), &batch).unwrap();
        assert_eq!(report.files, 9);
        for i in 0..3 {
            assert!(base.join(format!("dest{i}")).join("context.bin").is_file());
        }
        filem.remove_tree(&base.join("dest0")).unwrap();
        assert!(!base.join("dest0").exists());
        // Removing twice is fine.
        filem.remove_tree(&base.join("dest0")).unwrap();
    }

    #[test]
    fn framework_selection() {
        let fw = filem_framework();
        let params = McaParams::new();
        assert_eq!(fw.select(&params).unwrap().name(), "rsh_sim");
        params.set("filem", "oob_stream");
        assert_eq!(fw.select(&params).unwrap().name(), "oob_stream");
        params.set("filem", "replica");
        assert_eq!(fw.select(&params).unwrap().name(), "replica");
    }

    #[test]
    fn merge_sequential_vs_parallel_cost_composition() {
        let a = FilemReport::single(1, 100, SimTime::from_millis(10));
        let b = FilemReport::single(2, 200, SimTime::from_millis(30));
        let mut seq = a;
        seq.merge(b);
        assert_eq!(seq.files, 3);
        assert_eq!(seq.bytes, 300);
        assert_eq!(seq.serialized_cost, SimTime::from_millis(40));
        assert_eq!(seq.critical_path_cost, SimTime::from_millis(40));
        let mut par = a;
        par.merge_parallel(b);
        assert_eq!(par.files, 3);
        assert_eq!(par.bytes, 300);
        assert_eq!(par.serialized_cost, SimTime::from_millis(40));
        assert_eq!(par.critical_path_cost, SimTime::from_millis(30));
    }

    fn parallel_batch(base: &Path, n: u32) -> (Vec<CopyRequest>, u64) {
        let mut batch = Vec::new();
        let mut total = 0u64;
        for i in 0..n {
            let src = base.join(format!("psrc{i}"));
            total += make_tree(&src);
            batch.push(CopyRequest {
                src,
                src_node: NodeId(i % 3),
                dest: base.join(format!("pdest{i}")),
                dest_node: NodeId(0),
            });
        }
        (batch, total)
    }

    #[test]
    fn copy_all_parallel_moves_everything() {
        let base = tmpdir("par");
        let (batch, total_bytes) = parallel_batch(&base, 6);
        let filem = OobStreamFilem::from_params(&McaParams::new());
        let topo = topo();
        let report = copy_all_parallel(&filem, NetView::uncontended(&topo), &batch, 4).unwrap();
        assert_eq!(report.files, 18);
        assert_eq!(report.bytes, total_bytes);
        // Wall clock can't exceed total work, and a 4-lane run over 6 trees
        // must finish in less serialized time than it spent in total.
        assert!(report.critical_path_cost <= report.serialized_cost);
        for i in 0..6 {
            assert!(base.join(format!("pdest{i}")).join("context.bin").is_file());
        }
        // workers=1 degenerates to the sequential walk, costs equal.
        let seq = filem.copy_all(NetView::uncontended(&topo), &batch).unwrap();
        assert_eq!(seq.serialized_cost, seq.critical_path_cost);
        assert_eq!(seq.bytes, report.bytes);
    }

    #[test]
    fn copy_all_parallel_charges_contention_when_metered() {
        let base = tmpdir("par_meter");
        let (batch, total_bytes) = parallel_batch(&base, 6);
        let filem = OobStreamFilem::from_params(&McaParams::new());
        let topo = topo();
        let meter = LinkMeter::new();
        let report =
            copy_all_parallel(&filem, NetView::contended(&topo, &meter), &batch, 4).unwrap();
        assert_eq!(report.bytes, total_bytes);
        // All slots were released when the gather finished.
        for a in topo.nodes() {
            assert_eq!(meter.inflight(a, NodeId(0)), 0);
        }
        // Contended serialization can only make copies costlier than the
        // uncontended sequential walk's per-copy prices.
        let quiet = filem.copy_all(NetView::uncontended(&topo), &batch).unwrap();
        assert!(report.serialized_cost >= quiet.serialized_cost);
    }

    #[test]
    fn copy_all_parallel_reports_first_error() {
        let base = tmpdir("par_err");
        let (mut batch, _) = parallel_batch(&base, 3);
        batch.push(CopyRequest {
            src: base.join("does-not-exist"),
            src_node: NodeId(1),
            dest: base.join("err_out"),
            dest_node: NodeId(0),
        });
        let filem = OobStreamFilem::from_params(&McaParams::new());
        let topo = topo();
        let err = copy_all_parallel(&filem, NetView::uncontended(&topo), &batch, 4).unwrap_err();
        assert!(matches!(err, CrError::Io { .. }));
    }

    #[test]
    fn replica_session_is_cheapest() {
        // The drain streams from memory: its per-tree session setup must
        // undercut even oob_stream's connection establishment.
        let base = tmpdir("replica_session");
        let src = base.join("src");
        make_tree(&src);
        let params = McaParams::new();
        let stream = OobStreamFilem::from_params(&params);
        let replica = ReplicaFilem::from_params(&params);
        let req = |dest: &str| CopyRequest {
            src: src.clone(),
            src_node: NodeId(1),
            dest: base.join(dest),
            dest_node: NodeId(0),
        };
        let s = stream.copy_tree(NetView::uncontended(&topo()), &req("stream_out")).unwrap();
        let r = replica.copy_tree(NetView::uncontended(&topo()), &req("replica_out")).unwrap();
        assert_eq!(s.bytes, r.bytes);
        assert!(r.serialized_cost < s.serialized_cost);
        assert!(base.join("replica_out").join("context.bin").is_file());
    }
}
