//! The unified snapshot store: content-addressed dedup commit, fetch and
//! refcount GC over the two chunk tiers.
//!
//! With `filem_dedup_enabled=true` the SNAPC gather tail stops shipping
//! whole context files and instead commits through this module: each
//! rank's manifested image is sliced into content-addressed chunks
//! ([`opal::store::ChunkId`]), only chunks the stable
//! [`opal::store::ChunkStore`] has never seen move off the compute nodes,
//! and the per-rank manifests recorded in the global metadata become the
//! store's liveness roots. Identical chunks across ranks of an SPMD job
//! and across checkpoint intervals are stored exactly once.
//!
//! [`SnapshotStore`] fronts both tiers behind one API:
//!
//! * the **stable tier** — an [`opal::store::ChunkStore`] living in
//!   `chunk_store/` inside the global snapshot reference directory, and
//! * the **replica tier** — the peer-memory chunk half of every daemon's
//!   [`crate::replica::ReplicaStore`], fed at commit and asked first at
//!   restart.
//!
//! # Lifecycle ordering (model-checked)
//!
//! Commit inserts blobs and takes references *before* the manifest is
//! recorded; retire drops the manifest record *first*, then decrements,
//! then sweeps count-zero blobs in `filem_dedup_gc_batch`-sized batches.
//! A crash between any two steps leaks at worst — a later sweep reclaims —
//! and never leaves a live manifest naming a swept chunk. `cr-model gc`
//! checks exactly this invariant under every interleaving (including a
//! node death between decrement and sweep), and `cr-model gc --mutate
//! sweep_before_decrement` shows the minimal violation when the ordering
//! is broken.

use std::path::Path;

use netsim::SimTime;

use cr_core::request::CkptStats;
use cr_core::snapshot::{GlobalSnapshot, LocalSnapshot};
use cr_core::{CrError, JobId, Rank};
use opal::image::ProcessImage;
use opal::store::{ChunkId, ChunkStore};

use crate::job::JobHandle;
use crate::oob::RankCkpt;
use crate::replica;
use crate::runtime::Runtime;

/// Subdirectory of the global snapshot reference holding the stable chunk
/// tier.
pub const CHUNK_STORE_DIR: &str = "chunk_store";

/// Default GC sweep batch (the `filem_dedup_gc_batch` MCA parameter).
pub const DEFAULT_GC_BATCH: usize = 64;

/// Which chunk tier a fetch may touch (mirrors `ompi`'s restart source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkSource {
    /// Peer memory first, stable storage for whatever is missing.
    Auto,
    /// Peer memory only; error when a chunk has no surviving holder.
    ReplicaOnly,
    /// Stable storage only (disaster-recovery path).
    StableOnly,
}

/// Bookkeeping of one [`SnapshotStore::fetch_image`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct FetchStats {
    /// Distinct chunks served from peer memory.
    pub replica_chunks: usize,
    /// Distinct chunks served from the stable tier.
    pub stable_chunks: usize,
    /// Logical bytes assembled into the image.
    pub bytes: u64,
    /// Simulated wire time of the peer-memory transfers.
    pub sim_cost: SimTime,
}

/// The occurrence list of a manifest: one [`ChunkId`] per chunk record, in
/// section order. References are counted per occurrence, so this is also
/// exactly what commit increfs and retire decrefs.
pub fn manifest_ids(manifest: &codec::ChunkManifest) -> Vec<ChunkId> {
    manifest
        .sections
        .iter()
        .flat_map(|sec| sec.chunks.iter())
        .map(|rec| ChunkId {
            digest: rec.digest,
            len: rec.len,
        })
        .collect()
}

/// Both chunk tiers behind one handle: the stable [`ChunkStore`] of a
/// global snapshot reference plus the peer-memory tier reachable through
/// the runtime's surviving daemons.
pub struct SnapshotStore<'rt> {
    runtime: &'rt Runtime,
    job: JobId,
    stable: ChunkStore,
}

impl<'rt> SnapshotStore<'rt> {
    /// Open the store of the global snapshot reference at `global_dir`
    /// (creating the stable tier directory on first use).
    pub fn open(
        runtime: &'rt Runtime,
        job: JobId,
        global_dir: &Path,
    ) -> Result<SnapshotStore<'rt>, CrError> {
        Ok(SnapshotStore {
            runtime,
            job,
            stable: ChunkStore::open(&global_dir.join(CHUNK_STORE_DIR))?,
        })
    }

    /// The stable (disk) tier.
    pub fn stable(&self) -> &ChunkStore {
        &self.stable
    }

    /// Assemble one rank's full image from its chunk manifest, fetching
    /// each distinct chunk from the tiers `source` allows. Peer-memory
    /// bytes are digest-verified when `verify` is set (the stable tier
    /// always verifies on read); a corrupt replica chunk falls back to
    /// stable under [`ChunkSource::Auto`] and fails loudly under
    /// [`ChunkSource::ReplicaOnly`].
    pub fn fetch_image(
        &self,
        manifest: &codec::ChunkManifest,
        source: ChunkSource,
        verify: bool,
    ) -> Result<(ProcessImage, FetchStats), CrError> {
        let occurrences = manifest_ids(manifest);
        let mut unique: Vec<ChunkId> = occurrences.clone();
        unique.sort();
        unique.dedup();

        let mut bytes_of: std::collections::BTreeMap<ChunkId, Vec<u8>> =
            std::collections::BTreeMap::new();
        let mut stats = FetchStats::default();

        if source != ChunkSource::StableOnly {
            let holders: Vec<u32> = self.runtime.daemons().iter().map(|d| d.node().0).collect();
            let (found, cost) =
                replica::fetch_chunks_partial(self.runtime, self.job, &unique, &holders);
            stats.sim_cost += cost;
            for (id, chunk) in unique.iter().zip(found) {
                let Some(chunk) = chunk else { continue };
                if verify && ChunkId::of(&chunk) != *id {
                    if source == ChunkSource::ReplicaOnly {
                        return Err(CrError::BadSnapshot {
                            detail: format!(
                                "replica chunk {id} failed digest verification"
                            ),
                        });
                    }
                    continue; // corrupt copy in peer memory: refetch from disk
                }
                bytes_of.insert(*id, chunk);
                stats.replica_chunks += 1;
            }
        }

        if source != ChunkSource::ReplicaOnly {
            for id in &unique {
                if bytes_of.contains_key(id) {
                    continue;
                }
                bytes_of.insert(*id, self.stable.get(id)?);
                stats.stable_chunks += 1;
            }
        }

        if let Some(missing) = unique.iter().find(|id| !bytes_of.contains_key(id)) {
            return Err(CrError::BadSnapshot {
                detail: format!(
                    "chunk {missing} has no surviving peer-memory holder \
                     (restart source forbids the stable tier)"
                ),
            });
        }

        let mut image = ProcessImage::new();
        for sec in &manifest.sections {
            let mut assembled = Vec::with_capacity(sec.total_len as usize);
            for rec in &sec.chunks {
                let id = ChunkId {
                    digest: rec.digest,
                    len: rec.len,
                };
                if let Some(chunk) = bytes_of.get(&id) {
                    assembled.extend_from_slice(chunk);
                }
            }
            if assembled.len() as u64 != sec.total_len {
                return Err(CrError::BadSnapshot {
                    detail: format!(
                        "section {} reassembled to {} bytes, manifest says {}",
                        sec.name,
                        assembled.len(),
                        sec.total_len
                    ),
                });
            }
            stats.bytes += sec.total_len;
            image.insert(sec.name.clone(), assembled);
        }
        self.runtime.tracer().record(
            "store.restart.fetch",
            &format!(
                "{} chunks ({} B): {} from peer memory, {} from stable",
                unique.len(),
                stats.bytes,
                stats.replica_chunks,
                stats.stable_chunks
            ),
        );
        Ok((image, stats))
    }
}

/// The content-addressed commit tail of a distributed checkpoint
/// (`filem_dedup_enabled=true`): slice every rank's manifested image into
/// chunks, move only never-before-seen chunks into the stable tier (and
/// push them to the rank's node plus its `filem_replica_factor` ring
/// neighbors' peer memory), take one reference per manifest occurrence
/// *before* recording the manifests, then commit the interval.
///
/// Returns stats whose `dedup_ratio` is logical image bytes over bytes
/// actually written — the cross-rank/cross-interval savings the bench
/// ratchets.
pub fn dedup_commit(
    job: &JobHandle,
    interval: u64,
    results: &[(u32, RankCkpt)],
    ranks_info: &[(Rank, String)],
    chain_info: &[(Rank, &str, u64, u64)],
    tag: &str,
) -> Result<CkptStats, CrError> {
    let runtime = job.runtime();
    let tracer = runtime.tracer();
    let params = job.params();
    let job_id = job.job();
    let nnodes = runtime.topology().len() as u32;
    let factor = params
        .get_parsed_or("filem_replica_factor", 1u32)
        .unwrap_or(1);

    let store = SnapshotStore::open(runtime, job_id, &job.global_snapshot_path())?;
    let mut manifests: Vec<(Rank, String)> = Vec::with_capacity(results.len());
    let mut all_ids: Vec<ChunkId> = Vec::new();
    let mut logical = 0u64;
    let mut moved = 0u64;
    let mut hits = 0u64;
    let mut sim_cost = SimTime::ZERO;

    // Digest verification and blob writes run over the bounded OPAL hash
    // pool; frame encoding reuses a small pool of scratch buffers instead
    // of allocating per chunk.
    let workers = opal::pool::hash_workers(params);
    let pool = opal::BufferPool::new(opal::pool::buffer_pool_cap(params));
    let mut verified_chunks = 0u64;

    for (node, ckpt) in results {
        let local = LocalSnapshot::open(&ckpt.dir)?;
        let rendered = local
            .param(opal::incr::PARAM_MANIFEST)
            .ok_or_else(|| CrError::BadSnapshot {
                detail: format!(
                    "rank {} wrote no chunk manifest; the dedup store needs \
                     filem_dedup_enabled to reach the capture path too",
                    ckpt.rank
                ),
            })?
            .to_string();
        let manifest = codec::ChunkManifest::parse(&rendered).map_err(CrError::Codec)?;
        let image = opal::incr::read_full_image(&local)?;
        logical += manifest.total_bytes();

        let chunk_bytes = manifest.chunk_bytes as usize;
        // Collect every manifest occurrence with its backing slice, then
        // verify all digests in one parallel pass over the hash pool.
        let mut occs: Vec<(ChunkId, &[u8], &str, u32)> = Vec::new();
        for sec in &manifest.sections {
            let section = image.require_section(&sec.name)?;
            for rec in &sec.chunks {
                let id = ChunkId {
                    digest: rec.digest,
                    len: rec.len,
                };
                all_ids.push(id);
                let start = rec.id as usize * chunk_bytes;
                let end = start + rec.len as usize;
                let slice = section.get(start..end).ok_or_else(|| CrError::BadSnapshot {
                    detail: format!(
                        "rank {} section {}: manifest chunk {} spans {start}..{end} \
                         but the section holds {} bytes",
                        ckpt.rank,
                        sec.name,
                        rec.id,
                        section.len()
                    ),
                })?;
                occs.push((id, slice, sec.name.as_str(), rec.id));
            }
        }
        let slices: Vec<&[u8]> = occs.iter().map(|(_, s, _, _)| *s).collect();
        let digests = opal::pool::digest_all_parallel(&slices, workers);
        for ((id, slice, sec_name, rec_id), digest) in occs.iter().zip(&digests) {
            let actual = ChunkId {
                digest: *digest,
                len: slice.len() as u32,
            };
            if actual != *id {
                return Err(CrError::BadSnapshot {
                    detail: format!(
                        "rank {} section {} chunk {}: manifest says {id}, \
                         bytes hash to {actual}",
                        ckpt.rank, sec_name, rec_id
                    ),
                });
            }
        }
        verified_chunks += occs.len() as u64;

        // Write never-before-seen blobs in parallel with pooled frame
        // buffers. Duplicate ids within the batch are collapsed first —
        // the parallel inserter requires unique ids — which preserves the
        // serial loop's accounting exactly: one fresh write per new id,
        // every other occurrence a hit.
        let mut unique: Vec<(ChunkId, &[u8])> = Vec::new();
        let mut seen: std::collections::HashSet<ChunkId> = std::collections::HashSet::new();
        for (id, slice, _, _) in &occs {
            if seen.insert(*id) {
                unique.push((*id, slice));
            }
        }
        let fresh_flags = opal::pool::insert_all_parallel(&store.stable, &unique, workers, &pool)?;
        let mut fresh: Vec<(ChunkId, Vec<u8>)> = Vec::new();
        for ((id, slice), is_fresh) in unique.iter().zip(&fresh_flags) {
            if *is_fresh {
                moved += slice.len() as u64;
                fresh.push((*id, slice.to_vec()));
            }
        }
        hits += occs.len() as u64 - fresh.len() as u64;

        // Push this rank's fresh chunks into peer memory on its own node
        // plus its ring neighbors, so a dedup restart can come from
        // surviving memory exactly like a replica restart.
        let mut targets = vec![*node];
        targets.extend(replica::ring_neighbors(*node, nnodes, factor));
        let (cost, _) = replica::put_chunks(runtime, job_id, &targets, &fresh)?;
        sim_cost += cost;
        manifests.push((Rank(ckpt.rank), rendered));
    }

    tracer.record(
        "opal.hash.pool",
        &format!(
            "interval {interval}: {workers} workers verified {verified_chunks} chunks \
             ({logical} B), {} pooled buffers ({} reuses){tag}",
            pool.stats().pooled,
            pool.stats().hits
        ),
    );

    if hits > 0 {
        tracer.record(
            "store.chunk.hit",
            &format!("interval {interval}: {hits} manifest chunks already stored{tag}"),
        );
    }

    // References first, manifests second: the store can never sweep a
    // chunk a recorded manifest names (the `gc` model's invariant).
    store.stable.incref_all(&all_ids)?;
    let commit = {
        let mut global = job.global_snapshot()?;
        global.record_chunk_manifests(interval, &manifests)?;
        global.record_ckpt_chain(interval, chain_info)?;
        global.commit_interval(interval, ranks_info)?;
        global.commit_state(interval)
    };
    let dedup_ratio = logical as f64 / moved.max(1) as f64;
    tracer.record(
        "store.commit",
        &format!(
            "interval {interval}: {logical} logical B, {moved} fresh B, \
             {hits} hits, ratio {dedup_ratio:.2}{tag}"
        ),
    );
    Ok(CkptStats {
        bytes_moved: moved,
        sim_ns: sim_cost.as_nanos(),
        commit,
        dedup_ratio,
    })
}

/// Retire a dedup interval: drop its manifest records from the global
/// metadata *first*, then release one reference per manifest occurrence,
/// then sweep count-zero blobs in `gc_batch`-sized batches — expiring each
/// swept batch from every surviving daemon's peer-memory tier as well.
/// Returns the ids swept from the stable tier.
///
/// This is the decrement+sweep that replaces the chain-liveness walk:
/// shared chunks survive as long as any other interval's manifest still
/// references them, so any subset of dedup intervals can retire in any
/// order.
pub fn retire_dedup_interval(
    runtime: &Runtime,
    job: JobId,
    global: &mut GlobalSnapshot,
    interval: u64,
    gc_batch: usize,
) -> Result<Vec<ChunkId>, CrError> {
    let mut ids: Vec<ChunkId> = Vec::new();
    for (_, rendered) in global.chunk_manifests(interval) {
        let manifest = codec::ChunkManifest::parse(rendered).map_err(CrError::Codec)?;
        ids.extend(manifest_ids(&manifest));
    }
    // Liveness root gone first; a crash after this leaks references (a
    // later sweep reclaims the orphaned blobs), it never dangles.
    global.retire_interval(interval)?;
    let store = ChunkStore::open(&global.dir().join(CHUNK_STORE_DIR))?;
    store.decref_all(&ids)?;
    let batch = gc_batch.max(1);
    let mut swept = Vec::new();
    loop {
        let removed = store.sweep(batch)?;
        if removed.is_empty() {
            break;
        }
        replica::expire_chunks(runtime, job, &removed);
        runtime.tracer().record(
            "store.gc.sweep",
            &format!(
                "interval {interval}: swept {} chunks ({} B)",
                removed.len(),
                removed.iter().map(|id| u64::from(id.len)).sum::<u64>()
            ),
        );
        swept.extend(removed);
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_ids_lists_every_occurrence_in_order() {
        let a = vec![7u8; 100];
        let sections: Vec<(&str, &[u8])> = vec![("app", &a), ("opal", &a)];
        let manifest = codec::ChunkManifest::of_sections(sections.into_iter(), 64);
        let ids = manifest_ids(&manifest);
        // 100 bytes at 64-byte chunks = 2 chunks per section, twice.
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[1], ids[3]);
        assert_eq!(u64::from(ids[0].len), 64);
        assert_eq!(u64::from(ids[1].len), 36);
    }
}
