//! Peer-memory replicated snapshot store (beyond-paper subsystem).
//!
//! The paper's FILEM treats stable storage as the only durable home for
//! snapshot images, so every checkpoint pays a full gather to shared disk
//! and every restart pays a full broadcast back out. Following ReStore
//! (Hübner et al., 2022), this module keeps each rank's newest snapshot
//! image *in the memory of surviving daemons* as well:
//!
//! * every `orted` hosts a [`ReplicaStore`] holding images for its own
//!   node's ranks plus ring-replicated copies from `k` neighbor nodes
//!   (replication factor via the `filem_replica_factor` MCA parameter),
//! * images travel over the ordinary OOB fabric, so netsim charges real
//!   latency/bandwidth for the replication traffic, and
//! * the restart path asks surviving replicas first and only falls back
//!   to stable storage when more than `k` nodes (or the whole host
//!   process) are gone.
//!
//! The ring: node `n`'s image is held by `n` itself plus nodes
//! `(n + 1) % N`, …, `(n + k) % N`. Losing any `k` nodes therefore leaves
//! at least one holder of every image alive; losing `k + 1` can orphan an
//! image, which is why the stable-storage write-behind drain still runs.
//!
//! Incremental checkpointing (`crs_incr_enabled`) composes transparently:
//! a [`ReplicaImage`] captures whatever the local snapshot reference
//! directory holds — a full image or a delta context of dirty chunks — so
//! replication traffic and peer-memory footprint scale with the delta
//! size, and a chain restart fetches one small image per chain link.

use std::fs;
use std::path::Path;
use std::time::Duration;

use netsim::{NodeId, SimTime};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use cr_core::{CrError, JobId, Rank};
use opal::store::ChunkId;

use crate::oob::{recv_oob_timeout, send_oob, DaemonMsg, DaemonReply};
use crate::runtime::Runtime;

/// How long the HNP waits for a daemon to acknowledge a replica request.
const REPLICA_OOB_TIMEOUT: Duration = Duration::from_secs(60);

/// One rank's snapshot image, fully materialized in memory: every file of
/// the local snapshot reference directory (metadata and context), stored
/// as `(relative path, bytes)` pairs so it can be re-materialized on any
/// node at restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaImage {
    /// Rank this image belongs to.
    pub rank: u32,
    /// `(path relative to the snapshot directory, contents)`, sorted by
    /// path for deterministic equality.
    pub files: Vec<(String, Vec<u8>)>,
}

fn io_err(path: &Path, e: &std::io::Error) -> CrError {
    CrError::io(path.display().to_string(), e)
}

fn collect_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, Vec<u8>)>,
) -> Result<(), CrError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_files(root, &path, out)?;
        } else {
            let rel = path.strip_prefix(root).map_err(|_| {
                CrError::protocol(format!(
                    "{} escapes snapshot root {}",
                    path.display(),
                    root.display()
                ))
            })?;
            let bytes = fs::read(&path).map_err(|e| io_err(&path, &e))?;
            out.push((rel.to_string_lossy().into_owned(), bytes));
        }
    }
    Ok(())
}

impl ReplicaImage {
    /// Capture a local snapshot reference directory into memory.
    pub fn from_dir(rank: Rank, dir: &Path) -> Result<Self, CrError> {
        let mut files = Vec::new();
        collect_files(dir, dir, &mut files)?;
        files.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(ReplicaImage { rank: rank.0, files })
    }

    /// Materialize the image under `dir` (inverse of
    /// [`ReplicaImage::from_dir`]), creating directories as needed. The
    /// result is openable as a `LocalSnapshot` reference.
    pub fn write_to(&self, dir: &Path) -> Result<(), CrError> {
        for (rel, bytes) in &self.files {
            let path = dir.join(rel);
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent).map_err(|e| io_err(parent, &e))?;
            }
            fs::write(&path, bytes).map_err(|e| io_err(&path, &e))?;
        }
        Ok(())
    }

    /// Total payload size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|(_, b)| b.len() as u64).sum()
    }
}

/// In-memory replica store, one per daemon. Keyed by
/// `(job, interval, rank)`; survives as long as its daemon thread does and
/// dies with the node — that is the point: it models volatile peer memory,
/// not stable storage.
///
/// Alongside whole images the store keeps a *chunk tier*: content-addressed
/// chunks keyed `(job, chunk id)`, the peer-memory mirror of the stable
/// [`opal::store::ChunkStore`].  Dedup restarts fetch manifest chunks from
/// surviving daemons before touching stable storage.
#[derive(Debug, Default)]
pub struct ReplicaStore {
    entries: Mutex<std::collections::HashMap<(JobId, u64, u32), ReplicaImage>>,
    chunks: Mutex<std::collections::HashMap<(JobId, ChunkId), Vec<u8>>>,
}

impl ReplicaStore {
    /// An empty store.
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Insert (or replace) one rank's image for `(job, interval)`.
    pub fn put(&self, job: JobId, interval: u64, image: ReplicaImage) {
        self.entries
            .lock()
            .insert((job, interval, image.rank), image);
    }

    /// Copy of the stored image, if held.
    pub fn get(&self, job: JobId, interval: u64, rank: u32) -> Option<ReplicaImage> {
        self.entries.lock().get(&(job, interval, rank)).cloned()
    }

    /// Drop every entry of `(job, interval)`. Returns how many were
    /// removed.
    pub fn expire_interval(&self, job: JobId, interval: u64) -> usize {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|(j, i, _), _| !(*j == job && *i == interval));
        before - entries.len()
    }

    /// Drop every entry of `job` (job teardown), images and chunks alike.
    /// Returns how many were removed.
    pub fn expire_job(&self, job: JobId) -> usize {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|(j, _, _), _| *j != job);
        let mut chunks = self.chunks.lock();
        let chunks_before = chunks.len();
        chunks.retain(|(j, _), _| *j != job);
        (before - entries.len()) + (chunks_before - chunks.len())
    }

    /// Hold one content-addressed chunk for `job` in peer memory.
    pub fn put_chunk(&self, job: JobId, id: ChunkId, bytes: Vec<u8>) {
        self.chunks.lock().insert((job, id), bytes);
    }

    /// Copy of a held chunk, if present.
    pub fn get_chunk(&self, job: JobId, id: &ChunkId) -> Option<Vec<u8>> {
        self.chunks.lock().get(&(job, *id)).cloned()
    }

    /// Drop the listed chunks of `job`. Returns how many were held.
    pub fn expire_chunks(&self, job: JobId, ids: &[ChunkId]) -> usize {
        let mut chunks = self.chunks.lock();
        ids.iter()
            .filter(|id| chunks.remove(&(job, **id)).is_some())
            .count()
    }

    /// Number of chunks held for `job`.
    pub fn chunk_count(&self, job: JobId) -> usize {
        self.chunks.lock().keys().filter(|(j, _)| *j == job).count()
    }

    /// `(interval, rank)` pairs currently held for `job`, sorted.
    pub fn inventory(&self, job: JobId) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self
            .entries
            .lock()
            .keys()
            .filter(|(j, _, _)| *j == job)
            .map(|(_, i, r)| (*i, *r))
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of images held.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Total bytes of payload held.
    pub fn total_bytes(&self) -> u64 {
        self.entries.lock().values().map(|i| i.total_bytes()).sum()
    }
}

/// The `k` ring successors of `node` among `nodes` total, excluding
/// `node` itself. With fewer than `k + 1` nodes the ring simply stops
/// when it would wrap back onto `node` — every other node then holds a
/// copy.
///
/// Invariant (model-checked by `cr-model replica`, see
/// `crates/model/src/replica.rs`): with this placement every committed
/// image keeps at least one live holder under any `k` node losses; a
/// dev-dependency test in `crates/model/tests/mutations.rs` pins the
/// model's successor function to this one.
pub fn ring_neighbors(node: u32, nodes: u32, k: u32) -> Vec<u32> {
    let mut out = Vec::new();
    if nodes <= 1 {
        return out;
    }
    for step in 1..=k {
        let neighbor = (node + step) % nodes;
        if neighbor == node {
            break;
        }
        out.push(neighbor);
    }
    out
}

/// Result of replicating one checkpoint interval into peer memory.
#[derive(Debug, Clone)]
pub struct ReplicationOutcome {
    /// Per rank: the node ids whose daemons accepted a copy of its image,
    /// primary (the rank's own node) first.
    pub holders: Vec<(Rank, Vec<u32>)>,
    /// Total simulated wire time charged for shipping the images.
    pub sim_cost: SimTime,
    /// Total image payload bytes replicated (sum over all copies).
    pub bytes: u64,
}

/// Ship every rank's local snapshot image into peer memory: the rank's
/// own daemon plus its `factor` ring neighbors each receive a copy over
/// OOB (netsim charges the transfers).
///
/// `images` lists `(rank, node the rank ran on, local snapshot reference
/// directory)` — exactly what the daemons report back from a local
/// checkpoint. Returns where every image landed, for the global snapshot's
/// replica-location metadata.
pub fn replicate(
    runtime: &Runtime,
    job: JobId,
    interval: u64,
    images: &[(Rank, u32, std::path::PathBuf)],
    factor: u32,
) -> Result<ReplicationOutcome, CrError> {
    let nodes = runtime.topology().len() as u32;
    let ctl = runtime.fabric().register(NodeId(0));
    let mut holders = Vec::with_capacity(images.len());
    let mut sim_cost = SimTime::ZERO;
    let mut bytes = 0u64;

    for (rank, node, dir) in images {
        let image = ReplicaImage::from_dir(*rank, dir)?;
        let mut targets = vec![*node];
        targets.extend(ring_neighbors(*node, nodes, factor));
        for target in &targets {
            let daemon = runtime.ensure_daemon(NodeId(*target));
            sim_cost += send_oob(
                runtime.fabric(),
                ctl.id(),
                daemon.endpoint(),
                &DaemonMsg::ReplicaPut {
                    job,
                    interval,
                    image: image.clone(),
                    reply_to: ctl.id().0,
                },
            )?;
            match recv_oob_timeout::<DaemonReply>(&ctl, REPLICA_OOB_TIMEOUT)? {
                DaemonReply::ReplicaStored { .. } => {}
                other => {
                    return Err(CrError::protocol(format!(
                        "unexpected reply to ReplicaPut: {other:?}"
                    )))
                }
            }
            bytes += image.total_bytes();
        }
        runtime.tracer().record(
            "filem.replica.put",
            &format!("rank {rank} -> nodes {targets:?} interval {interval}"),
        );
        holders.push((*rank, targets));
    }
    Ok(ReplicationOutcome {
        holders,
        sim_cost,
        bytes,
    })
}

/// Fetch one rank's image from the first surviving holder.
///
/// `holders` comes from the global snapshot's replica-location metadata,
/// primary first. Dead daemons (killed nodes) are skipped without being
/// respawned — a respawned daemon would have an empty store and, worse,
/// would fake the node back to life. Returns the image and the simulated
/// wire cost of the successful transfer, or `None` when every holder is
/// gone or answers with a miss.
pub fn fetch_image(
    runtime: &Runtime,
    job: JobId,
    interval: u64,
    rank: Rank,
    holders: &[u32],
) -> Option<(ReplicaImage, SimTime)> {
    let ctl = runtime.fabric().register(NodeId(0));
    let alive = runtime.daemons();
    for holder in holders {
        let Some(daemon) = alive.iter().find(|d| d.node().0 == *holder) else {
            continue;
        };
        let sent = send_oob(
            runtime.fabric(),
            ctl.id(),
            daemon.endpoint(),
            &DaemonMsg::ReplicaFetch {
                job,
                interval,
                rank: rank.0,
                reply_to: ctl.id().0,
            },
        );
        if sent.is_err() {
            continue; // daemon died between listing and send: miss
        }
        match recv_oob_timeout::<DaemonReply>(&ctl, REPLICA_OOB_TIMEOUT) {
            Ok(DaemonReply::ReplicaImageReply {
                node,
                image: Some(image),
            }) => {
                // The reply carries the image payload: charge its wire
                // time as the cost of this fetch.
                let cost = sent.unwrap_or(SimTime::ZERO);
                runtime.tracer().record(
                    "filem.replica.fetch",
                    &format!("rank {rank} <- node {node} interval {interval}"),
                );
                return Some((image, cost));
            }
            Ok(_) | Err(_) => continue,
        }
    }
    None
}

/// Drop `(job, interval)` replica entries from every surviving daemon
/// (checkpoint expiry). Returns the total number of entries removed.
pub fn expire_replicas(runtime: &Runtime, job: JobId, interval: u64) -> usize {
    let ctl = runtime.fabric().register(NodeId(0));
    let mut removed = 0;
    for daemon in runtime.daemons() {
        let sent = send_oob(
            runtime.fabric(),
            ctl.id(),
            daemon.endpoint(),
            &DaemonMsg::ReplicaExpire {
                job,
                interval,
                reply_to: ctl.id().0,
            },
        );
        if sent.is_err() {
            continue;
        }
        if let Ok(DaemonReply::ReplicaExpired { removed: n, .. }) =
            recv_oob_timeout::<DaemonReply>(&ctl, REPLICA_OOB_TIMEOUT)
        {
            removed += n;
        }
    }
    if removed > 0 {
        runtime.tracer().record(
            "filem.replica.expire",
            &format!("{job} interval {interval}: {removed} entries"),
        );
    }
    removed
}

/// Push content-addressed chunks into the peer-memory chunk tier of each
/// `target` node's daemon (the dedup analogue of [`replicate`]).  Every
/// target receives every listed chunk; netsim charges the transfers.
/// Returns the simulated wire cost and total payload bytes shipped.
pub fn put_chunks(
    runtime: &Runtime,
    job: JobId,
    targets: &[u32],
    chunks: &[(ChunkId, Vec<u8>)],
) -> Result<(SimTime, u64), CrError> {
    if chunks.is_empty() || targets.is_empty() {
        return Ok((SimTime::ZERO, 0));
    }
    let ctl = runtime.fabric().register(NodeId(0));
    let payload: u64 = chunks.iter().map(|(_, b)| b.len() as u64).sum();
    let mut sim_cost = SimTime::ZERO;
    let mut bytes = 0u64;
    for target in targets {
        let daemon = runtime.ensure_daemon(NodeId(*target));
        sim_cost += send_oob(
            runtime.fabric(),
            ctl.id(),
            daemon.endpoint(),
            &DaemonMsg::ChunkPut {
                job,
                chunks: chunks.to_vec(),
                reply_to: ctl.id().0,
            },
        )?;
        match recv_oob_timeout::<DaemonReply>(&ctl, REPLICA_OOB_TIMEOUT)? {
            DaemonReply::ChunkStored { .. } => {}
            other => {
                return Err(CrError::protocol(format!(
                    "unexpected reply to ChunkPut: {other:?}"
                )))
            }
        }
        bytes += payload;
    }
    runtime.tracer().record(
        "store.chunk.put",
        &format!("{} chunks ({payload} B) -> nodes {targets:?}", chunks.len()),
    );
    Ok((sim_cost, bytes))
}

/// Fetch chunks by id from the peer-memory chunk tier, trying each
/// surviving `holder` in turn and accumulating partial hits until every id
/// is resolved.  Returns the chunk bytes in id order plus the simulated
/// wire cost, or `None` when some chunk has no surviving holder — the
/// caller then falls back to the stable [`opal::store::ChunkStore`].
pub fn fetch_chunks(
    runtime: &Runtime,
    job: JobId,
    ids: &[ChunkId],
    holders: &[u32],
) -> Option<(Vec<Vec<u8>>, SimTime)> {
    let (found, cost) = fetch_chunks_partial(runtime, job, ids, holders);
    found.into_iter().collect::<Option<Vec<_>>>().map(|v| (v, cost))
}

/// Like [`fetch_chunks`] but keeps partial results: the returned vector
/// has one slot per id, `None` where no surviving holder had the chunk.
/// The mixed-tier restart path uses this to fill only the gaps from
/// stable storage.
pub fn fetch_chunks_partial(
    runtime: &Runtime,
    job: JobId,
    ids: &[ChunkId],
    holders: &[u32],
) -> (Vec<Option<Vec<u8>>>, SimTime) {
    if ids.is_empty() {
        return (Vec::new(), SimTime::ZERO);
    }
    let ctl = runtime.fabric().register(NodeId(0));
    let alive = runtime.daemons();
    let mut found: Vec<Option<Vec<u8>>> = vec![None; ids.len()];
    let mut cost = SimTime::ZERO;
    for holder in holders {
        let missing: Vec<usize> = found
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(i, _)| i)
            .collect();
        if missing.is_empty() {
            break;
        }
        let Some(daemon) = alive.iter().find(|d| d.node().0 == *holder) else {
            continue; // dead node: never respawn just to ask its memory
        };
        let want: Vec<ChunkId> = missing.iter().filter_map(|i| ids.get(*i).copied()).collect();
        let sent = send_oob(
            runtime.fabric(),
            ctl.id(),
            daemon.endpoint(),
            &DaemonMsg::ChunkFetch {
                job,
                ids: want,
                reply_to: ctl.id().0,
            },
        );
        if sent.is_err() {
            continue;
        }
        match recv_oob_timeout::<DaemonReply>(&ctl, REPLICA_OOB_TIMEOUT) {
            Ok(DaemonReply::ChunkData { node, chunks }) => {
                cost += sent.unwrap_or(SimTime::ZERO);
                let mut hits = 0usize;
                for (slot, chunk) in missing.iter().zip(chunks) {
                    if let (Some(bytes), Some(dest)) = (chunk, found.get_mut(*slot)) {
                        *dest = Some(bytes);
                        hits += 1;
                    }
                }
                if hits > 0 {
                    runtime.tracer().record(
                        "store.chunk.fetch",
                        &format!("{hits} chunks <- node {node}"),
                    );
                }
            }
            Ok(_) | Err(_) => continue,
        }
    }
    (found, cost)
}

/// Drop the listed chunks of `job` from every surviving daemon's chunk
/// tier (the peer-memory half of a GC sweep). Returns chunks removed.
pub fn expire_chunks(runtime: &Runtime, job: JobId, ids: &[ChunkId]) -> usize {
    if ids.is_empty() {
        return 0;
    }
    let ctl = runtime.fabric().register(NodeId(0));
    let mut removed = 0;
    for daemon in runtime.daemons() {
        let sent = send_oob(
            runtime.fabric(),
            ctl.id(),
            daemon.endpoint(),
            &DaemonMsg::ChunkExpire {
                job,
                ids: ids.to_vec(),
                reply_to: ctl.id().0,
            },
        );
        if sent.is_err() {
            continue;
        }
        if let Ok(DaemonReply::ChunkExpired { removed: n, .. }) =
            recv_oob_timeout::<DaemonReply>(&ctl, REPLICA_OOB_TIMEOUT)
        {
            removed += n;
        }
    }
    removed
}

/// Per-node replica inventory for `job` across every surviving daemon:
/// `(node, [(interval, rank)])`, node order. Diagnostic / test surface.
pub fn replica_inventory(runtime: &Runtime, job: JobId) -> Vec<(u32, Vec<(u64, u32)>)> {
    let ctl = runtime.fabric().register(NodeId(0));
    let mut out = Vec::new();
    for daemon in runtime.daemons() {
        let sent = send_oob(
            runtime.fabric(),
            ctl.id(),
            daemon.endpoint(),
            &DaemonMsg::ReplicaInventory {
                job,
                reply_to: ctl.id().0,
            },
        );
        if sent.is_err() {
            continue;
        }
        if let Ok(DaemonReply::ReplicaHolding { node, entries }) =
            recv_oob_timeout::<DaemonReply>(&ctl, REPLICA_OOB_TIMEOUT)
        {
            out.push((node, entries));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "orte_replica_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn image_roundtrips_through_memory() {
        let src = tmpdir("img_src");
        fs::write(src.join("snapshot_meta.data"), b"[snapshot]\ncrs = self\n").unwrap();
        fs::create_dir_all(src.join("sub")).unwrap();
        fs::write(src.join("sub").join("ompi_context.bin"), vec![0xCD; 4096]).unwrap();

        let image = ReplicaImage::from_dir(Rank(2), &src).unwrap();
        assert_eq!(image.rank, 2);
        assert_eq!(image.files.len(), 2);
        assert_eq!(image.total_bytes(), 4096 + 22);

        let dst = tmpdir("img_dst");
        image.write_to(&dst).unwrap();
        assert_eq!(
            fs::read(dst.join("snapshot_meta.data")).unwrap(),
            b"[snapshot]\ncrs = self\n"
        );
        assert_eq!(
            fs::read(dst.join("sub").join("ompi_context.bin")).unwrap(),
            vec![0xCD; 4096]
        );
        // Round-trip equality through a second capture.
        assert_eq!(ReplicaImage::from_dir(Rank(2), &dst).unwrap(), image);
    }

    #[test]
    fn store_put_get_expire() {
        let store = ReplicaStore::new();
        assert!(store.is_empty());
        let img = |rank: u32| ReplicaImage {
            rank,
            files: vec![("ctx".into(), vec![rank as u8; 10])],
        };
        store.put(JobId(1), 0, img(0));
        store.put(JobId(1), 0, img(1));
        store.put(JobId(1), 1, img(0));
        store.put(JobId(2), 0, img(0));
        assert_eq!(store.len(), 4);
        assert_eq!(store.total_bytes(), 40);
        assert_eq!(store.get(JobId(1), 0, 1), Some(img(1)));
        assert_eq!(store.get(JobId(1), 0, 9), None);
        assert_eq!(store.inventory(JobId(1)), vec![(0, 0), (0, 1), (1, 0)]);

        assert_eq!(store.expire_interval(JobId(1), 0), 2);
        assert_eq!(store.inventory(JobId(1)), vec![(1, 0)]);
        assert_eq!(store.expire_job(JobId(2)), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn put_replaces_same_key() {
        let store = ReplicaStore::new();
        let a = ReplicaImage { rank: 0, files: vec![("x".into(), vec![1])] };
        let b = ReplicaImage { rank: 0, files: vec![("x".into(), vec![2, 3])] };
        store.put(JobId(1), 0, a);
        store.put(JobId(1), 0, b.clone());
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(JobId(1), 0, 0), Some(b));
    }

    #[test]
    fn chunk_tier_put_get_expire() {
        let store = ReplicaStore::new();
        let a = ChunkId::of(b"chunk a");
        let b = ChunkId::of(b"chunk b");
        store.put_chunk(JobId(1), a, b"chunk a".to_vec());
        store.put_chunk(JobId(1), b, b"chunk b".to_vec());
        store.put_chunk(JobId(2), a, b"chunk a".to_vec());
        assert_eq!(store.chunk_count(JobId(1)), 2);
        assert_eq!(store.get_chunk(JobId(1), &a), Some(b"chunk a".to_vec()));
        assert_eq!(store.get_chunk(JobId(3), &a), None);
        // Expire is per job and per id; double-expire counts zero.
        assert_eq!(store.expire_chunks(JobId(1), &[a]), 1);
        assert_eq!(store.expire_chunks(JobId(1), &[a]), 0);
        assert_eq!(store.chunk_count(JobId(1)), 1);
        assert_eq!(store.get_chunk(JobId(2), &a), Some(b"chunk a".to_vec()));
        // Job teardown drops images and chunks alike.
        assert_eq!(store.expire_job(JobId(2)), 1);
        assert_eq!(store.chunk_count(JobId(2)), 0);
    }

    #[test]
    fn ring_wraps_and_excludes_self() {
        assert_eq!(ring_neighbors(0, 4, 1), vec![1]);
        assert_eq!(ring_neighbors(3, 4, 2), vec![0, 1]);
        assert_eq!(ring_neighbors(1, 4, 3), vec![2, 3, 0]);
        // k >= nodes: stop before wrapping onto self.
        assert_eq!(ring_neighbors(1, 3, 7), vec![2, 0]);
        assert_eq!(ring_neighbors(0, 1, 2), Vec::<u32>::new());
        assert_eq!(ring_neighbors(0, 2, 0), Vec::<u32>::new());
    }
}
